//! The distributed executor: strategies over the actor runtime.
//!
//! [`DistributedExecutor::run`] spins up one actor per component site
//! plus the global actor on the deterministic runtime, sends a single
//! `Certify` request as the client, and drives the virtual clock until
//! the answer comes back. The result carries the answer together with
//! the degradation and cost diagnostics of the run.

use crate::actor::{run_global, run_site, Ctx};
use crate::msg::{Request, Response};
use crate::router::Net;
use crate::rpc::{call, RpcConfig};
use crate::rt::Runtime;
use crate::transport::{LocalTransport, Transport};
use fedoq_core::handlers::LocalizedConfig;
use fedoq_core::{
    BasicLocalized, CacheStats, Centralized, ExecError, ExecutionStrategy, Federation, LookupCache,
    ParallelLocalized, PipelineConfig, QueryAnswer,
};
use fedoq_object::DbId;
use fedoq_query::BoundQuery;
use fedoq_sim::{Phase, QueryMetrics, Simulation, Site, SystemParams};
use std::cell::RefCell;
use std::rc::Rc;

/// A strategy choice for the distributed runtime, mirroring the three
/// in-process strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistributedStrategy {
    /// CA: ship everything, evaluate at the global site.
    Centralized,
    /// BL: local evaluation first, assistant lookup for survivors.
    BasicLocalized(LocalizedConfig),
    /// PL: static assistant lookup overlapping local evaluation.
    ParallelLocalized(LocalizedConfig),
}

impl DistributedStrategy {
    /// CA.
    pub fn ca() -> DistributedStrategy {
        DistributedStrategy::Centralized
    }

    /// BL without signature pruning.
    pub fn bl() -> DistributedStrategy {
        DistributedStrategy::BasicLocalized(LocalizedConfig::default())
    }

    /// PL without signature pruning.
    pub fn pl() -> DistributedStrategy {
        DistributedStrategy::ParallelLocalized(LocalizedConfig::default())
    }

    /// The same strategy with signature pruning enabled (no-op for CA).
    pub fn with_signatures(self) -> DistributedStrategy {
        match self {
            DistributedStrategy::Centralized => self,
            DistributedStrategy::BasicLocalized(mut c) => {
                c.use_signatures = true;
                DistributedStrategy::BasicLocalized(c)
            }
            DistributedStrategy::ParallelLocalized(mut c) => {
                c.use_signatures = true;
                DistributedStrategy::ParallelLocalized(c)
            }
        }
    }

    /// The paper's name for the strategy (`-S` marks signature pruning).
    pub fn name(&self) -> &'static str {
        match self {
            DistributedStrategy::Centralized => "CA",
            DistributedStrategy::BasicLocalized(c) if c.use_signatures => "BL-S",
            DistributedStrategy::BasicLocalized(_) => "BL",
            DistributedStrategy::ParallelLocalized(c) if c.use_signatures => "PL-S",
            DistributedStrategy::ParallelLocalized(_) => "PL",
        }
    }

    /// Parses a strategy name (`ca`, `bl`, `pl`, `bl-s`, `pl-s`).
    pub fn parse(name: &str) -> Option<DistributedStrategy> {
        match name.to_ascii_lowercase().as_str() {
            "ca" => Some(DistributedStrategy::ca()),
            "bl" => Some(DistributedStrategy::bl()),
            "pl" => Some(DistributedStrategy::pl()),
            "bl-s" => Some(DistributedStrategy::bl().with_signatures()),
            "pl-s" => Some(DistributedStrategy::pl().with_signatures()),
            _ => None,
        }
    }

    /// The equivalent in-process strategy (for differential testing).
    pub fn sync(&self) -> Box<dyn ExecutionStrategy> {
        match self {
            DistributedStrategy::Centralized => Box::new(Centralized),
            DistributedStrategy::BasicLocalized(c) => Box::new(BasicLocalized {
                use_signatures: c.use_signatures,
                complete_targets: c.complete_targets,
            }),
            DistributedStrategy::ParallelLocalized(c) => Box::new(ParallelLocalized {
                use_signatures: c.use_signatures,
                complete_targets: c.complete_targets,
            }),
        }
    }
}

/// Everything one distributed execution produced.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// The certified answer.
    pub answer: QueryAnswer,
    /// Sites that stayed unreachable past the retry budget.
    pub degraded_sites: Vec<DbId>,
    /// Total RPC retries performed.
    pub retries: u64,
    /// Messages the transport delivered.
    pub delivered: u64,
    /// Messages the transport dropped (faults).
    pub dropped: u64,
    /// Cost-model metrics accumulated in the shared simulation.
    pub metrics: QueryMetrics,
    /// Virtual time the runtime advanced (µs); includes network latency
    /// and retry backoffs, unlike the cost-model clocks.
    pub virtual_us: f64,
}

impl DistributedOutcome {
    /// `true` iff any maybe row was tagged degraded or a site was lost.
    pub fn is_degraded(&self) -> bool {
        !self.degraded_sites.is_empty() || self.answer.is_degraded()
    }
}

/// Runs distributed queries over a transport.
///
/// The executor owns a [`PipelineConfig`] (parallel scans, probe
/// batching, lookup caching) and a persistent [`LookupCache`] that
/// survives across `run` calls — run the same query twice with the cache
/// enabled and the second run answers warm probes without touching the
/// wire. Clones share the cache. The cache is generation-synced against
/// the federation on every run, so store mutations invalidate it.
#[derive(Debug, Clone, Default)]
pub struct DistributedExecutor {
    rpc: RpcConfig,
    pipeline: PipelineConfig,
    cache: Rc<RefCell<LookupCache>>,
}

impl DistributedExecutor {
    /// An executor with the default RPC policy and a sequential,
    /// unbatched, uncached pipeline (the legacy wire behavior).
    pub fn new() -> DistributedExecutor {
        DistributedExecutor::default()
    }

    /// Overrides the RPC timeout/retry policy.
    pub fn with_rpc(mut self, rpc: RpcConfig) -> DistributedExecutor {
        self.rpc = rpc;
        self
    }

    /// The RPC policy in force.
    pub fn rpc(&self) -> RpcConfig {
        self.rpc
    }

    /// Overrides the pipeline (parallelism, batch size, caching).
    pub fn with_pipeline(mut self, pipeline: PipelineConfig) -> DistributedExecutor {
        self.pipeline = pipeline;
        self
    }

    /// The pipeline configuration in force.
    pub fn pipeline(&self) -> PipelineConfig {
        self.pipeline
    }

    /// Hit/miss/eviction counters of the persistent lookup cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.borrow().stats()
    }

    /// Entries currently held by the persistent lookup cache.
    pub fn cache_len(&self) -> usize {
        self.cache.borrow().len()
    }

    /// Drops every cache entry and resets the counters.
    pub fn reset_cache(&self) {
        self.cache.borrow_mut().reset();
    }

    /// Executes `query` with `strategy` over `transport`, charging
    /// `sim`'s ledger for every disk/CPU/network action.
    pub fn run(
        &self,
        fed: &Federation,
        query: &BoundQuery,
        strategy: DistributedStrategy,
        transport: Rc<RefCell<dyn Transport>>,
        sim: Rc<RefCell<Simulation>>,
    ) -> Result<DistributedOutcome, ExecError> {
        let response = self.drive(fed, query, Request::Certify { strategy }, &transport, &sim)?;
        let (Response::Certify(reply), virtual_us) = response else {
            return Err(ExecError::Internal("mismatched response to Certify".into()));
        };
        let (delivered, dropped) = transport.borrow().stats();
        Ok(DistributedOutcome {
            answer: reply.answer?,
            degraded_sites: reply.degraded_sites,
            retries: reply.retries,
            delivered,
            dropped,
            metrics: sim.borrow().metrics(),
            virtual_us,
        })
    }

    /// Executes several strategies over the same query in one client
    /// round-trip (`BatchCertify`), in order, over one shared runtime.
    ///
    /// The transport stats, cost-model metrics, and virtual clock are
    /// those of the *whole batch* — the jobs share the simulation — so
    /// every returned outcome carries the same totals. Any job's
    /// execution error fails the whole batch.
    ///
    /// # Errors
    ///
    /// As for [`run`](DistributedExecutor::run), for any job.
    pub fn run_batch(
        &self,
        fed: &Federation,
        query: &BoundQuery,
        strategies: &[DistributedStrategy],
        transport: Rc<RefCell<dyn Transport>>,
        sim: Rc<RefCell<Simulation>>,
    ) -> Result<Vec<DistributedOutcome>, ExecError> {
        let request = Request::BatchCertify {
            strategies: strategies.to_vec(),
        };
        let response = self.drive(fed, query, request, &transport, &sim)?;
        let (Response::BatchCertify(replies), virtual_us) = response else {
            return Err(ExecError::Internal(
                "mismatched response to BatchCertify".into(),
            ));
        };
        let (delivered, dropped) = transport.borrow().stats();
        let metrics = sim.borrow().metrics();
        replies
            .into_iter()
            .map(|reply| {
                Ok(DistributedOutcome {
                    answer: reply.answer?,
                    degraded_sites: reply.degraded_sites,
                    retries: reply.retries,
                    delivered,
                    dropped,
                    metrics,
                    virtual_us,
                })
            })
            .collect()
    }

    /// Spins up the actors, sends one client request to the global
    /// actor, and drives the runtime until its response arrives.
    fn drive(
        &self,
        fed: &Federation,
        query: &BoundQuery,
        request: Request,
        transport: &Rc<RefCell<dyn Transport>>,
        sim: &Rc<RefCell<Simulation>>,
    ) -> Result<(Response, f64), ExecError> {
        // A store mutation since the last run flushes the cache.
        self.cache.borrow_mut().sync_generation(fed.generation());
        let cache = if self.pipeline.cache {
            Some(Rc::clone(&self.cache))
        } else {
            None
        };
        let rt = Runtime::new();
        let net = Net::new(rt.handle(), Rc::clone(transport), fed.num_dbs());
        for db in fed.dbs() {
            let ctx = Ctx {
                fed,
                query,
                net: net.clone(),
                sim: Rc::clone(sim),
                rpc: self.rpc,
                pipeline: self.pipeline,
                cache: cache.clone(),
            };
            rt.handle().spawn(run_site(ctx, db.id()));
        }
        rt.handle().spawn(run_global(Ctx {
            fed,
            query,
            net: net.clone(),
            sim: Rc::clone(sim),
            rpc: self.rpc,
            pipeline: self.pipeline,
            cache,
        }));

        // The client: one RPC to the global actor. It must not time out
        // on its own — end-to-end patience is the point — so it gets an
        // effectively unbounded window and no retries.
        let client_net = net.clone();
        let response = rt
            .run(async move {
                let cfg = RpcConfig {
                    timeout_us: 1e15,
                    per_byte_us: 0.0,
                    retries: 0,
                    backoff_us: 0.0,
                    backoff_factor: 1.0,
                };
                call(
                    &client_net,
                    Site::Global,
                    Site::Global,
                    request,
                    0,
                    Phase::Ship,
                    cfg,
                )
                .await
            })
            .map_err(|deadlock| ExecError::Internal(deadlock.to_string()))?
            .map_err(|e| ExecError::Internal(format!("global actor lost: {e}")))?;
        Ok((response, rt.handle().now_us()))
    }

    /// Convenience: runs over the in-process [`LocalTransport`] with a
    /// fresh paper-default simulation.
    pub fn run_local(
        &self,
        fed: &Federation,
        query: &BoundQuery,
        strategy: DistributedStrategy,
    ) -> Result<DistributedOutcome, ExecError> {
        let sim = Rc::new(RefCell::new(Simulation::new(
            SystemParams::paper_default(),
            fed.num_dbs(),
        )));
        let transport: Rc<RefCell<dyn Transport>> = Rc::new(RefCell::new(LocalTransport::new()));
        self.run(fed, query, strategy, transport, sim)
    }
}
