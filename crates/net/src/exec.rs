//! The distributed executor: strategies over the actor runtime.
//!
//! [`DistributedExecutor::run`] spins up one actor per component site
//! plus the global actor on the deterministic runtime, sends a single
//! `Certify` request as the client, and drives the virtual clock until
//! the answer comes back. The result carries the answer together with
//! the degradation and cost diagnostics of the run.

use crate::actor::{run_global, run_site, Ctx};
use crate::msg::{Request, Response};
use crate::router::Net;
use crate::rpc::{call, RpcConfig};
use crate::rt::Runtime;
use crate::transport::{LocalTransport, Transport};
use fedoq_core::handlers::LocalizedConfig;
use fedoq_core::{
    BasicLocalized, Centralized, ExecError, ExecutionStrategy, Federation, ParallelLocalized,
    QueryAnswer,
};
use fedoq_object::DbId;
use fedoq_query::BoundQuery;
use fedoq_sim::{Phase, QueryMetrics, Simulation, Site, SystemParams};
use std::cell::RefCell;
use std::rc::Rc;

/// A strategy choice for the distributed runtime, mirroring the three
/// in-process strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistributedStrategy {
    /// CA: ship everything, evaluate at the global site.
    Centralized,
    /// BL: local evaluation first, assistant lookup for survivors.
    BasicLocalized(LocalizedConfig),
    /// PL: static assistant lookup overlapping local evaluation.
    ParallelLocalized(LocalizedConfig),
}

impl DistributedStrategy {
    /// CA.
    pub fn ca() -> DistributedStrategy {
        DistributedStrategy::Centralized
    }

    /// BL without signature pruning.
    pub fn bl() -> DistributedStrategy {
        DistributedStrategy::BasicLocalized(LocalizedConfig::default())
    }

    /// PL without signature pruning.
    pub fn pl() -> DistributedStrategy {
        DistributedStrategy::ParallelLocalized(LocalizedConfig::default())
    }

    /// The same strategy with signature pruning enabled (no-op for CA).
    pub fn with_signatures(self) -> DistributedStrategy {
        match self {
            DistributedStrategy::Centralized => self,
            DistributedStrategy::BasicLocalized(mut c) => {
                c.use_signatures = true;
                DistributedStrategy::BasicLocalized(c)
            }
            DistributedStrategy::ParallelLocalized(mut c) => {
                c.use_signatures = true;
                DistributedStrategy::ParallelLocalized(c)
            }
        }
    }

    /// The paper's name for the strategy (`-S` marks signature pruning).
    pub fn name(&self) -> &'static str {
        match self {
            DistributedStrategy::Centralized => "CA",
            DistributedStrategy::BasicLocalized(c) if c.use_signatures => "BL-S",
            DistributedStrategy::BasicLocalized(_) => "BL",
            DistributedStrategy::ParallelLocalized(c) if c.use_signatures => "PL-S",
            DistributedStrategy::ParallelLocalized(_) => "PL",
        }
    }

    /// Parses a strategy name (`ca`, `bl`, `pl`, `bl-s`, `pl-s`).
    pub fn parse(name: &str) -> Option<DistributedStrategy> {
        match name.to_ascii_lowercase().as_str() {
            "ca" => Some(DistributedStrategy::ca()),
            "bl" => Some(DistributedStrategy::bl()),
            "pl" => Some(DistributedStrategy::pl()),
            "bl-s" => Some(DistributedStrategy::bl().with_signatures()),
            "pl-s" => Some(DistributedStrategy::pl().with_signatures()),
            _ => None,
        }
    }

    /// The equivalent in-process strategy (for differential testing).
    pub fn sync(&self) -> Box<dyn ExecutionStrategy> {
        match self {
            DistributedStrategy::Centralized => Box::new(Centralized),
            DistributedStrategy::BasicLocalized(c) => Box::new(BasicLocalized {
                use_signatures: c.use_signatures,
                complete_targets: c.complete_targets,
            }),
            DistributedStrategy::ParallelLocalized(c) => Box::new(ParallelLocalized {
                use_signatures: c.use_signatures,
                complete_targets: c.complete_targets,
            }),
        }
    }
}

/// Everything one distributed execution produced.
#[derive(Debug, Clone)]
pub struct DistributedOutcome {
    /// The certified answer.
    pub answer: QueryAnswer,
    /// Sites that stayed unreachable past the retry budget.
    pub degraded_sites: Vec<DbId>,
    /// Total RPC retries performed.
    pub retries: u64,
    /// Messages the transport delivered.
    pub delivered: u64,
    /// Messages the transport dropped (faults).
    pub dropped: u64,
    /// Cost-model metrics accumulated in the shared simulation.
    pub metrics: QueryMetrics,
    /// Virtual time the runtime advanced (µs); includes network latency
    /// and retry backoffs, unlike the cost-model clocks.
    pub virtual_us: f64,
}

impl DistributedOutcome {
    /// `true` iff any maybe row was tagged degraded or a site was lost.
    pub fn is_degraded(&self) -> bool {
        !self.degraded_sites.is_empty() || self.answer.is_degraded()
    }
}

/// Runs distributed queries over a transport.
#[derive(Debug, Clone, Copy, Default)]
pub struct DistributedExecutor {
    rpc: RpcConfig,
}

impl DistributedExecutor {
    /// An executor with the default RPC policy.
    pub fn new() -> DistributedExecutor {
        DistributedExecutor::default()
    }

    /// Overrides the RPC timeout/retry policy.
    pub fn with_rpc(mut self, rpc: RpcConfig) -> DistributedExecutor {
        self.rpc = rpc;
        self
    }

    /// The RPC policy in force.
    pub fn rpc(&self) -> RpcConfig {
        self.rpc
    }

    /// Executes `query` with `strategy` over `transport`, charging
    /// `sim`'s ledger for every disk/CPU/network action.
    pub fn run(
        &self,
        fed: &Federation,
        query: &BoundQuery,
        strategy: DistributedStrategy,
        transport: Rc<RefCell<dyn Transport>>,
        sim: Rc<RefCell<Simulation>>,
    ) -> Result<DistributedOutcome, ExecError> {
        let rt = Runtime::new();
        let net = Net::new(rt.handle(), Rc::clone(&transport), fed.num_dbs());
        for db in fed.dbs() {
            let ctx = Ctx {
                fed,
                query,
                net: net.clone(),
                sim: Rc::clone(&sim),
                rpc: self.rpc,
            };
            rt.handle().spawn(run_site(ctx, db.id()));
        }
        rt.handle().spawn(run_global(Ctx {
            fed,
            query,
            net: net.clone(),
            sim: Rc::clone(&sim),
            rpc: self.rpc,
        }));

        // The client: one Certify RPC to the global actor. It must not
        // time out on its own — end-to-end patience is the point — so it
        // gets an effectively unbounded window and no retries.
        let client_net = net.clone();
        let response = rt
            .run(async move {
                let cfg = RpcConfig {
                    timeout_us: 1e15,
                    per_byte_us: 0.0,
                    retries: 0,
                    backoff_us: 0.0,
                    backoff_factor: 1.0,
                };
                call(
                    &client_net,
                    Site::Global,
                    Site::Global,
                    Request::Certify { strategy },
                    0,
                    Phase::Ship,
                    cfg,
                )
                .await
            })
            .map_err(|deadlock| ExecError::Internal(deadlock.to_string()))?
            .map_err(|e| ExecError::Internal(format!("global actor lost: {e}")))?;

        let Response::Certify(reply) = response else {
            return Err(ExecError::Internal("mismatched response to Certify".into()));
        };
        let (delivered, dropped) = transport.borrow().stats();
        Ok(DistributedOutcome {
            answer: reply.answer?,
            degraded_sites: reply.degraded_sites,
            retries: reply.retries,
            delivered,
            dropped,
            metrics: sim.borrow().metrics(),
            virtual_us: rt.handle().now_us(),
        })
    }

    /// Convenience: runs over the in-process [`LocalTransport`] with a
    /// fresh paper-default simulation.
    pub fn run_local(
        &self,
        fed: &Federation,
        query: &BoundQuery,
        strategy: DistributedStrategy,
    ) -> Result<DistributedOutcome, ExecError> {
        let sim = Rc::new(RefCell::new(Simulation::new(
            SystemParams::paper_default(),
            fed.num_dbs(),
        )));
        let transport: Rc<RefCell<dyn Transport>> = Rc::new(RefCell::new(LocalTransport::new()));
        self.run(fed, query, strategy, transport, sim)
    }
}
