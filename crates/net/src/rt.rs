//! A deterministic single-threaded async runtime with virtual time.
//!
//! The distributed runtime must be reproducible: the same seed must yield
//! bit-identical executions, including under fault injection. A real
//! multi-threaded executor (and wall-clock timers) would make scheduling
//! racy, so this module hand-rolls the minimal executor the site actors
//! need:
//!
//! * tasks are polled from a FIFO ready queue (no work stealing);
//! * time is **virtual**: it only advances when every task is blocked, by
//!   jumping straight to the earliest pending timer — a million-microsecond
//!   retry backoff costs nothing in wall-clock terms;
//! * wakers are plain task-id pushes onto a shared queue.
//!
//! The executor accepts non-`'static` futures: everything is dropped when
//! [`Runtime::run`] returns, so actor futures may borrow the federation
//! and query directly.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

/// A timer waiting for virtual time to reach `at_us`.
struct TimerEntry {
    at_us: f64,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Earliest deadline first; FIFO among equal deadlines.
        self.at_us
            .total_cmp(&other.at_us)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Wakes a task by pushing its id onto the shared wake queue.
struct TaskWaker {
    id: u64,
    queue: Arc<Mutex<Vec<u64>>>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.queue
            .lock()
            .expect("wake queue poisoned")
            .push(self.id);
    }
}

struct Inner<'a> {
    now_us: f64,
    next_task: u64,
    next_seq: u64,
    tasks: HashMap<u64, Pin<Box<dyn Future<Output = ()> + 'a>>>,
    ready: VecDeque<u64>,
    timers: BinaryHeap<Reverse<TimerEntry>>,
}

/// Cloneable handle into the runtime, usable from inside tasks.
pub struct Handle<'a> {
    inner: Rc<RefCell<Inner<'a>>>,
}

impl<'a> Clone for Handle<'a> {
    fn clone(&self) -> Self {
        Handle {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<'a> Handle<'a> {
    /// The current virtual time, in microseconds.
    pub fn now_us(&self) -> f64 {
        self.inner.borrow().now_us
    }

    /// Spawns a background task; it is polled until completion or until
    /// [`Runtime::run`] returns, whichever comes first.
    pub fn spawn<F: Future<Output = ()> + 'a>(&self, fut: F) {
        let mut inner = self.inner.borrow_mut();
        let id = inner.next_task;
        inner.next_task += 1;
        inner.tasks.insert(id, Box::pin(fut));
        inner.ready.push_back(id);
    }

    /// A future resolving once virtual time has advanced by `dur_us`.
    pub fn sleep(&self, dur_us: f64) -> Sleep<'a> {
        Sleep {
            handle: self.clone(),
            at_us: self.now_us() + dur_us.max(0.0),
        }
    }

    fn register_timer(&self, at_us: f64, waker: Waker) {
        let mut inner = self.inner.borrow_mut();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.timers.push(Reverse(TimerEntry { at_us, seq, waker }));
    }
}

/// Sleeps until a fixed virtual-time deadline.
pub struct Sleep<'a> {
    handle: Handle<'a>,
    at_us: f64,
}

impl Future for Sleep<'_> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.handle.now_us() >= self.at_us {
            Poll::Ready(())
        } else {
            self.handle.register_timer(self.at_us, cx.waker().clone());
            Poll::Pending
        }
    }
}

/// The error returned when every task is blocked and no timer is pending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Deadlock;

impl std::fmt::Display for Deadlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("deadlock: every task is blocked and no timer is pending")
    }
}

impl std::error::Error for Deadlock {}

/// The deterministic executor. See the module docs.
pub struct Runtime<'a> {
    inner: Rc<RefCell<Inner<'a>>>,
    woken: Arc<Mutex<Vec<u64>>>,
}

impl<'a> Default for Runtime<'a> {
    fn default() -> Self {
        Runtime::new()
    }
}

impl<'a> Runtime<'a> {
    /// An empty runtime at virtual time zero.
    pub fn new() -> Runtime<'a> {
        Runtime {
            inner: Rc::new(RefCell::new(Inner {
                now_us: 0.0,
                next_task: 0,
                next_seq: 0,
                tasks: HashMap::new(),
                ready: VecDeque::new(),
                timers: BinaryHeap::new(),
            })),
            woken: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// A handle for spawning tasks and sleeping.
    pub fn handle(&self) -> Handle<'a> {
        Handle {
            inner: Rc::clone(&self.inner),
        }
    }

    /// Drives `main` (and every spawned task) to completion; returns
    /// `main`'s output. Background tasks still pending when `main`
    /// finishes are dropped.
    pub fn run<T: 'a>(&self, main: impl Future<Output = T> + 'a) -> Result<T, Deadlock> {
        let out: Rc<RefCell<Option<T>>> = Rc::new(RefCell::new(None));
        let out2 = Rc::clone(&out);
        self.handle().spawn(async move {
            let value = main.await;
            *out2.borrow_mut() = Some(value);
        });
        loop {
            // Move externally-woken tasks onto the ready queue.
            {
                let mut woken = self.woken.lock().expect("wake queue poisoned");
                let mut inner = self.inner.borrow_mut();
                for id in woken.drain(..) {
                    if inner.tasks.contains_key(&id) && !inner.ready.contains(&id) {
                        inner.ready.push_back(id);
                    }
                }
            }
            // Poll the ready queue FIFO.
            let next = self.inner.borrow_mut().ready.pop_front();
            if let Some(id) = next {
                let Some(mut fut) = self.inner.borrow_mut().tasks.remove(&id) else {
                    continue;
                };
                let waker = Waker::from(Arc::new(TaskWaker {
                    id,
                    queue: Arc::clone(&self.woken),
                }));
                let mut cx = Context::from_waker(&waker);
                match fut.as_mut().poll(&mut cx) {
                    Poll::Ready(()) => {}
                    Poll::Pending => {
                        self.inner.borrow_mut().tasks.insert(id, fut);
                    }
                }
                if let Some(value) = out.borrow_mut().take() {
                    return Ok(value);
                }
                continue;
            }
            // Nothing ready: advance virtual time to the earliest timer.
            let mut inner = self.inner.borrow_mut();
            if !self.woken.lock().expect("wake queue poisoned").is_empty() {
                continue; // a poll raced a wake; loop again
            }
            match inner.timers.pop() {
                Some(Reverse(timer)) => {
                    inner.now_us = inner.now_us.max(timer.at_us);
                    timer.waker.wake();
                }
                None => return Err(Deadlock),
            }
        }
    }
}

/// What an idle driver tells [`Runtime::run_driven`] to do when every
/// task is blocked.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IdleStep {
    /// Advance the virtual clock to this time (µs; clamped to be
    /// monotonic) and keep running. Timers whose deadline has passed
    /// fire; tasks woken by the driver (e.g. through
    /// [`crate::router::Net::inject`]) run.
    Advance(f64),
    /// Nothing will ever arrive: stop with [`Deadlock`].
    Halt,
}

impl<'a> Runtime<'a> {
    /// Drives `main` like [`Runtime::run`], but delegates idle moments
    /// to `on_idle` instead of jumping the virtual clock.
    ///
    /// [`Runtime::run`] is a *simulation* driver: when every task is
    /// blocked, time teleports to the earliest timer. A runtime bridged
    /// to a real network cannot teleport — a pending RPC timer must
    /// race *actual* I/O. `on_idle(now_us, next_timer_us)` is called
    /// whenever no task is ready; a wall-clock driver typically blocks
    /// on its socket queues (up to the next timer's real deadline),
    /// delivers whatever arrived, and returns
    /// [`IdleStep::Advance`]`(wall_elapsed_us)` so virtual time tracks
    /// the wall clock and RPC timeouts become real deadlines.
    ///
    /// # Errors
    ///
    /// Returns [`Deadlock`] when `on_idle` answers [`IdleStep::Halt`].
    pub fn run_driven<T: 'a>(
        &self,
        main: impl Future<Output = T> + 'a,
        mut on_idle: impl FnMut(f64, Option<f64>) -> IdleStep,
    ) -> Result<T, Deadlock> {
        let out: Rc<RefCell<Option<T>>> = Rc::new(RefCell::new(None));
        let out2 = Rc::clone(&out);
        self.handle().spawn(async move {
            let value = main.await;
            *out2.borrow_mut() = Some(value);
        });
        loop {
            {
                let mut woken = self.woken.lock().expect("wake queue poisoned");
                let mut inner = self.inner.borrow_mut();
                for id in woken.drain(..) {
                    if inner.tasks.contains_key(&id) && !inner.ready.contains(&id) {
                        inner.ready.push_back(id);
                    }
                }
            }
            let next = self.inner.borrow_mut().ready.pop_front();
            if let Some(id) = next {
                let Some(mut fut) = self.inner.borrow_mut().tasks.remove(&id) else {
                    continue;
                };
                let waker = Waker::from(Arc::new(TaskWaker {
                    id,
                    queue: Arc::clone(&self.woken),
                }));
                let mut cx = Context::from_waker(&waker);
                match fut.as_mut().poll(&mut cx) {
                    Poll::Ready(()) => {}
                    Poll::Pending => {
                        self.inner.borrow_mut().tasks.insert(id, fut);
                    }
                }
                if let Some(value) = out.borrow_mut().take() {
                    return Ok(value);
                }
                continue;
            }
            // Nothing ready: fire any timer already due, otherwise ask
            // the driver how to proceed.
            {
                let mut inner = self.inner.borrow_mut();
                if !self.woken.lock().expect("wake queue poisoned").is_empty() {
                    continue; // a poll raced a wake; loop again
                }
                let due = inner
                    .timers
                    .peek()
                    .is_some_and(|Reverse(t)| t.at_us <= inner.now_us);
                if due {
                    if let Some(Reverse(timer)) = inner.timers.pop() {
                        timer.waker.wake();
                    }
                    continue;
                }
            }
            let (now, next_timer) = {
                let inner = self.inner.borrow();
                (inner.now_us, inner.timers.peek().map(|Reverse(t)| t.at_us))
            };
            match on_idle(now, next_timer) {
                IdleStep::Advance(to_us) => {
                    let mut inner = self.inner.borrow_mut();
                    inner.now_us = inner.now_us.max(to_us);
                }
                IdleStep::Halt => return Err(Deadlock),
            }
        }
    }
}

/// Polls a set of unpinned futures concurrently; resolves to their outputs
/// in input order once all are done.
///
/// Children get their own wakers: a wake re-polls only the child that
/// asked for it, not every pending sibling. (Broadcast re-polling is not
/// just wasted work — a pending `Sleep` registers a fresh timer on every
/// poll, so re-polling N sleepers on each of N wakes multiplies timer
/// entries geometrically and a large join never finishes.)
pub fn join_all<F: Future + Unpin>(futs: Vec<F>) -> JoinAll<F> {
    let n = futs.len();
    let shared = Arc::new(JoinShared {
        woken: Mutex::new((0..n).map(|_| true).collect()),
        parent: Mutex::new(None),
    });
    JoinAll {
        futs: futs.into_iter().map(Some).collect(),
        outs: (0..n).map(|_| None).collect(),
        wakers: (0..n)
            .map(|index| {
                Waker::from(Arc::new(ChildWaker {
                    index,
                    shared: Arc::clone(&shared),
                }))
            })
            .collect(),
        shared,
        pending: n,
    }
}

/// Wake flags shared between a [`JoinAll`] and its children's wakers.
struct JoinShared {
    /// Per-child "poll me again" flags (all start `true`).
    woken: Mutex<Vec<bool>>,
    /// The join's own waker, refreshed on every poll.
    parent: Mutex<Option<Waker>>,
}

/// Wakes child `index`: flags it for re-polling and wakes the join.
struct ChildWaker {
    index: usize,
    shared: Arc<JoinShared>,
}

impl Wake for ChildWaker {
    fn wake(self: Arc<Self>) {
        self.shared.woken.lock().expect("join wake flags poisoned")[self.index] = true;
        let parent = self
            .shared
            .parent
            .lock()
            .expect("join parent waker poisoned")
            .take();
        if let Some(waker) = parent {
            waker.wake();
        }
    }
}

/// Future returned by [`join_all`].
pub struct JoinAll<F: Future> {
    futs: Vec<Option<F>>,
    outs: Vec<Option<F::Output>>,
    wakers: Vec<Waker>,
    shared: Arc<JoinShared>,
    pending: usize,
}

// `JoinAll` never pins its fields structurally (the contained futures are
// themselves `Unpin`), so moving it is always fine.
impl<F: Future + Unpin> Unpin for JoinAll<F> {}

impl<F: Future + Unpin> Future for JoinAll<F> {
    type Output = Vec<F::Output>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        // Store the parent waker *before* draining the flags: a child
        // woken after the drain finds the waker and re-queues the join.
        *this
            .shared
            .parent
            .lock()
            .expect("join parent waker poisoned") = Some(cx.waker().clone());
        loop {
            let to_poll: Vec<usize> = {
                let mut woken = this.shared.woken.lock().expect("join wake flags poisoned");
                let flagged = woken
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| **w)
                    .map(|(i, _)| i)
                    .collect();
                woken.iter_mut().for_each(|w| *w = false);
                flagged
            };
            if to_poll.is_empty() {
                break;
            }
            for i in to_poll {
                if let Some(fut) = &mut this.futs[i] {
                    let mut child_cx = Context::from_waker(&this.wakers[i]);
                    if let Poll::Ready(value) = Pin::new(fut).poll(&mut child_cx) {
                        this.outs[i] = Some(value);
                        this.futs[i] = None;
                        this.pending -= 1;
                    }
                }
            }
        }
        if this.pending == 0 {
            Poll::Ready(
                this.outs
                    .iter_mut()
                    .map(|o| o.take().expect("output set"))
                    .collect(),
            )
        } else {
            Poll::Pending
        }
    }
}

/// Resolves `fut` or gives up after `dur_us` of virtual time.
pub async fn timeout<'a, T, F: Future<Output = T> + Unpin>(
    handle: &Handle<'a>,
    dur_us: f64,
    fut: F,
) -> Option<T> {
    let mut sleep = handle.sleep(dur_us);
    let mut fut = fut;
    std::future::poll_fn(move |cx| {
        if let Poll::Ready(value) = Pin::new(&mut fut).poll(cx) {
            return Poll::Ready(Some(value));
        }
        if Pin::new(&mut sleep).poll(cx).is_ready() {
            return Poll::Ready(None);
        }
        Poll::Pending
    })
    .await
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn virtual_time_jumps_to_timers() {
        let rt = Runtime::new();
        let h = rt.handle();
        let h2 = h.clone();
        let t = rt
            .run(async move {
                h2.sleep(1_000_000.0).await;
                h2.now_us()
            })
            .unwrap();
        assert_eq!(t, 1_000_000.0);
        assert!(h.now_us() >= 1_000_000.0);
    }

    #[test]
    fn spawned_tasks_interleave_deterministically() {
        let rt = Runtime::new();
        let h = rt.handle();
        let log: Rc<RefCell<Vec<(u32, f64)>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, delay) in [(1u32, 30.0), (2, 10.0), (3, 20.0)] {
            let h2 = h.clone();
            let log2 = Rc::clone(&log);
            h.spawn(async move {
                h2.sleep(delay).await;
                log2.borrow_mut().push((i, h2.now_us()));
            });
        }
        let h2 = h.clone();
        rt.run(async move { h2.sleep(100.0).await }).unwrap();
        assert_eq!(*log.borrow(), vec![(2, 10.0), (3, 20.0), (1, 30.0)]);
    }

    #[test]
    fn join_all_preserves_order() {
        let rt = Runtime::new();
        let h = rt.handle();
        let h2 = h.clone();
        let outs = rt
            .run(async move {
                let futs: Vec<Pin<Box<dyn Future<Output = u32>>>> = vec![
                    {
                        let h = h2.clone();
                        Box::pin(async move {
                            h.sleep(50.0).await;
                            1
                        })
                    },
                    {
                        let h = h2.clone();
                        Box::pin(async move {
                            h.sleep(10.0).await;
                            2
                        })
                    },
                ];
                join_all(futs).await
            })
            .unwrap();
        assert_eq!(outs, vec![1, 2]);
    }

    #[test]
    fn timeout_fires_on_silence() {
        let rt = Runtime::new();
        let h = rt.handle();
        let h2 = h.clone();
        let out = rt
            .run(async move {
                let never: Pin<Box<dyn Future<Output = ()>>> =
                    Box::pin(std::future::pending::<()>());
                timeout(&h2, 500.0, never).await
            })
            .unwrap();
        assert_eq!(out, None);
    }

    #[test]
    fn deadlock_is_reported_not_hung() {
        let rt = Runtime::new();
        let err = rt.run(std::future::pending::<()>()).unwrap_err();
        assert_eq!(err, Deadlock);
        assert!(err.to_string().contains("deadlock"));
    }

    #[test]
    fn borrows_non_static_state() {
        let counter = Cell::new(0u32);
        let rt = Runtime::new();
        let h = rt.handle();
        for _ in 0..3 {
            let c = &counter;
            h.spawn(async move { c.set(c.get() + 1) });
        }
        let h2 = h.clone();
        let c = &counter;
        rt.run(async move {
            h2.sleep(1.0).await;
            c.get()
        })
        .unwrap();
        assert_eq!(counter.get(), 3);
    }
}
