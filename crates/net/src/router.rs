//! The message router: mailboxes, RPC correlation, and delivery.
//!
//! [`Net`] sits between the actors and the [`Transport`]: a send asks the
//! transport for the message's fate, then either delivers it (after the
//! transport's virtual-time delay) or silently drops it — the sender finds
//! out through its RPC timeout, exactly like a real datagram network.
//! Requests land in the receiving site's FIFO mailbox; responses resolve
//! the caller's pending RPC by correlation id. A response whose RPC is no
//! longer pending (the caller timed out and retried) is discarded as
//! stale, giving at-most-once completion per attempt.

use crate::msg::{Envelope, Payload, Response};
use crate::rt::Handle;
use crate::transport::Transport;
use fedoq_sim::Site;
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

#[derive(Default)]
struct Mailbox {
    queue: VecDeque<Envelope>,
    waker: Option<Waker>,
}

/// A pending RPC's completion slot.
#[derive(Default)]
struct Slot {
    value: Option<Response>,
    waker: Option<Waker>,
}

struct NetInner {
    transport: Rc<RefCell<dyn Transport>>,
    /// One mailbox per component site, then the global site.
    mailboxes: Vec<Rc<RefCell<Mailbox>>>,
    pending: RefCell<HashMap<u64, Rc<RefCell<Slot>>>>,
    next_rpc: Cell<u64>,
    retries: Cell<u64>,
    stale: Cell<u64>,
}

/// Handle to the message fabric shared by every actor.
pub struct Net<'a> {
    rt: Handle<'a>,
    inner: Rc<NetInner>,
}

impl<'a> Clone for Net<'a> {
    fn clone(&self) -> Self {
        Net {
            rt: self.rt.clone(),
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<'a> Net<'a> {
    /// A router over `num_dbs` component sites plus the global site.
    pub fn new(rt: Handle<'a>, transport: Rc<RefCell<dyn Transport>>, num_dbs: usize) -> Net<'a> {
        Net {
            rt,
            inner: Rc::new(NetInner {
                transport,
                mailboxes: (0..num_dbs + 1)
                    .map(|_| Rc::new(RefCell::new(Mailbox::default())))
                    .collect(),
                pending: RefCell::new(HashMap::new()),
                next_rpc: Cell::new(1),
                retries: Cell::new(0),
                stale: Cell::new(0),
            }),
        }
    }

    /// The runtime handle messages are scheduled on.
    pub fn rt(&self) -> &Handle<'a> {
        &self.rt
    }

    fn mailbox(&self, site: Site) -> Rc<RefCell<Mailbox>> {
        let i = match site {
            Site::Db(db) => db.index(),
            Site::Global => self.inner.mailboxes.len() - 1,
        };
        Rc::clone(&self.inner.mailboxes[i])
    }

    /// Sends `env` through the transport; dropped messages vanish without
    /// a trace (the sender's timeout is the only signal).
    pub fn send(&self, env: Envelope) {
        // A forwarding transport (real wire) takes the envelope out of
        // process; replies come back through `inject`.
        if self
            .inner
            .transport
            .borrow_mut()
            .forward(&env, self.rt.now_us())
        {
            return;
        }
        let fate = self
            .inner
            .transport
            .borrow_mut()
            .dispatch(&env, self.rt.now_us());
        let Some(delay_us) = fate else { return };
        if delay_us <= 0.0 {
            self.deliver(env);
        } else {
            let this = self.clone();
            self.rt.spawn(async move {
                this.rt.sleep(delay_us).await;
                this.deliver(env);
            });
        }
    }

    /// Sends the response half of an RPC back to its caller.
    pub fn respond(&self, request: &Envelope, bytes: u64, response: Response) {
        self.send(Envelope {
            from: request.to,
            to: request.from,
            rpc: request.rpc,
            bytes,
            phase: request.phase,
            payload: Payload::Response(response),
        });
    }

    fn deliver(&self, env: Envelope) {
        match env.payload {
            Payload::Request(_) => {
                let mailbox = self.mailbox(env.to);
                let mut mb = mailbox.borrow_mut();
                mb.queue.push_back(env);
                if let Some(waker) = mb.waker.take() {
                    waker.wake();
                }
            }
            Payload::Response(response) => {
                let slot = self.inner.pending.borrow_mut().remove(&env.rpc);
                match slot {
                    Some(slot) => {
                        let mut s = slot.borrow_mut();
                        s.value = Some(response);
                        if let Some(waker) = s.waker.take() {
                            waker.wake();
                        }
                    }
                    // The caller timed out and moved on: stale response.
                    None => self.inner.stale.set(self.inner.stale.get() + 1),
                }
            }
        }
    }

    /// Delivers an envelope that arrived from outside the process
    /// (received over a real wire by a forwarding transport), bypassing
    /// the transport's fate decision: requests land in the addressee's
    /// mailbox, responses resolve their pending RPC.
    pub fn inject(&self, env: Envelope) {
        self.deliver(env);
    }

    /// Seeds the RPC id counter at `base` (if `base` is ahead of it).
    ///
    /// In-process runs never need this — ids are unique per router. When
    /// several routers in several OS processes share TCP connections,
    /// correlation ids must not collide across processes, so each
    /// process seeds its routers from a disjoint range.
    pub fn seed_rpc_ids(&self, base: u64) {
        if base > self.inner.next_rpc.get() {
            self.inner.next_rpc.set(base);
        }
    }

    /// Waits for the next request addressed to `site`.
    pub fn recv(&self, site: Site) -> Recv {
        Recv {
            mailbox: self.mailbox(site),
        }
    }

    /// Allocates a fresh RPC id and its completion future.
    pub fn register_rpc(&self) -> (u64, ResponseFuture) {
        let id = self.inner.next_rpc.get();
        self.inner.next_rpc.set(id + 1);
        let slot = Rc::new(RefCell::new(Slot::default()));
        self.inner.pending.borrow_mut().insert(id, Rc::clone(&slot));
        (id, ResponseFuture { slot })
    }

    /// Forgets a pending RPC (after a timeout); a late response becomes
    /// stale instead of resolving a retired future.
    pub fn cancel_rpc(&self, id: u64) {
        self.inner.pending.borrow_mut().remove(&id);
    }

    /// Records one retry attempt (for diagnostics).
    pub fn note_retry(&self) {
        self.inner.retries.set(self.inner.retries.get() + 1);
    }

    /// Total retry attempts recorded so far.
    pub fn retries(&self) -> u64 {
        self.inner.retries.get()
    }

    /// Responses that arrived after their caller gave up.
    pub fn stale_responses(&self) -> u64 {
        self.inner.stale.get()
    }
}

/// Future returned by [`Net::recv`].
pub struct Recv {
    mailbox: Rc<RefCell<Mailbox>>,
}

impl Future for Recv {
    type Output = Envelope;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Envelope> {
        let mut mb = self.mailbox.borrow_mut();
        match mb.queue.pop_front() {
            Some(env) => Poll::Ready(env),
            None => {
                mb.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

/// Future resolving to the response of a registered RPC.
pub struct ResponseFuture {
    slot: Rc<RefCell<Slot>>,
}

impl Future for ResponseFuture {
    type Output = Response;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Response> {
        let mut slot = self.slot.borrow_mut();
        match slot.value.take() {
            Some(response) => Poll::Ready(response),
            None => {
                slot.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}
