//! Criterion micro-benchmarks of the substrates themselves: local scan
//! throughput, signature probes, GOid-table lookups, parsing/binding, and
//! persistence encode/decode. These track the engine's raw speed,
//! independent of the simulated cost model.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fedoq_object::{CmpOp, ObjectSignature, Value};
use fedoq_query::{bind, parse};
use fedoq_store::{load_db, save_db, LocalQuery};
use fedoq_workload::{university, WorkloadParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample_federation() -> fedoq_workload::GeneratedSample {
    let params = WorkloadParams::paper_default().scaled(0.2); // ~1100 objects/class/db
    let config = params.sample(&mut StdRng::seed_from_u64(7));
    fedoq_workload::generate(&config, 7)
}

fn bench_local_scan(c: &mut Criterion) {
    let sample = sample_federation();
    let db = &sample.federation.dbs()[0];
    let query = LocalQuery::build(
        db,
        "C1",
        &[
            ("key", CmpOp::Ge, Value::Int(0)),
            ("t0", CmpOp::Lt, Value::Int(500)),
        ],
        &["t0", "t1"],
    )
    .expect("generated schema has key and targets");
    c.bench_function("substrate/local_scan", |b| b.iter(|| query.execute(db)));
}

fn bench_signature_probes(c: &mut Criterion) {
    let mut sig = ObjectSignature::new();
    for i in 0..8 {
        sig.insert("attr", &Value::Int(i));
    }
    sig.insert_null("other");
    c.bench_function("substrate/signature_probe", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for i in 0..64i64 {
                if sig.may_contain("attr", &Value::Int(i)) {
                    hits += 1;
                }
            }
            hits
        });
    });
}

fn bench_goid_lookup(c: &mut Criterion) {
    let sample = sample_federation();
    let fed = &sample.federation;
    let class = fed.global_schema().class_id("C1").unwrap();
    let table = fed.catalog().table(class);
    let loids: Vec<_> = fed.dbs()[0].extent_by_name("C1").unwrap().loids().collect();
    c.bench_function("substrate/goid_lookup", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for &l in &loids {
                if table.goid_of(l).is_some() {
                    found += 1;
                }
            }
            found
        });
    });
}

fn bench_parse_and_bind(c: &mut Criterion) {
    let fed = university::federation().unwrap();
    c.bench_function("substrate/parse_bind_q1", |b| {
        b.iter(|| {
            let q = parse(university::Q1).unwrap();
            bind(&q, fed.global_schema()).unwrap()
        });
    });
}

fn bench_persistence(c: &mut Criterion) {
    let sample = sample_federation();
    let db = &sample.federation.dbs()[0];
    let mut encoded = Vec::new();
    save_db(db, &mut encoded).unwrap();
    c.bench_function("substrate/persist_save", |b| {
        b.iter_batched(
            Vec::new,
            |mut buffer| {
                save_db(db, &mut buffer).unwrap();
                buffer
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("substrate/persist_load", |b| {
        b.iter(|| load_db(&mut encoded.as_slice()).unwrap());
    });
}

/// Trimmed sampling so the full suite completes in minutes; override
/// with Criterion's CLI flags when deeper measurement is needed.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_local_scan,
    bench_signature_probes,
    bench_goid_lookup,
    bench_parse_and_bind,
    bench_persistence
}
criterion_main!(benches);
