//! Criterion benchmark: wall-clock cost of executing each strategy
//! (including its cost-accounting simulation) on the paper's university
//! example and on a default Table-2 synthetic federation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedoq_core::{run_strategy, BasicLocalized, Centralized, ExecutionStrategy, ParallelLocalized};
use fedoq_query::bind;
use fedoq_sim::SystemParams;
use fedoq_workload::{generate, university, WorkloadParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn strategies() -> Vec<Box<dyn ExecutionStrategy>> {
    vec![
        Box::new(Centralized),
        Box::new(BasicLocalized::new()),
        Box::new(ParallelLocalized::new()),
        Box::new(BasicLocalized::with_signatures()),
        Box::new(ParallelLocalized::with_signatures()),
    ]
}

fn bench_university(c: &mut Criterion) {
    let fed = university::federation().unwrap();
    let query = fed.parse_and_bind(university::Q1).unwrap();
    let mut group = c.benchmark_group("university_q1");
    for strategy in strategies() {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &strategy,
            |b, strategy| {
                b.iter(|| {
                    run_strategy(
                        strategy.as_ref(),
                        &fed,
                        &query,
                        SystemParams::paper_default(),
                    )
                    .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_synthetic(c: &mut Criterion) {
    let params = WorkloadParams::paper_default().scaled(0.05); // ~275 objects/class/db
    let config = params.sample(&mut StdRng::seed_from_u64(42));
    let sample = generate(&config, 42);
    let query = bind(&sample.query, sample.federation.global_schema()).unwrap();
    let mut group = c.benchmark_group("synthetic_default");
    for strategy in strategies() {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &strategy,
            |b, strategy| {
                b.iter(|| {
                    run_strategy(
                        strategy.as_ref(),
                        &sample.federation,
                        &query,
                        SystemParams::paper_default(),
                    )
                    .unwrap()
                });
            },
        );
    }
    group.finish();
}

/// Trimmed sampling so the full suite completes in minutes; override
/// with Criterion's CLI flags when deeper measurement is needed.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_university, bench_synthetic
}
criterion_main!(benches);
