//! Criterion benchmark backing Figure 9: executes each strategy at
//! representative sweep points (scaled down for wall-clock benching).
//! The actual figure data comes from the `figures` binary, which runs
//! the full Monte-Carlo sweep; this bench tracks the engine's throughput
//! at the same workload shape.

mod common {
    include!("common/points.rs");
}

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    common::bench_points(c, "fig9", common::fig9_points());
}

/// Trimmed sampling so the full suite completes in minutes; override
/// with Criterion's CLI flags when deeper measurement is needed.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
