//! Criterion benchmark: wall-clock overhead of the distributed
//! site-actor runtime versus the in-process strategies, plus the cost of
//! riding out an unreliable network (retries and timeouts all run in
//! virtual time, so only scheduling overhead is real).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedoq_core::run_strategy;
use fedoq_net::{DistributedExecutor, DistributedStrategy, FaultEvent, SimTransport, Transport};
use fedoq_query::bind;
use fedoq_sim::{Simulation, SystemParams};
use fedoq_workload::{generate, university, WorkloadParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::rc::Rc;

fn strategies() -> Vec<DistributedStrategy> {
    vec![
        DistributedStrategy::ca(),
        DistributedStrategy::bl(),
        DistributedStrategy::pl(),
    ]
}

fn bench_runtime_overhead(c: &mut Criterion) {
    let fed = university::federation().unwrap();
    let query = fed.parse_and_bind(university::Q1).unwrap();
    let mut group = c.benchmark_group("distributed_university_q1");
    for strategy in strategies() {
        group.bench_with_input(
            BenchmarkId::new("sync", strategy.name()),
            &strategy,
            |b, strategy| {
                b.iter(|| {
                    run_strategy(
                        strategy.sync().as_ref(),
                        &fed,
                        &query,
                        SystemParams::paper_default(),
                    )
                    .unwrap()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("actors", strategy.name()),
            &strategy,
            |b, strategy| {
                b.iter(|| {
                    DistributedExecutor::new()
                        .run_local(&fed, &query, *strategy)
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_lossy_network(c: &mut Criterion) {
    let params = WorkloadParams::paper_default().scaled(0.02);
    let config = params.sample(&mut StdRng::seed_from_u64(42));
    let sample = generate(&config, 42);
    let fed = &sample.federation;
    let query = bind(&sample.query, fed.global_schema()).unwrap();
    let mut group = c.benchmark_group("distributed_synthetic_lossy");
    for drop_rate in [0.0_f64, 0.05] {
        group.bench_with_input(
            BenchmarkId::new("BL", format!("drop_{drop_rate}")),
            &drop_rate,
            |b, &drop_rate| {
                b.iter(|| {
                    let sim = Rc::new(RefCell::new(Simulation::new(
                        SystemParams::paper_default(),
                        fed.num_dbs(),
                    )));
                    let mut t = SimTransport::new(Rc::clone(&sim), 7);
                    t.inject(FaultEvent::SetDropRate(drop_rate));
                    let transport: Rc<RefCell<dyn Transport>> = Rc::new(RefCell::new(t));
                    DistributedExecutor::new()
                        .run(fed, &query, DistributedStrategy::bl(), transport, sim)
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_runtime_overhead, bench_lossy_network);
criterion_main!(benches);
