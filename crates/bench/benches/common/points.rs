// Shared helpers for the per-figure Criterion benches: each figure is
// represented by a few characteristic sweep points, and every strategy
// executes one pre-generated sample per point.

use criterion::{BenchmarkId, Criterion};
use fedoq_core::{
    run_strategy, BasicLocalized, Centralized, ExecutionStrategy, ParallelLocalized,
};
use fedoq_query::bind;
use fedoq_sim::SystemParams;
use fedoq_workload::WorkloadParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Benchmark-time workload scale (the figures binary runs full scale).
const SCALE: f64 = 0.03;

/// One labelled sweep point.
pub struct Point {
    pub label: String,
    pub params: WorkloadParams,
}

/// Figure 9's characteristic points: small, default, and large extents.
#[allow(dead_code)]
pub fn fig9_points() -> Vec<Point> {
    [1000.0f64, 3000.0, 6000.0]
        .into_iter()
        .map(|objects| {
            let mut p = WorkloadParams::paper_default();
            let lo = ((objects * 0.9 * SCALE).round() as usize).max(1);
            let hi = ((objects * 1.1 * SCALE).round() as usize).max(lo);
            p.objects_per_class = lo..=hi;
            Point { label: format!("objects={objects}"), params: p }
        })
        .collect()
}

/// Figure 10's characteristic points: few and many component databases.
#[allow(dead_code)]
pub fn fig10_points() -> Vec<Point> {
    [2usize, 5, 8]
        .into_iter()
        .map(|n_db| {
            let mut p = WorkloadParams::paper_default().scaled(SCALE);
            p.n_db = n_db;
            Point { label: format!("n_db={n_db}"), params: p }
        })
        .collect()
}

/// Figure 11's characteristic points: low and high local selectivity.
#[allow(dead_code)]
pub fn fig11_points() -> Vec<Point> {
    [0.1f64, 0.5, 0.9]
        .into_iter()
        .map(|sel| {
            let mut p = WorkloadParams::paper_default().scaled(SCALE);
            p.preds_per_class = 1..=3;
            p.forced_selectivity = Some(sel);
            Point { label: format!("selectivity={sel}"), params: p }
        })
        .collect()
}

fn strategies() -> Vec<Box<dyn ExecutionStrategy>> {
    vec![
        Box::new(Centralized),
        Box::new(BasicLocalized::new()),
        Box::new(ParallelLocalized::new()),
    ]
}

/// Benches every strategy at every point of one figure.
pub fn bench_points(c: &mut Criterion, figure: &str, points: Vec<Point>) {
    for (i, point) in points.into_iter().enumerate() {
        let seed = 0xBE_ACE + i as u64;
        let config = point.params.sample(&mut StdRng::seed_from_u64(seed));
        let sample = fedoq_workload::generate(&config, seed);
        let query = bind(&sample.query, sample.federation.global_schema()).unwrap();
        let mut group = c.benchmark_group(format!("{figure}/{}", point.label));
        for strategy in strategies() {
            group.bench_with_input(
                BenchmarkId::from_parameter(strategy.name()),
                &strategy,
                |b, strategy| {
                    b.iter(|| {
                        run_strategy(
                            strategy.as_ref(),
                            &sample.federation,
                            &query,
                            SystemParams::paper_default(),
                        )
                        .unwrap()
                    });
                },
            );
        }
        group.finish();
    }
}
