//! Rendering experiment results as aligned tables and CSV files.

use crate::experiments::ExperimentResult;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Which measure of a figure to render.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Measure {
    /// Sub-figure (a): total execution time, in seconds.
    Total,
    /// Sub-figure (b): response time, in seconds.
    Response,
    /// Network bytes (supporting data, not a paper sub-figure).
    NetBytes,
}

impl Measure {
    fn label(self) -> &'static str {
        match self {
            Measure::Total => "total execution time (s)",
            Measure::Response => "response time (s)",
            Measure::NetBytes => "network bytes",
        }
    }

    fn value(self, m: &fedoq_sim::QueryMetrics) -> f64 {
        match self {
            Measure::Total => m.total_execution_us / 1e6,
            Measure::Response => m.response_us / 1e6,
            Measure::NetBytes => m.bytes_transferred as f64,
        }
    }
}

/// Renders one measure of a figure as an aligned text table, one row per
/// sweep value and one column per strategy.
pub fn render_table(result: &ExperimentResult, measure: Measure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} — {}", result.id, measure.label());
    let _ = write!(out, "{:>28}", result.x_label);
    for s in &result.series {
        let _ = write!(out, "{:>12}", s.name);
    }
    let _ = writeln!(out);
    for point in &result.points {
        let _ = write!(out, "{:>28}", trim_float(point.x));
        for m in &point.metrics {
            let v = measure.value(m);
            if v >= 1000.0 {
                let _ = write!(out, "{v:>12.0}");
            } else {
                let _ = write!(out, "{v:>12.3}");
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Writes a figure's full data (both measures plus supporting counters)
/// as CSV.
///
/// # Errors
///
/// Propagates filesystem errors from creating or writing the file.
pub fn write_csv(result: &ExperimentResult, path: &Path) -> io::Result<()> {
    let mut out = String::new();
    let _ = write!(out, "x");
    for s in &result.series {
        let _ = write!(
            out,
            ",{n}_total_s,{n}_total_std_s,{n}_response_s,{n}_response_std_s,\
             {n}_net_bytes,{n}_comparisons",
            n = s.name
        );
    }
    let _ = writeln!(out);
    for point in &result.points {
        let _ = write!(out, "{}", trim_float(point.x));
        for (m, d) in point.metrics.iter().zip(&point.dispersion) {
            let _ = write!(
                out,
                ",{:.6},{:.6},{:.6},{:.6},{},{}",
                m.total_execution_us / 1e6,
                d.total_std_us / 1e6,
                m.response_us / 1e6,
                d.response_std_us / 1e6,
                m.bytes_transferred,
                m.comparisons
            );
        }
        let _ = writeln!(out);
    }
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, out)
}

fn trim_float(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{StrategySeries, SweepPoint};
    use fedoq_sim::QueryMetrics;

    fn sample_result() -> ExperimentResult {
        let m = |t: f64, r: f64| QueryMetrics {
            total_execution_us: t,
            response_us: r,
            bytes_transferred: 10,
            comparisons: 5,
            ..QueryMetrics::default()
        };
        ExperimentResult {
            id: "fig9",
            x_label: "objects",
            series: vec![StrategySeries { name: "CA" }, StrategySeries { name: "BL" }],
            points: vec![
                SweepPoint {
                    x: 1000.0,
                    metrics: vec![m(2e6, 1e6), m(1e6, 0.5e6)],
                    dispersion: vec![Default::default(); 2],
                },
                SweepPoint {
                    x: 2000.0,
                    metrics: vec![m(4e6, 2e6), m(2e6, 1e6)],
                    dispersion: vec![Default::default(); 2],
                },
            ],
        }
    }

    #[test]
    fn table_contains_headers_and_values() {
        let t = render_table(&sample_result(), Measure::Total);
        assert!(t.contains("fig9"));
        assert!(t.contains("CA"));
        assert!(t.contains("BL"));
        assert!(t.contains("1000"));
        assert!(t.contains("4.000"));
        let t = render_table(&sample_result(), Measure::Response);
        assert!(t.contains("0.500"));
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("fedoq_csv_test");
        let path = dir.join("fig9.csv");
        write_csv(&sample_result(), &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let header = content.lines().next().unwrap();
        assert!(header.starts_with("x,CA_total_s,CA_total_std_s,CA_response_s"));
        assert!(header.contains("BL_net_bytes"));
        assert!(content.contains("1000,2.000000,0.000000,1.000000,0.000000,10,5"));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn float_trimming() {
        assert_eq!(trim_float(3.0), "3");
        assert_eq!(trim_float(0.3), "0.3");
    }
}
