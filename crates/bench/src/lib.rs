//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (Section 4).
//!
//! Each figure is a sweep of one Table-2 parameter; at every sweep point
//! the harness draws `samples` random configurations (the paper uses
//! 500), generates a federation + query per configuration, executes every
//! strategy on the *same* samples (paired comparison), and averages the
//! measured total execution time and response time.
//!
//! Environment knobs (read by [`Settings::from_env`]):
//!
//! * `FEDOQ_SAMPLES` — configurations per sweep point (default 120;
//!   paper-faithful 500);
//! * `FEDOQ_SCALE` — object-count scale factor (default 1.0 = the paper's
//!   5000–6000 objects per constituent class).

pub mod experiments;
pub mod report;

pub use experiments::{
    fig10, fig11, fig9, network_ablation, niso_sweep, run_point, run_point_detailed,
    signature_ablation, Dispersion, ExperimentResult, Settings, StrategySeries, SweepPoint,
};
pub use report::{render_table, write_csv, Measure};
