//! Regenerates the paper's evaluation artifacts.
//!
//! ```text
//! figures [--table1] [--table2] [--fig8] [--fig9] [--fig10] [--fig11]
//!         [--ablation] [--niso] [--net-ablation] [--analytic] [--all]
//! ```
//!
//! Each figure prints both sub-figures — (a) total execution time and
//! (b) response time — as aligned tables, and writes the full data to
//! `results/<id>.csv`. Sample count and workload scale come from
//! `FEDOQ_SAMPLES` and `FEDOQ_SCALE` (see `fedoq-bench`).

use fedoq_analytic::{estimate, StrategyKind};
use fedoq_bench::{
    fig10, fig11, fig9, network_ablation, niso_sweep, render_table, signature_ablation, Measure,
    Settings,
};
use fedoq_sim::SystemParams;
use fedoq_workload::{
    analytic_inputs, predict_fig10, predict_fig11, predict_fig9, PredictedPoint, WorkloadParams,
};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "--all");
    let want = |flag: &str| all || args.iter().any(|a| a == flag);
    let settings = Settings::from_env();
    println!(
        "settings: {} samples per point, scale {} (paper: 500 samples, scale 1.0)\n",
        settings.samples, settings.scale
    );

    if want("--table1") {
        print_table1();
    }
    if want("--table2") {
        print_table2();
    }
    if want("--fig8") {
        print_fig8();
    }
    for (flag, runner) in [
        (
            "--fig9",
            fig9 as fn(Settings) -> fedoq_bench::ExperimentResult,
        ),
        ("--fig10", fig10),
        ("--fig11", fig11),
    ] {
        if want(flag) {
            run_figure(runner, settings);
        }
    }
    if want("--ablation") {
        let result = signature_ablation(settings);
        println!("{}", render_table(&result, Measure::Total));
        println!("{}", render_table(&result, Measure::Response));
        println!("{}", render_table(&result, Measure::NetBytes));
        save(&result);
    }
    if want("--niso") {
        let result = niso_sweep(settings);
        println!("{}", render_table(&result, Measure::Total));
        println!("{}", render_table(&result, Measure::Response));
        save(&result);
    }
    if want("--net-ablation") {
        let result = network_ablation(settings);
        println!("{}", render_table(&result, Measure::Total));
        println!("{}", render_table(&result, Measure::Response));
        save(&result);
    }
    if want("--analytic") || all {
        print_analytic();
    }
}

fn run_figure(runner: fn(Settings) -> fedoq_bench::ExperimentResult, settings: Settings) {
    let start = std::time::Instant::now();
    let result = runner(settings);
    println!("{}", render_table(&result, Measure::Total));
    println!("{}", render_table(&result, Measure::Response));
    save(&result);
    println!(
        "[{} done in {:.1}s]\n",
        result.id,
        start.elapsed().as_secs_f64()
    );
}

fn save(result: &fedoq_bench::ExperimentResult) {
    let path = PathBuf::from("results").join(format!("{}.csv", result.id));
    match fedoq_bench::write_csv(result, &path) {
        Ok(()) => println!("[wrote {}]", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}

fn print_table1() {
    let p = SystemParams::paper_default();
    println!("Table 1 — system parameters");
    println!(
        "  S_a    average size of attributes          {} bytes",
        p.attr_bytes
    );
    println!(
        "  S_GOid size of GOid                        {} bytes",
        p.goid_bytes
    );
    println!(
        "  S_LOid size of LOid                        {} bytes",
        p.loid_bytes
    );
    println!(
        "  S_s    size of object signatures           {} bytes",
        p.signature_bytes
    );
    println!(
        "  T_d    average disk access time            {} µs/byte",
        p.disk_us_per_byte
    );
    println!(
        "  T_net  average network transfer time       {} µs/byte",
        p.net_us_per_byte
    );
    println!(
        "  T_c    average cpu processing time         {} µs/comparison",
        p.cpu_us_per_cmp
    );
    println!(
        "  N_iso  average isomeric objects per entity {}",
        p.avg_isomeric
    );
    println!();
}

fn print_table2() {
    let p = WorkloadParams::paper_default();
    println!("Table 2 — database and query parameters (defaults)");
    println!("  N_db   component databases                 {}", p.n_db);
    println!(
        "  N_c    global classes involved             {:?}",
        p.n_classes
    );
    println!(
        "  N_p^k  predicates per class                {:?}",
        p.preds_per_class
    );
    println!(
        "  N_o    objects per constituent class       {:?}",
        p.objects_per_class
    );
    println!(
        "  R_r    ratio of objects referenced         {:?}",
        p.ref_ratio
    );
    println!(
        "  N_ta   target attributes                   {:?}",
        p.target_attrs
    );
    println!(
        "  R_m    injected-null ratio                 {:?}",
        p.null_ratio
    );
    println!(
        "  R_iso  entities with isomeric copies       {:.3}",
        p.effective_iso_ratio()
    );
    println!("  N_iso  copies per replicated entity        {}", p.n_iso);
    println!("  R_ps   class selectivity                   0.45^sqrt(N_p)");
    println!();
}

/// Figure 8 — the executing flows of the three algorithms, rendered as
/// real timelines of Q1 over the paper's university federation.
fn print_fig8() {
    use fedoq_core::{BasicLocalized, Centralized, ExecutionStrategy, ParallelLocalized};
    use fedoq_sim::{timeline, Simulation};
    use fedoq_workload::university;

    println!("Figure 8 — executing flows (Q1 over the university federation)\n");
    let fed = university::federation().expect("university federation builds");
    let q1 = fed.parse_and_bind(university::Q1).expect("Q1 binds");
    for strategy in [
        &Centralized as &dyn ExecutionStrategy,
        &BasicLocalized::new(),
        &ParallelLocalized::new(),
    ] {
        let mut sim = Simulation::new(SystemParams::paper_default(), fed.num_dbs());
        strategy.execute(&fed, &q1, &mut sim).expect("Q1 executes");
        println!(
            "{} ({}):",
            strategy.name(),
            match strategy.name() {
                "CA" => "O -> I -> P",
                "BL" => "P -> O -> I",
                _ => "O -> P -> I",
            }
        );
        println!("{}", timeline::render(sim.ledger(), fed.num_dbs()));
    }
}

fn print_analytic() {
    println!("Analytic expected-cost model (Table-2 defaults)");
    let inputs = analytic_inputs(
        &WorkloadParams::paper_default(),
        SystemParams::paper_default(),
    );
    for kind in StrategyKind::ALL {
        println!("  {kind}: {}", estimate(kind, &inputs));
    }
    println!();
    for (label, points) in [
        ("fig9 (objects)", predict_fig9()),
        ("fig10 (databases)", predict_fig10()),
        ("fig11 (selectivity)", predict_fig11()),
    ] {
        print_prediction(label, &points);
    }
}

fn print_prediction(label: &str, points: &[PredictedPoint]) {
    println!("analytic prediction — {label}: total s (response s)");
    println!("{:>12} {:>22} {:>22} {:>22}", "x", "CA", "BL", "PL");
    for (x, estimates) in points {
        let cell = |e: &fedoq_analytic::TimeEstimate| {
            format!("{:.1} ({:.1})", e.total_us / 1e6, e.response_us / 1e6)
        };
        println!(
            "{x:>12} {:>22} {:>22} {:>22}",
            cell(&estimates[0]),
            cell(&estimates[1]),
            cell(&estimates[2])
        );
    }
    println!();
}
