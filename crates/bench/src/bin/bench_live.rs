//! Standing-query maintenance benchmark: incremental reclassification
//! versus naive re-execution.
//!
//! Builds a generated federation with eight global classes (the chain
//! `C1 → … → C8` across three databases, with the paper's missing
//! attributes and injected nulls), registers a fleet of standing
//! queries (64 by default) — two query shapes per class, one
//! predicating on the sometimes-missing `p0` (maybe rows with
//! provenance conditions) and one on the always-present `t0` — spread
//! across all four live strategies, then applies a seeded stream of
//! sparse single-class mutations and reports:
//!
//! * p50/p99 delta-propagation latency (wall µs from the mutation call
//!   to every affected subscriber holding its delta batch);
//! * the incremental-vs-naive speedup: reactor maintenance re-evaluates
//!   only footprint-affected subscriptions (one class in eight per
//!   mutation), the naive baseline re-runs every standing query from
//!   scratch after every mutation;
//! * evaluation counts for both sides (the mechanism behind the wall
//!   numbers);
//! * `wrong_deltas`: after **every** mutation, every subscription's
//!   maintained conditioned answer is rendered and compared
//!   byte-for-byte against the from-scratch evaluation — the naive
//!   baseline *is* the correctness oracle, so the published speedup is
//!   backed by the same differential the test suite uses.
//!
//! Exits nonzero on any wrong delta, an FQ308-unsound reclassification
//! trace, or a speedup below the bar (5x full, 3x quick).
//!
//! `FEDOQ_QUICK=1` shrinks the fleet and the mutation stream for CI.
//!
//! Writes `results/BENCH_live.json`.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use fedoq_core::Federation;
use fedoq_live::{
    evaluate, render_conditioned, LiveEvent, LiveReactor, LiveStrategy, Registration, SubId,
};
use fedoq_object::Value;
use fedoq_query::BoundQuery;
use fedoq_sim::SystemParams;
use fedoq_workload::WorkloadParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Workload and mutation-stream seed; the whole benchmark is a pure
/// function of it.
const SEED: u64 = 42;

/// Global classes in the generated chain. Each standing query watches
/// exactly one, so a single-class mutation re-evaluates 1/8 of the
/// fleet — the sparsity the footprint filter exploits.
const N_CLASSES: usize = 8;

/// Value domain shared with the generator's predicate attributes.
const DOMAIN: i64 = 1000;

fn class_name(k: usize) -> String {
    format!("C{}", k + 1)
}

/// Builds the benchmark federation: eight classes, three databases,
/// one predicate attribute per class (missing at some sites, null at
/// the sampled rate) — a few hundred objects per class per site.
fn build_federation() -> Federation {
    let mut params = WorkloadParams::paper_default().scaled(0.05);
    params.n_classes = N_CLASSES..=N_CLASSES;
    params.preds_per_class = 1..=1;
    let config = params.sample(&mut StdRng::seed_from_u64(SEED));
    fedoq_workload::generate(&config, SEED).federation
}

/// The fleet's query for slot `i`: class `i % 8`, alternating between
/// a maybe-producing predicate on `p0` (missing at some sites) and a
/// certain-only predicate on `t0`, with a per-slot threshold so no two
/// slots are byte-identical.
fn slot_query(i: usize) -> String {
    let class = class_name(i % N_CLASSES);
    let threshold = 300 + (i as i64 * 53) % 400;
    if (i / N_CLASSES).is_multiple_of(2) {
        format!("SELECT X.t0 FROM {class} X WHERE X.p0 < {threshold}")
    } else {
        format!("SELECT X.t0, X.t1 FROM {class} X WHERE X.t0 < {threshold}")
    }
}

/// Applies one seeded single-class mutation: pick a class, an attribute
/// (`t0` flips certain rows, `p0` flips maybe rows, occasionally to
/// null to *create* a maybe row), a site holding that attribute, and an
/// object — then set it through the reactor so maintenance runs.
fn apply_mutation(reactor: &mut LiveReactor, rng: &mut StdRng) {
    let k = rng.gen_range(0..N_CLASSES);
    let name = class_name(k);
    let (attr, value) = match rng.gen_range(0..10u32) {
        0..=3 => ("t0", Value::Int(rng.gen_range(0..DOMAIN))),
        4..=7 => ("p0", Value::Int(rng.gen_range(0..DOMAIN))),
        _ => ("p0", Value::Null),
    };
    // Candidate (site, slot, extent size) triples where the attribute
    // exists; `p0` is deliberately missing at some sites.
    let candidates: Vec<_> = reactor
        .federation()
        .dbs()
        .iter()
        .filter_map(|db| {
            let class_id = db.schema().class_id(&name)?;
            let slot = db.schema().class(class_id).attr_index(attr)?;
            let len = db.extent(class_id).len();
            (len > 0).then_some((db.id(), class_id, slot, len))
        })
        .collect();
    let Some(&(db_id, class_id, slot, len)) = candidates
        .get(rng.gen_range(0..candidates.len().max(1)))
        .or(candidates.first())
    else {
        return; // attribute absent everywhere: nothing to mutate
    };
    let pick = rng.gen_range(0..len);
    let loid = reactor.federation().dbs()[db_id.index()]
        .extent(class_id)
        .loids()
        .nth(pick)
        .expect("pick is within the extent");
    reactor
        .mutate(db_id, move |db| {
            if let Some(mut object) = db.object_mut(loid) {
                object.set(slot, value);
            }
            Ok(())
        })
        .expect("benchmark mutations are valid by construction");
}

/// Nearest-rank percentile of an unsorted sample (`q` in `[0, 1]`).
fn percentile(values: &mut [f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(f64::total_cmp);
    let idx = ((values.len() - 1) as f64 * q).round() as usize;
    values[idx]
}

struct Fleet {
    subs: Vec<(SubId, Registration, LiveStrategy, BoundQuery)>,
}

/// Registers the fleet and drains the initial snapshots.
fn register_fleet(reactor: &mut LiveReactor, size: usize) -> Fleet {
    let mut subs = Vec::with_capacity(size);
    for i in 0..size {
        let sql = slot_query(i);
        let strategy = LiveStrategy::all()[i % 4];
        let query = reactor
            .federation()
            .parse_and_bind(&sql)
            .expect("fleet queries bind");
        let reg = reactor
            .register(&sql, strategy, (i % 10) as u8)
            .expect("register");
        assert!(reg.admitted, "default ladder admits 256");
        let Some(LiveEvent::Initial { .. }) = reg.events.try_recv() else {
            panic!("admitted registrations snapshot immediately");
        };
        subs.push((reg.sub, reg, strategy, query));
    }
    Fleet { subs }
}

struct Outcome {
    mutations: usize,
    deltas_total: usize,
    wrong_deltas: usize,
    evals_incremental: u64,
    evals_naive: u64,
    incremental_wall_us: f64,
    naive_wall_us: f64,
    p50_delta_us: f64,
    p99_delta_us: f64,
    fq308_sound: bool,
}

fn run(fleet_size: usize, mutations: usize) -> Outcome {
    let fed = build_federation();
    let mut reactor = LiveReactor::new(fed);
    let mut fleet = register_fleet(&mut reactor, fleet_size);
    let evals_initial = reactor.eval_count();
    let mut rng = StdRng::seed_from_u64(SEED);

    let mut latencies = Vec::with_capacity(mutations);
    let mut deltas_total = 0usize;
    let mut wrong = 0usize;
    let mut naive_wall_us = 0.0f64;
    let mut evals_naive = 0u64;
    let mut incremental_wall_us = 0.0f64;

    for step in 0..mutations {
        // Incremental side: the mutation plus footprint-filtered
        // re-evaluation and delta delivery, timed end to end.
        let t0 = Instant::now();
        apply_mutation(&mut reactor, &mut rng);
        let us = t0.elapsed().as_secs_f64() * 1e6;
        incremental_wall_us += us;
        latencies.push(us);

        for (_, reg, _, _) in &fleet.subs {
            while let Some(event) = reg.events.try_recv() {
                if let LiveEvent::Deltas { deltas, .. } = event {
                    deltas_total += deltas.len();
                }
            }
        }

        // Naive side: re-run every standing query from scratch. This is
        // both the baseline being beaten and the correctness oracle.
        let t1 = Instant::now();
        for (sub, _, strategy, query) in &mut fleet.subs {
            let fresh = evaluate(
                reactor.federation(),
                query,
                *strategy,
                SystemParams::paper_default(),
                reactor.down_sites(),
            )
            .expect("from-scratch evaluation");
            evals_naive += 1;
            let maintained = reactor.answer(*sub).expect("active subscription");
            if render_conditioned(maintained) != render_conditioned(&fresh) {
                wrong += 1;
                eprintln!(
                    "WRONG DELTA: step {step} {sub}: maintained answer diverges \
                     from the from-scratch evaluation"
                );
            }
        }
        naive_wall_us += t1.elapsed().as_secs_f64() * 1e6;
    }

    let mut report = fedoq_check::Report::new("bench_live reclassifications", "");
    fedoq_check::analyze_live(reactor.trace(), &mut report);

    let mut p50_input = latencies.clone();
    let mut p99_input = latencies;
    Outcome {
        mutations,
        deltas_total,
        wrong_deltas: wrong,
        evals_incremental: reactor.eval_count() - evals_initial,
        evals_naive,
        incremental_wall_us,
        naive_wall_us,
        p50_delta_us: percentile(&mut p50_input, 0.50),
        p99_delta_us: percentile(&mut p99_input, 0.99),
        fq308_sound: report.is_sound(),
    }
}

fn render_json(o: &Outcome, fleet_size: usize, quick: bool, speedup: f64) -> String {
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"live\",");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"classes\": {N_CLASSES},");
    let _ = writeln!(json, "  \"standing_queries\": {fleet_size},");
    let _ = writeln!(json, "  \"mutations\": {},", o.mutations);
    let _ = writeln!(json, "  \"deltas_total\": {},", o.deltas_total);
    let _ = writeln!(json, "  \"wrong_deltas\": {},", o.wrong_deltas);
    let _ = writeln!(json, "  \"evals_incremental\": {},", o.evals_incremental);
    let _ = writeln!(json, "  \"evals_naive\": {},", o.evals_naive);
    let _ = writeln!(json, "  \"p50_delta_us\": {:.1},", o.p50_delta_us);
    let _ = writeln!(json, "  \"p99_delta_us\": {:.1},", o.p99_delta_us);
    let _ = writeln!(
        json,
        "  \"incremental_wall_us\": {:.1},",
        o.incremental_wall_us
    );
    let _ = writeln!(json, "  \"naive_wall_us\": {:.1},", o.naive_wall_us);
    let _ = writeln!(json, "  \"speedup\": {speedup:.2},");
    let _ = writeln!(json, "  \"fq308_sound\": {}", o.fq308_sound);
    let _ = writeln!(json, "}}");
    json
}

fn main() -> ExitCode {
    let quick = std::env::var("FEDOQ_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let fleet_size = if quick { 16 } else { 64 };
    let mutations = if quick { 24 } else { 200 };
    let bar = if quick { 3.0 } else { 5.0 };

    eprintln!(
        "bench_live: {fleet_size} standing queries over {N_CLASSES} classes, \
         {mutations} mutations, seed {SEED}{}",
        if quick { " [quick]" } else { "" },
    );

    let outcome = run(fleet_size, mutations);
    let speedup = if outcome.incremental_wall_us > 0.0 {
        outcome.naive_wall_us / outcome.incremental_wall_us
    } else {
        f64::INFINITY
    };

    eprintln!(
        "  {}/{} sub-evals ({} deltas), p50 {:.0}us, p99 {:.0}us, \
         incremental {:.0}us vs naive {:.0}us => {speedup:.1}x",
        outcome.evals_incremental,
        outcome.evals_naive,
        outcome.deltas_total,
        outcome.p50_delta_us,
        outcome.p99_delta_us,
        outcome.incremental_wall_us,
        outcome.naive_wall_us,
    );

    let mut failures = Vec::new();
    if outcome.wrong_deltas > 0 {
        failures.push(format!("{} wrong deltas", outcome.wrong_deltas));
    }
    if !outcome.fq308_sound {
        failures.push("reclassification trace failed the FQ308 audit".to_owned());
    }
    if outcome.deltas_total == 0 {
        failures.push("no deltas emitted: the mutation stream never hit a watch".to_owned());
    }
    if speedup < bar {
        failures.push(format!(
            "incremental speedup {speedup:.2}x below the {bar:.0}x bar"
        ));
    }

    let json = render_json(&outcome, fleet_size, quick, speedup);
    let out = Path::new("results").join("BENCH_live.json");
    if let Err(e) = fs::create_dir_all("results") {
        eprintln!("error: could not create results/: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = fs::write(&out, &json) {
        eprintln!("error: could not write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("bench_live: wrote {}", out.display());

    if failures.is_empty() {
        eprintln!("bench_live: all bars met");
        ExitCode::SUCCESS
    } else {
        for failure in &failures {
            eprintln!("bench_live: BAR MISSED: {failure}");
        }
        ExitCode::FAILURE
    }
}
