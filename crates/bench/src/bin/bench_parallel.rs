//! Parallel-pipeline benchmark: sequential vs parallel+batched+cached.
//!
//! Runs the fig-9 university workload (the Table-2 synthetic generator
//! at the paper's 3000-objects-per-class point) through all three
//! strategies twice over:
//!
//! * **sequential** — `PipelineConfig { threads: 1, batch: 1, cache:
//!   off }`: one probe per site message, the paper's own cost model;
//! * **pipeline** — 8 scan threads, probes coalesced 64 per message,
//!   and the shared GOid-lookup cache; measured cold (first run) and
//!   warm (second run over the same cache).
//!
//! Answers must be identical across all runs. The harness writes
//! `results/BENCH_parallel.json` with per-strategy latency, site
//! messages, cache hit rate, and speedup, and fails loudly when the
//! warm pipeline misses the acceptance bars (≥2x speedup per strategy,
//! ≥4x fewer site messages for PL).
//!
//! Environment knobs:
//!
//! * `FEDOQ_QUICK=1` — CI smoke mode: tiny workload, only sanity bars
//!   (speedup ≥ 1.0, identical answers) are enforced;
//! * `FEDOQ_SAMPLES` / `FEDOQ_SCALE` — as for the figure harness.

use fedoq_bench::Settings;
use fedoq_core::{
    run_strategy_with_pipeline, BasicLocalized, Centralized, ExecutionStrategy, LookupCache,
    ParallelLocalized, PipelineConfig,
};
use fedoq_query::bind;
use fedoq_sim::{QueryMetrics, SystemParams};
use fedoq_workload::{generate, WorkloadParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::process::ExitCode;

/// The fig-9 x-value benchmarked (objects per constituent class).
const OBJECTS_PER_CLASS: f64 = 3000.0;
/// Scan threads for the pipeline configuration.
const THREADS: usize = 8;
/// Probes coalesced per site message.
const BATCH: usize = 64;
/// Scan-chunk granularity; finer than the library default so the
/// benchmark extents split across all eight workers.
const CHUNK: usize = 32;
/// Base seed; per-sample seeds mirror the figure harness.
const BASE_SEED: u64 = 9;

/// Accumulated measurements for one strategy.
struct StrategyRow {
    name: &'static str,
    sequential: QueryMetrics,
    cold: QueryMetrics,
    warm: QueryMetrics,
    cache_hits: u64,
    cache_misses: u64,
    identical: bool,
}

impl StrategyRow {
    fn speedup(&self) -> f64 {
        ratio(self.sequential.response_us, self.warm.response_us)
    }

    fn message_ratio(&self) -> f64 {
        ratio(self.sequential.messages as f64, self.warm.messages as f64)
    }

    fn hit_rate(&self) -> f64 {
        let probes = self.cache_hits + self.cache_misses;
        if probes == 0 {
            0.0
        } else {
            self.cache_hits as f64 / probes as f64
        }
    }
}

/// `a / b`, or 0 when `b` is 0 (a warm run can answer entirely from
/// cache and send no messages at all).
fn ratio(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        if a == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        a / b
    }
}

fn strategies() -> Vec<(&'static str, Box<dyn ExecutionStrategy>)> {
    vec![
        ("CA", Box::new(Centralized) as Box<dyn ExecutionStrategy>),
        ("BL", Box::new(BasicLocalized::new())),
        ("PL", Box::new(ParallelLocalized::new())),
    ]
}

fn main() -> ExitCode {
    let quick = std::env::var("FEDOQ_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let mut settings = Settings::from_env();
    if quick {
        // CI smoke: a handful of tiny federations.
        if std::env::var("FEDOQ_SAMPLES").is_err() {
            settings.samples = 3;
        }
        if std::env::var("FEDOQ_SCALE").is_err() {
            settings.scale = 0.02;
        }
    } else if std::env::var("FEDOQ_SAMPLES").is_err() || std::env::var("FEDOQ_SCALE").is_err() {
        // Full mode defaults tuned so the run finishes in seconds while
        // the extents stay big enough for the scan threads to matter.
        if std::env::var("FEDOQ_SAMPLES").is_err() {
            settings.samples = 6;
        }
        if std::env::var("FEDOQ_SCALE").is_err() {
            settings.scale = 0.1;
        }
    }

    let sequential_cfg = PipelineConfig {
        threads: 1,
        batch: 1,
        cache: false,
        ..PipelineConfig::default()
    };
    let pipeline_cfg = PipelineConfig {
        threads: THREADS,
        chunk: CHUNK,
        batch: BATCH,
        cache: true,
        ..PipelineConfig::default()
    };

    let mut params = WorkloadParams::paper_default();
    let lo = ((OBJECTS_PER_CLASS * 0.9 * settings.scale).round() as usize).max(1);
    let hi = ((OBJECTS_PER_CLASS * 1.1 * settings.scale).round() as usize).max(lo);
    params.objects_per_class = lo..=hi;
    let sys = SystemParams::paper_default();

    println!(
        "bench_parallel: fig9 workload, {} samples, {}..={} objects/class, \
         pipeline = {} threads / batch {} / cache on{}",
        settings.samples,
        lo,
        hi,
        THREADS,
        BATCH,
        if quick { " [quick]" } else { "" },
    );

    let mut rows: Vec<StrategyRow> = strategies()
        .iter()
        .map(|(name, _)| StrategyRow {
            name,
            sequential: QueryMetrics::default(),
            cold: QueryMetrics::default(),
            warm: QueryMetrics::default(),
            cache_hits: 0,
            cache_misses: 0,
            identical: true,
        })
        .collect();

    for i in 0..settings.samples {
        let seed = BASE_SEED.wrapping_mul(1000).wrapping_add(i as u64);
        let config = params.sample(&mut StdRng::seed_from_u64(seed));
        let sample = generate(&config, seed);
        let query = bind(&sample.query, sample.federation.global_schema())
            .expect("generated queries always bind");
        for ((_, strategy), row) in strategies().iter().zip(rows.iter_mut()) {
            let (seq_answer, seq_metrics) = run_strategy_with_pipeline(
                strategy.as_ref(),
                &sample.federation,
                &query,
                sys,
                sequential_cfg,
                None,
            )
            .expect("sequential run");
            // One cache per (sample, strategy): the first pipeline run
            // is the cold pass that fills it, the second answers warm.
            let cache = RefCell::new(LookupCache::default());
            let (cold_answer, cold_metrics) = run_strategy_with_pipeline(
                strategy.as_ref(),
                &sample.federation,
                &query,
                sys,
                pipeline_cfg,
                Some(&cache),
            )
            .expect("cold pipeline run");
            let (warm_answer, warm_metrics) = run_strategy_with_pipeline(
                strategy.as_ref(),
                &sample.federation,
                &query,
                sys,
                pipeline_cfg,
                Some(&cache),
            )
            .expect("warm pipeline run");
            let stats = cache.borrow().stats();
            row.sequential = row.sequential.add(&seq_metrics);
            row.cold = row.cold.add(&cold_metrics);
            row.warm = row.warm.add(&warm_metrics);
            row.cache_hits += stats.hits;
            row.cache_misses += stats.misses;
            row.identical &= seq_answer == cold_answer && seq_answer == warm_answer;
        }
    }

    let mut failures = Vec::new();
    for row in &rows {
        println!(
            "  {:4} seq {:>12.0}us / {:>6} msgs | warm {:>12.0}us / {:>6} msgs | \
             speedup {:>6.2}x | msg ratio {:>6.2}x | hit rate {:.0}%",
            row.name,
            row.sequential.response_us,
            row.sequential.messages,
            row.warm.response_us,
            row.warm.messages,
            row.speedup(),
            row.message_ratio(),
            row.hit_rate() * 100.0,
        );
        if !row.identical {
            failures.push(format!("{}: answers diverged across pipelines", row.name));
        }
        let speedup_bar = if quick { 1.0 } else { 2.0 };
        if row.speedup() < speedup_bar {
            failures.push(format!(
                "{}: warm speedup {:.2}x below the {:.1}x bar",
                row.name,
                row.speedup(),
                speedup_bar
            ));
        }
        if !quick && row.name == "PL" && row.message_ratio() < 4.0 {
            failures.push(format!(
                "PL: message ratio {:.2}x below the 4.0x bar",
                row.message_ratio()
            ));
        }
    }

    let json = render_json(&rows, &settings, quick);
    let out = Path::new("results").join("BENCH_parallel.json");
    if let Some(parent) = out.parent() {
        let _ = fs::create_dir_all(parent);
    }
    match fs::write(&out, &json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
    }

    if failures.is_empty() {
        println!("bench_parallel: all bars met");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("error: {f}");
        }
        ExitCode::FAILURE
    }
}

fn render_metrics(json: &mut String, label: &str, m: &QueryMetrics) {
    let _ = write!(
        json,
        "      \"{label}\": {{\"response_us\": {:.3}, \"total_us\": {:.3}, \
         \"messages\": {}, \"bytes\": {}, \"comparisons\": {}}}",
        m.response_us, m.total_execution_us, m.messages, m.bytes_transferred, m.comparisons
    );
}

/// Hand-rolled JSON: every key is a fixed ASCII literal and every value
/// a number or bool, so no escaping is needed (and no serde either).
fn render_json(rows: &[StrategyRow], settings: &Settings, quick: bool) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"parallel-pipeline\",");
    let _ = writeln!(
        json,
        "  \"workload\": \"fig9 university synthetic ({OBJECTS_PER_CLASS} objects/class)\","
    );
    let _ = writeln!(json, "  \"samples\": {},", settings.samples);
    let _ = writeln!(json, "  \"scale\": {},", settings.scale);
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"threads\": {THREADS},");
    let _ = writeln!(json, "  \"batch\": {BATCH},");
    json.push_str("  \"strategies\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"name\": \"{}\",", row.name);
        render_metrics(&mut json, "sequential", &row.sequential);
        json.push_str(",\n");
        render_metrics(&mut json, "pipeline_cold", &row.cold);
        json.push_str(",\n");
        render_metrics(&mut json, "pipeline_warm", &row.warm);
        json.push_str(",\n");
        let _ = writeln!(
            json,
            "      \"cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}}},",
            row.cache_hits,
            row.cache_misses,
            row.hit_rate()
        );
        let _ = writeln!(json, "      \"speedup\": {:.4},", finite(row.speedup()));
        let _ = writeln!(
            json,
            "      \"message_ratio\": {:.4},",
            finite(row.message_ratio())
        );
        let _ = writeln!(json, "      \"identical\": {}", row.identical);
        json.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ]\n}\n");
    json
}

/// Caps infinities for JSON (a warm run can send zero messages).
fn finite(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        1e9
    }
}
