//! Scheduler throughput/latency/fairness benchmark.
//!
//! Runs the deterministic scheduler simulation over the university
//! federation at three admission levels (1, 16, and 128 queries in
//! flight) with the seeded mixed workload, and reports per level:
//!
//! * p50/p99 query latency (virtual µs from submission to completion),
//! * the deadline-miss rate among deadline-carrying queries,
//! * Jain's fairness index over per-query latencies,
//! * the peak observed concurrency (overlapping execution windows),
//! * replan/retry/stale counters from the dispatch trace.
//!
//! Every certified answer is checked byte-for-byte against a serial
//! run of the same plan — the benchmark exits nonzero on any wrong
//! answer, any failed query, or an unsound replan trace, so the
//! numbers it publishes are backed by the same differential oracle the
//! test suite uses.
//!
//! `FEDOQ_QUICK=1` shrinks the workload for CI smoke runs.
//!
//! Writes `results/BENCH_sched.json`.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::process::ExitCode;

use fedoq_core::{run_strategy, Federation, QueryAnswer};
use fedoq_net::DistributedStrategy;
use fedoq_sched::{mixed_specs, QueryVerdict, SchedConfig, SchedSim};
use fedoq_sim::SystemParams;
use fedoq_workload::university;

/// Workload seed; the whole benchmark is a pure function of it.
const SEED: u64 = 42;

/// Admission levels exercised, smallest to largest.
const LEVELS: [usize; 3] = [1, 16, 128];

/// One admission level's measurements.
struct LevelRow {
    max_inflight: usize,
    answered: usize,
    failed: usize,
    wrong_answers: usize,
    deadline_queries: usize,
    deadline_misses: usize,
    p50_latency_us: f64,
    p99_latency_us: f64,
    jain_fairness: f64,
    peak_inflight: usize,
    replans: usize,
    replan_sound: bool,
    retries: u64,
    stale: u64,
    virtual_us: f64,
}

impl LevelRow {
    fn deadline_miss_rate(&self) -> f64 {
        if self.deadline_queries == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.deadline_queries as f64
        }
    }
}

/// Nearest-rank percentile of an unsorted sample (`q` in `[0, 1]`).
fn percentile(values: &mut [f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(f64::total_cmp);
    let idx = ((values.len() - 1) as f64 * q).round() as usize;
    values[idx]
}

/// Jain's fairness index `(Σx)² / (n·Σx²)`: 1.0 when every query saw
/// the same latency, `1/n` when one query absorbed all of it.
fn jain(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sq: f64 = values.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        1.0
    } else {
        (sum * sum) / (values.len() as f64 * sq)
    }
}

/// Peak number of simultaneously executing queries, from the overlap
/// of `[started_us, finished_us)` windows of admitted queries.
fn peak_concurrency(windows: &[(f64, f64)]) -> usize {
    let mut edges: Vec<(f64, i64)> = Vec::with_capacity(windows.len() * 2);
    for &(start, finish) in windows {
        edges.push((start, 1));
        edges.push((finish, -1));
    }
    // Ends sort before starts at the same instant: back-to-back
    // windows are not "concurrent".
    edges.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut live = 0i64;
    let mut peak = 0i64;
    for (_, delta) in edges {
        live += delta;
        peak = peak.max(live);
    }
    peak.max(0) as usize
}

/// The serial reference answer for an executed plan label (HY merges
/// and certifies exactly like BL, so BL is its reference).
fn reference<'a>(
    fed: &Federation,
    cache: &'a mut HashMap<(String, String), QueryAnswer>,
    sql: &str,
    executed: &str,
) -> &'a QueryAnswer {
    cache
        .entry((sql.to_string(), executed.to_string()))
        .or_insert_with(|| {
            let strategy =
                DistributedStrategy::parse(executed).unwrap_or_else(DistributedStrategy::bl);
            let query = fed.parse_and_bind(sql).expect("bind");
            let (answer, _) = run_strategy(
                strategy.sync().as_ref(),
                fed,
                &query,
                SystemParams::paper_default(),
            )
            .expect("serial reference execution");
            answer
        })
}

fn run_level(
    fed: &Federation,
    n_queries: usize,
    max_inflight: usize,
    cache: &mut HashMap<(String, String), QueryAnswer>,
) -> LevelRow {
    let specs = mixed_specs(n_queries, SEED);
    let config = SchedConfig {
        max_inflight,
        ..SchedConfig::default()
    };
    let run = SchedSim::new(SEED)
        .with_config(config)
        .run(fed, &specs)
        .unwrap_or_else(|e| panic!("inflight {max_inflight}: scheduler run failed: {e}"));
    let outcome = &run.outcome;

    let mut latencies = Vec::new();
    let mut windows = Vec::new();
    let mut answered = 0usize;
    let mut failed = 0usize;
    let mut wrong = 0usize;
    let mut deadline_queries = 0usize;
    let mut deadline_misses = 0usize;
    for query in &outcome.queries {
        let spec = &specs[query.id as usize];
        if spec.deadline_us.is_some() {
            deadline_queries += 1;
            if query.verdict.deadline_missed() {
                deadline_misses += 1;
            }
        }
        if query.executed != "-" && query.finished_us >= query.started_us {
            windows.push((query.started_us, query.finished_us));
        }
        match &query.verdict {
            QueryVerdict::Answered(answer) => {
                answered += 1;
                latencies.push(query.finished_us - query.submitted_us);
                let expected = reference(fed, cache, &spec.sql, &query.executed);
                let exact = query.degraded_sites.is_empty() && !answer.is_degraded();
                if exact && *answer != *expected {
                    wrong += 1;
                    eprintln!(
                        "WRONG ANSWER: inflight {max_inflight} query {} ({}) \
                         diverges from the serial reference",
                        query.id, query.executed
                    );
                }
            }
            QueryVerdict::Failed(message) => {
                failed += 1;
                eprintln!(
                    "FAILED: inflight {max_inflight} query {} ({}): {message}",
                    query.id, query.executed
                );
            }
            QueryVerdict::DeadlineExpiredInQueue | QueryVerdict::DeadlineMiss => {}
        }
    }

    let mut report = fedoq_check::Report::new("bench_sched replans", "");
    fedoq_check::analyze_replans(&outcome.replans, &mut report);

    let mut p50_input = latencies.clone();
    let mut p99_input = latencies.clone();
    LevelRow {
        max_inflight,
        answered,
        failed,
        wrong_answers: wrong,
        deadline_queries,
        deadline_misses,
        p50_latency_us: percentile(&mut p50_input, 0.50),
        p99_latency_us: percentile(&mut p99_input, 0.99),
        jain_fairness: jain(&latencies),
        peak_inflight: peak_concurrency(&windows),
        replans: outcome.replans.len(),
        replan_sound: report.is_sound(),
        retries: outcome.retries,
        stale: outcome.stale,
        virtual_us: outcome.virtual_us,
    }
}

fn render_json(rows: &[LevelRow], n_queries: usize, quick: bool) -> String {
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"scheduler\",");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"queries\": {n_queries},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"levels\": [");
    for (i, row) in rows.iter().enumerate() {
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"max_inflight\": {},", row.max_inflight);
        let _ = writeln!(json, "      \"peak_inflight\": {},", row.peak_inflight);
        let _ = writeln!(json, "      \"answered\": {},", row.answered);
        let _ = writeln!(json, "      \"failed\": {},", row.failed);
        let _ = writeln!(json, "      \"wrong_answers\": {},", row.wrong_answers);
        let _ = writeln!(
            json,
            "      \"deadline_queries\": {},",
            row.deadline_queries
        );
        let _ = writeln!(json, "      \"deadline_misses\": {},", row.deadline_misses);
        let _ = writeln!(
            json,
            "      \"deadline_miss_rate\": {:.4},",
            row.deadline_miss_rate()
        );
        let _ = writeln!(json, "      \"p50_latency_us\": {:.1},", row.p50_latency_us);
        let _ = writeln!(json, "      \"p99_latency_us\": {:.1},", row.p99_latency_us);
        let _ = writeln!(json, "      \"jain_fairness\": {:.4},", row.jain_fairness);
        let _ = writeln!(json, "      \"replans\": {},", row.replans);
        let _ = writeln!(json, "      \"replan_sound\": {},", row.replan_sound);
        let _ = writeln!(json, "      \"retries\": {},", row.retries);
        let _ = writeln!(json, "      \"stale\": {},", row.stale);
        let _ = writeln!(json, "      \"virtual_us\": {:.1}", row.virtual_us);
        let _ = write!(json, "    }}");
        let _ = writeln!(json, "{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    json
}

fn main() -> ExitCode {
    let quick = std::env::var("FEDOQ_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let n_queries = if quick { 32 } else { 256 };
    let fed = university::federation().expect("university federation");
    let mut cache = HashMap::new();

    eprintln!(
        "bench_sched: {n_queries} queries, seed {SEED}, levels {LEVELS:?}{}",
        if quick { " [quick]" } else { "" },
    );

    let mut rows = Vec::new();
    for max_inflight in LEVELS {
        let row = run_level(&fed, n_queries, max_inflight, &mut cache);
        eprintln!(
            "  inflight {:>3}: peak {:>3}, answered {}/{}, wrong {}, \
             p50 {:.0}us, p99 {:.0}us, jain {:.3}, miss rate {:.2}, replans {}",
            row.max_inflight,
            row.peak_inflight,
            row.answered,
            n_queries,
            row.wrong_answers,
            row.p50_latency_us,
            row.p99_latency_us,
            row.jain_fairness,
            row.deadline_miss_rate(),
            row.replans,
        );
        rows.push(row);
    }

    let mut failures = Vec::new();
    for row in &rows {
        if row.wrong_answers > 0 {
            failures.push(format!(
                "inflight {}: {} wrong answers",
                row.max_inflight, row.wrong_answers
            ));
        }
        if row.failed > 0 {
            failures.push(format!(
                "inflight {}: {} queries failed on a healthy federation",
                row.max_inflight, row.failed
            ));
        }
        if row.answered == 0 {
            failures.push(format!("inflight {}: no query answered", row.max_inflight));
        }
        if !row.replan_sound {
            failures.push(format!(
                "inflight {}: replan trace failed the FQ307 audit",
                row.max_inflight
            ));
        }
    }
    // The widest level must actually achieve real concurrency — the
    // point of the benchmark is many queries genuinely in flight.
    if let Some(widest) = rows.last() {
        let want = if quick { 8 } else { 128 };
        if widest.peak_inflight < want {
            failures.push(format!(
                "inflight {}: peak observed concurrency {} < {want}",
                widest.max_inflight, widest.peak_inflight
            ));
        }
    }

    let json = render_json(&rows, n_queries, quick);
    let out = Path::new("results").join("BENCH_sched.json");
    if let Err(e) = fs::create_dir_all("results") {
        eprintln!("error: could not create results/: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = fs::write(&out, &json) {
        eprintln!("error: could not write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("bench_sched: wrote {}", out.display());

    if failures.is_empty() {
        eprintln!("bench_sched: all bars met");
        ExitCode::SUCCESS
    } else {
        for failure in &failures {
            eprintln!("bench_sched: BAR MISSED: {failure}");
        }
        ExitCode::FAILURE
    }
}
