//! Scale benchmark: maintained secondary indexes and the warm CA
//! materialization cache against full extent scans, at federations of
//! up to 10^6 objects.
//!
//! The workload is a purpose-built two-site federation of one class,
//! `Item(id [key], t0, t1, t2)`, with disjoint key ranges per site.
//! Tag attribute `tK` stores `id_within_site / M_K`, so the query
//! `X.tK = 1` matches exactly `M_K` objects per site at *every* scale:
//! the match count is held absolute while the extent grows. A scan-free
//! path must therefore show
//!
//! * **flat** scan-phase cost as the extent grows 20x at a fixed
//!   selectivity level, and
//! * scan-phase cost **proportional to `M_K`** across the levels at a
//!   fixed extent size,
//!
//! which is exactly the ISSUE's acceptance bar: query cost scaling with
//! selectivity, not extent size. The first few objects of every site
//! store nulls in all three tags, pinning the three-valued maybe path
//! (nulls are always index candidates) without letting the maybe set
//! grow with the extent.
//!
//! Per `(scale, level, strategy)` cell the harness runs the **oracle**
//! (the plain sequential in-memory path: no index, no cache, single
//! thread), a **cold** indexed run (`with_cache().with_index()`), and a
//! **warm** rerun over the same cache; all three answers must be
//! byte-identical. Each scale additionally exercises
//!
//! * the sampling statistics catalog (exact cardinality, distinct
//!   estimates within 10% of truth, `sampled` flag set exactly when the
//!   extent passes [`SAMPLE_THRESHOLD`]), and
//! * the paged on-disk extent format (save both sites, lazily read the
//!   first page, restore, and re-answer the query identically).
//!
//! Writes `results/BENCH_scale.json`; exits non-zero when a bar is
//! missed. `FEDOQ_QUICK=1` shrinks the sweep to CI-smoke scales and
//! only enforces the correctness bars (identical answers, stats error
//! bounds, persistence round-trip) — the flatness/linearity bars need
//! extents large enough for per-query constants to wash out.

use fedoq_core::{
    run_strategy, run_strategy_with_pipeline, BasicLocalized, Centralized, ExecutionStrategy,
    Federation, HybridLocalized, LookupCache, ParallelLocalized, PipelineConfig, QueryAnswer,
};
use fedoq_object::{ClassId, DbId, Value};
use fedoq_plan::catalog::SAMPLE_THRESHOLD;
use fedoq_plan::StatsCatalog;
use fedoq_schema::Correspondences;
use fedoq_sim::{Phase, QueryMetrics, SystemParams};
use fedoq_store::pages::DEFAULT_PAGE_CAP;
use fedoq_store::{save_db_paged, AttrType, ClassDef, ComponentDb, ComponentSchema, PagedDb};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::process::ExitCode;

/// Objects per site at each sweep point (two sites: total is double).
const FULL_SCALES: [usize; 3] = [25_000, 100_000, 500_000];
/// CI-smoke scales: small enough for debug builds, still two pages.
const QUICK_SCALES: [usize; 2] = [1_000, 4_000];
/// Matching objects per site at each selectivity level (absolute, not
/// a fraction of the extent).
const FULL_MATCHES: [usize; 3] = [16, 256, 4_096];
/// CI-smoke match counts (the smallest quick extent holds 2x256).
const QUICK_MATCHES: [usize; 3] = [8, 64, 256];
/// Objects per site whose tags are all null: a constant-size maybe set.
const NULLS_PER_SITE: usize = 5;
/// Key offset between sites, far above any per-site object count.
const SITE_KEY_STRIDE: usize = 100_000_000;

/// Warm indexed scan-phase cost may grow at most this much while the
/// extent grows 20x (per-site seek/probe constants keep it above 1.0).
const FLAT_MAX: f64 = 3.0;
/// Warm indexed scan-phase cost across selectivity levels must track
/// the match-count ratio within this slack (fixed per-query overhead
/// makes the observed ratio sublinear).
const LINEARITY_SLACK: f64 = 8.0;
/// The oracle's scan-phase cost must grow at least `scale_ratio /
/// GROWTH_SLACK` over the sweep — the O(n) scan the index avoids.
const GROWTH_SLACK: f64 = 4.0;
/// Relative error bound on sampled distinct-count estimates.
const STATS_ERROR: f64 = 0.10;

/// One `(scale, level, strategy)` measurement.
struct Cell {
    site_objects: usize,
    level: usize,
    matches: usize,
    strategy: &'static str,
    oracle: QueryMetrics,
    cold: QueryMetrics,
    warm: QueryMetrics,
    identical: bool,
    certain: usize,
    maybe: usize,
}

/// One per-scale statistics-catalog check.
struct StatsRow {
    site_objects: usize,
    sampled: bool,
    cardinality_exact: bool,
    id_distinct_est: usize,
    id_distinct_truth: usize,
    tag_distinct_est: usize,
    tag_distinct_truth: usize,
}

/// One per-scale paged-persistence round-trip.
struct PersistRow {
    site_objects: usize,
    bytes: usize,
    pages: usize,
    first_page: usize,
    identical: bool,
}

fn strategies() -> Vec<(&'static str, Box<dyn ExecutionStrategy>)> {
    vec![
        ("CA", Box::new(Centralized) as Box<dyn ExecutionStrategy>),
        ("BL", Box::new(BasicLocalized::new())),
        ("PL", Box::new(ParallelLocalized::new())),
        ("HY", Box::new(HybridLocalized::new([DbId::new(0)]))),
    ]
}

/// Builds one site: `n` Items with globally disjoint keys, tag `tK =
/// i / matches[K]` (so literal `1` matches exactly `matches[K]`
/// objects), all-null tags on the first [`NULLS_PER_SITE`] objects, and
/// a maintained index on every tag.
fn build_site(site: usize, n: usize, matches: &[usize; 3]) -> ComponentDb {
    let schema = ComponentSchema::new(vec![ClassDef::new("Item")
        .attr("id", AttrType::int())
        .attr("t0", AttrType::int())
        .attr("t1", AttrType::int())
        .attr("t2", AttrType::int())
        .key(["id"])])
    .expect("Item schema is well-formed");
    let mut db = ComponentDb::new(DbId::new(site as u16), format!("S{site}"), schema);
    let item = ClassId::new(0);
    for i in 0..n {
        let id = (site * SITE_KEY_STRIDE + i) as i64;
        let tag = |m: usize| {
            if i < NULLS_PER_SITE {
                Value::Null
            } else {
                Value::Int((i / m) as i64)
            }
        };
        db.insert(
            item,
            vec![
                Value::Int(id),
                tag(matches[0]),
                tag(matches[1]),
                tag(matches[2]),
            ],
        )
        .expect("insert");
    }
    for attr in ["t0", "t1", "t2"] {
        db.create_index("Item", &[attr])
            .expect("int tags are indexable");
    }
    db
}

fn build_federation(site_objects: usize, matches: &[usize; 3]) -> Federation {
    let dbs = (0..2)
        .map(|s| build_site(s, site_objects, matches))
        .collect();
    Federation::new(dbs, &Correspondences::new()).expect("federation")
}

/// The scan-phase cost (µs): phase P is where `scan_eval` charges the
/// per-object disk reads and predicate comparisons — the cost the
/// maintained indexes are supposed to decouple from the extent size.
fn scan_us(m: &QueryMetrics) -> f64 {
    m.phase_us(Phase::P)
}

/// `a / b` with the 0/0 = 1 convention of the other harnesses.
fn ratio(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        if a == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        a / b
    }
}

fn within(est: usize, truth: usize, bound: f64) -> bool {
    (est as f64 - truth as f64).abs() <= bound * truth as f64
}

/// Collects the statistics catalog and checks the sampling estimators
/// against ground truth (construction makes truth exact).
fn check_stats(fed: &Federation, site_objects: usize, matches: &[usize; 3]) -> StatsRow {
    let catalog = StatsCatalog::collect(
        fed.dbs().iter(),
        fed.global_schema(),
        fed.catalog(),
        fed.generation(),
        SystemParams::paper_default(),
    );
    let item = fed
        .global_schema()
        .class_id("Item")
        .expect("Item is global");
    let id_slot = fed
        .global_schema()
        .class(item)
        .attr_index("id")
        .expect("id");
    let tag_slot = fed
        .global_schema()
        .class(item)
        .attr_index("t2")
        .expect("t2");
    let stats = catalog
        .site(DbId::new(0))
        .expect("site 0")
        .class(item)
        .expect("site 0 hosts Item");
    // Tag values are `i / M` for i in NULLS..n: 0..=(n-1)/M inclusive.
    let tag_truth = (site_objects - 1) / matches[2] + 1;
    StatsRow {
        site_objects,
        sampled: stats.sampled,
        cardinality_exact: stats.cardinality == site_objects,
        id_distinct_est: stats.attr(id_slot).distinct,
        id_distinct_truth: site_objects,
        tag_distinct_est: stats.attr(tag_slot).distinct,
        tag_distinct_truth: tag_truth,
    }
}

/// Saves both sites in the paged format, lazily reads the first page,
/// restores, and re-answers the query on the restored federation.
fn check_persistence(
    fed: &Federation,
    site_objects: usize,
    sql: &str,
    oracle: &QueryAnswer,
) -> PersistRow {
    let item = ClassId::new(0);
    let mut bytes = 0;
    let mut pages = 0;
    let mut first_page = 0;
    let mut restored = Vec::new();
    for db in fed.dbs() {
        let mut buf = Vec::new();
        save_db_paged(db, &mut buf, 0).expect("save_db_paged");
        let paged = PagedDb::open(&buf).expect("open paged image");
        assert_eq!(paged.object_count(), site_objects as u64, "paged count");
        bytes += buf.len();
        pages += paged.num_pages(item);
        // Lazy batch read: the first page alone, without materializing
        // the rest of the image.
        first_page = paged.read_page(item, 0).expect("read page 0").len();
        restored.push(paged.restore().expect("restore"));
    }
    let fed2 = Federation::new(restored, &Correspondences::new()).expect("restored federation");
    let query = fed2
        .parse_and_bind(sql)
        .expect("query binds on restored schema");
    let (answer, _) = run_strategy(&Centralized, &fed2, &query, SystemParams::paper_default())
        .expect("restored run");
    PersistRow {
        site_objects,
        bytes,
        pages,
        first_page,
        identical: answer == *oracle,
    }
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let quick = std::env::var("FEDOQ_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let scales: Vec<usize> = if quick {
        QUICK_SCALES.to_vec()
    } else {
        FULL_SCALES.to_vec()
    };
    let matches = if quick { QUICK_MATCHES } else { FULL_MATCHES };
    let sys = SystemParams::paper_default();
    let indexed_cfg = PipelineConfig::sequential().with_cache().with_index();

    println!(
        "bench_scale: {} sites x {:?} objects, match counts {:?}{}",
        2,
        scales,
        matches,
        if quick { " [quick]" } else { "" },
    );

    let mut cells: Vec<Cell> = Vec::new();
    let mut stats_rows: Vec<StatsRow> = Vec::new();
    let mut persist_rows: Vec<PersistRow> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    for &site_objects in &scales {
        let fed = build_federation(site_objects, &matches);
        stats_rows.push(check_stats(&fed, site_objects, &matches));
        let mut level0_oracle: Option<(String, QueryAnswer)> = None;
        for (level, &m) in matches.iter().enumerate() {
            let sql = format!("SELECT X.id FROM Item X WHERE X.t{level} = 1");
            let query = fed.parse_and_bind(&sql).expect("scale query binds");
            for (name, strategy) in strategies() {
                let (oracle_answer, oracle_metrics) =
                    run_strategy(strategy.as_ref(), &fed, &query, sys).expect("oracle run");
                let cache = RefCell::new(LookupCache::default());
                let (cold_answer, cold_metrics) = run_strategy_with_pipeline(
                    strategy.as_ref(),
                    &fed,
                    &query,
                    sys,
                    indexed_cfg,
                    Some(&cache),
                )
                .expect("cold indexed run");
                let (warm_answer, warm_metrics) = run_strategy_with_pipeline(
                    strategy.as_ref(),
                    &fed,
                    &query,
                    sys,
                    indexed_cfg,
                    Some(&cache),
                )
                .expect("warm indexed run");
                let identical = oracle_answer == cold_answer && oracle_answer == warm_answer;
                if level == 0 && name == "CA" {
                    level0_oracle = Some((sql.clone(), oracle_answer.clone()));
                }
                cells.push(Cell {
                    site_objects,
                    level,
                    matches: m,
                    strategy: name,
                    oracle: oracle_metrics,
                    cold: cold_metrics,
                    warm: warm_metrics,
                    identical,
                    certain: oracle_answer.certain().len(),
                    maybe: oracle_answer.maybe().len(),
                });
            }
        }
        let (sql, oracle) = level0_oracle.expect("level 0 ran");
        persist_rows.push(check_persistence(&fed, site_objects, &sql, &oracle));
    }

    // --- Bars -----------------------------------------------------------

    for cell in &cells {
        if !cell.identical {
            failures.push(format!(
                "{} at {} objects/site, M={}: indexed answers diverged from the \
                 sequential oracle",
                cell.strategy, cell.site_objects, cell.matches
            ));
        }
        let expected_certain = 2 * cell.matches;
        if cell.certain != expected_certain || cell.maybe != 2 * NULLS_PER_SITE {
            failures.push(format!(
                "{} at {} objects/site, M={}: answer shape {}c/{}m, expected {}c/{}m",
                cell.strategy,
                cell.site_objects,
                cell.matches,
                cell.certain,
                cell.maybe,
                expected_certain,
                2 * NULLS_PER_SITE
            ));
        }
    }

    for row in &stats_rows {
        let should_sample = row.site_objects > SAMPLE_THRESHOLD;
        if row.sampled != should_sample {
            failures.push(format!(
                "stats at {} objects/site: sampled={}, expected {}",
                row.site_objects, row.sampled, should_sample
            ));
        }
        if !row.cardinality_exact {
            failures.push(format!(
                "stats at {} objects/site: cardinality not exact under sampling",
                row.site_objects
            ));
        }
        if !within(row.id_distinct_est, row.id_distinct_truth, STATS_ERROR) {
            failures.push(format!(
                "stats at {} objects/site: id distinct estimate {} off truth {} by >10%",
                row.site_objects, row.id_distinct_est, row.id_distinct_truth
            ));
        }
        if !within(row.tag_distinct_est, row.tag_distinct_truth, STATS_ERROR) {
            failures.push(format!(
                "stats at {} objects/site: t2 distinct estimate {} off truth {} by >10%",
                row.site_objects, row.tag_distinct_est, row.tag_distinct_truth
            ));
        }
    }

    for row in &persist_rows {
        if !row.identical {
            failures.push(format!(
                "persistence at {} objects/site: restored federation answered differently",
                row.site_objects
            ));
        }
        let expected_page = DEFAULT_PAGE_CAP.min(row.site_objects);
        if row.first_page != expected_page {
            failures.push(format!(
                "persistence at {} objects/site: first page held {} objects, expected {}",
                row.site_objects, row.first_page, expected_page
            ));
        }
    }

    let cell = |site: usize, level: usize, strategy: &str| {
        cells
            .iter()
            .find(|c| c.site_objects == site && c.level == level && c.strategy == strategy)
            .expect("cell exists")
    };
    let n_min = scales[0];
    let n_max = *scales.last().expect("non-empty sweep");
    let scale_ratio = n_max as f64 / n_min as f64;
    if !quick {
        for (name, _) in strategies() {
            // Extent-size flatness: fixed match count, 20x more objects,
            // near-constant warm indexed scan cost — while the oracle's
            // full scan grows with the extent.
            for (level, &m) in matches.iter().enumerate() {
                let flat = ratio(
                    scan_us(&cell(n_max, level, name).warm),
                    scan_us(&cell(n_min, level, name).warm),
                );
                if flat > FLAT_MAX {
                    failures.push(format!(
                        "{name}: warm scan cost grew {flat:.2}x over a {scale_ratio:.0}x \
                         extent sweep at M={m} (bar {FLAT_MAX:.1}x)"
                    ));
                }
                let growth = ratio(
                    scan_us(&cell(n_max, level, name).oracle),
                    scan_us(&cell(n_min, level, name).oracle),
                );
                if growth < scale_ratio / GROWTH_SLACK {
                    failures.push(format!(
                        "{name}: oracle scan cost grew only {growth:.2}x over a \
                         {scale_ratio:.0}x extent sweep at M={m} — the baseline is not \
                         the O(n) scan the index is measured against"
                    ));
                }
            }
            // Selectivity linearity at the largest extent: cost tracks
            // the match count, monotonically and near-proportionally.
            for window in [0, 1] {
                let lo = scan_us(&cell(n_max, window, name).warm);
                let hi = scan_us(&cell(n_max, window + 1, name).warm);
                if hi < lo * 0.95 {
                    failures.push(format!(
                        "{name}: warm scan cost fell from {lo:.1}us to {hi:.1}us as the \
                         match count rose {}x",
                        matches[window + 1] / matches[window]
                    ));
                }
            }
            let spread = ratio(
                scan_us(&cell(n_max, matches.len() - 1, name).warm),
                scan_us(&cell(n_max, 0, name).warm),
            );
            let match_ratio = matches[matches.len() - 1] as f64 / matches[0] as f64;
            if spread < match_ratio / LINEARITY_SLACK {
                failures.push(format!(
                    "{name}: warm scan cost spread {spread:.1}x across a {match_ratio:.0}x \
                     selectivity sweep (bar {:.1}x)",
                    match_ratio / LINEARITY_SLACK
                ));
            }
        }
    }

    for cell in &cells {
        println!(
            "  {:6} M={:<5} {:3} oracle {:>12.0}us scan | warm {:>10.0}us scan | \
             {:>4}c/{}m{}",
            cell.site_objects,
            cell.matches,
            cell.strategy,
            scan_us(&cell.oracle),
            scan_us(&cell.warm),
            cell.certain,
            cell.maybe,
            if cell.identical { "" } else { "  DIVERGED" },
        );
    }

    let json = render_json(&cells, &stats_rows, &persist_rows, quick);
    let out = Path::new("results").join("BENCH_scale.json");
    if let Some(parent) = out.parent() {
        let _ = fs::create_dir_all(parent);
    }
    match fs::write(&out, &json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
    }

    if failures.is_empty() {
        println!("bench_scale: all bars met");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("error: {f}");
        }
        ExitCode::FAILURE
    }
}

fn render_metrics(json: &mut String, label: &str, m: &QueryMetrics) {
    let _ = write!(
        json,
        "      \"{label}\": {{\"response_us\": {:.3}, \"total_us\": {:.3}, \
         \"scan_us\": {:.3}, \"messages\": {}, \"bytes\": {}, \"comparisons\": {}}}",
        m.response_us,
        m.total_execution_us,
        m.phase_us(Phase::P),
        m.messages,
        m.bytes_transferred,
        m.comparisons
    );
}

/// Hand-rolled JSON: fixed ASCII keys, numeric/bool values — no
/// escaping, no serde (matching the other bench harnesses).
fn render_json(
    cells: &[Cell],
    stats_rows: &[StatsRow],
    persist_rows: &[PersistRow],
    quick: bool,
) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"scale\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"sites\": 2,");
    let _ = writeln!(json, "  \"nulls_per_site\": {NULLS_PER_SITE},");
    json.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"site_objects\": {},", cell.site_objects);
        let _ = writeln!(json, "      \"level\": {},", cell.level);
        let _ = writeln!(json, "      \"matches_per_site\": {},", cell.matches);
        let _ = writeln!(json, "      \"strategy\": \"{}\",", cell.strategy);
        render_metrics(&mut json, "oracle", &cell.oracle);
        json.push_str(",\n");
        render_metrics(&mut json, "indexed_cold", &cell.cold);
        json.push_str(",\n");
        render_metrics(&mut json, "indexed_warm", &cell.warm);
        json.push_str(",\n");
        let _ = writeln!(json, "      \"certain\": {},", cell.certain);
        let _ = writeln!(json, "      \"maybe\": {},", cell.maybe);
        let _ = writeln!(json, "      \"identical\": {}", cell.identical);
        json.push_str(if i + 1 == cells.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"stats\": [\n");
    for (i, row) in stats_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"site_objects\": {}, \"sampled\": {}, \"cardinality_exact\": {}, \
             \"id_distinct_est\": {}, \"id_distinct_truth\": {}, \
             \"tag_distinct_est\": {}, \"tag_distinct_truth\": {}}}",
            row.site_objects,
            row.sampled,
            row.cardinality_exact,
            row.id_distinct_est,
            row.id_distinct_truth,
            row.tag_distinct_est,
            row.tag_distinct_truth
        );
        json.push_str(if i + 1 == stats_rows.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"persistence\": [\n");
    for (i, row) in persist_rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"site_objects\": {}, \"bytes\": {}, \"pages\": {}, \
             \"first_page\": {}, \"identical\": {}}}",
            row.site_objects, row.bytes, row.pages, row.first_page, row.identical
        );
        json.push_str(if i + 1 == persist_rows.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    json.push_str("  ]\n}\n");
    json
}
