//! Adaptive-planner benchmark: cost-based plan choice vs fixed
//! strategies.
//!
//! Three workloads exercise the planner where the paper's figures show
//! the strategy ranking flipping:
//!
//! * **fig9** — the university synthetic at 3000 objects per class;
//! * **fig10** — six component databases instead of three;
//! * **fig11** — null ratios pushed to 0.3–0.5, inflating maybe
//!   results and assistant traffic.
//!
//! Per sample the harness measures every fixed strategy (CA, BL, PL)
//! sequentially, then lets `run_adaptive` plan and execute the same
//! query `REPEATS` times over one statistics catalog so the EWMA
//! feedback loop converges; the last repeat is what the adaptive row
//! records. Answers must classify identically across every run.
//!
//! Acceptance bars (full mode): adaptive within 10% of the best fixed
//! strategy on *every* workload, and at least 2x faster than the worst
//! fixed strategy on *at least one*. `FEDOQ_QUICK=1` shrinks the
//! workloads and only enforces identical answers.
//!
//! Writes `results/BENCH_planner.json`.

use fedoq_bench::Settings;
use fedoq_core::{
    collect_catalog, run_adaptive, run_strategy, BasicLocalized, Centralized, ExecutionStrategy,
    Federation, ParallelLocalized, PipelineConfig,
};
use fedoq_plan::PlanKind;
use fedoq_query::{bind, BoundQuery};
use fedoq_sim::SystemParams;
use fedoq_workload::{generate, SampleConfig, WorkloadParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::process::ExitCode;

/// Adaptive runs per sample; the last one is measured (converged).
const REPEATS: usize = 3;
/// Base seed; per-sample seeds mirror the figure harness.
const BASE_SEED: u64 = 17;
/// Full-mode bar: adaptive within this factor of the best fixed plan.
const NEAR_BEST_BAR: f64 = 1.10;
/// Full-mode bar: adaptive at least this much faster than the worst
/// fixed plan on at least one workload.
const BEAT_WORST_BAR: f64 = 2.0;

const FIXED: [&str; 3] = ["CA", "BL", "PL"];

fn fixed_strategy(name: &str) -> Box<dyn ExecutionStrategy> {
    match name {
        "CA" => Box::new(Centralized),
        "BL" => Box::new(BasicLocalized::new()),
        _ => Box::new(ParallelLocalized::new()),
    }
}

/// One benchmarked workload: a Table-2 parameterization stressed where
/// the paper's figures show the ranking flip.
struct Workload {
    name: &'static str,
    params: WorkloadParams,
    /// Post-sample reshaping of the drawn config (e.g. forcing a
    /// bimodal per-site profile the range-based params cannot express).
    shape: Option<fn(&mut SampleConfig)>,
    /// Pipeline the adaptive runs plan for and execute with.
    pipeline: PipelineConfig,
}

/// Bimodal site profile for the hybrid (HY) workload: most sites
/// define every predicate attribute — maybe-free, so the hybrid pins
/// them to BL's schedule and they skip assistant lookups entirely —
/// while two sites miss *all* predicate attributes. Missing attributes
/// (unlike nulls) leave local selectivity at 1.0, so every object
/// survives as a maybe and the assist request wave is proportional to
/// the extent; on a multi-threaded pipeline PL's static prefetch disk
/// is divided across workers while BL's serialized request send is
/// not, so the assist-heavy sites want PL, the clean sites want BL,
/// and the per-site assignment is the cost-optimal plan.
fn mixed_profile(config: &mut SampleConfig) {
    for db in 0..config.n_db {
        for class in 0..config.n_classes {
            config.null_ratio[db][class] = 0.0;
            let defines = db % 3 != 1;
            for present in &mut config.present[db][class] {
                *present = defines;
            }
        }
    }
}

fn workloads(scale: f64) -> Vec<Workload> {
    let fig9 = {
        let mut p = WorkloadParams::paper_default();
        let lo = ((3000.0 * 0.9 * scale).round() as usize).max(1);
        let hi = ((3000.0 * 1.1 * scale).round() as usize).max(lo);
        p.objects_per_class = lo..=hi;
        p
    };
    let fig10 = {
        let mut p = WorkloadParams::paper_default().scaled(scale);
        p.n_db = 6;
        p
    };
    let fig11 = {
        let mut p = WorkloadParams::paper_default().scaled(scale);
        p.null_ratio = 0.3..=0.5;
        p
    };
    let mixed = {
        let mut p = WorkloadParams::paper_default().scaled(scale);
        p.n_db = 6;
        p.n_classes = 3..=3;
        p.preds_per_class = 1..=1;
        p.null_ratio = 0.0..=0.0;
        p.forced_selectivity = Some(1.0);
        p.iso_ratio = Some(0.5);
        p.n_iso = 2;
        p
    };
    let threaded = PipelineConfig {
        threads: 4,
        ..PipelineConfig::default()
    };
    vec![
        Workload {
            name: "fig9_3000_objects",
            params: fig9,
            shape: None,
            pipeline: PipelineConfig::default(),
        },
        Workload {
            name: "fig10_6_databases",
            params: fig10,
            shape: None,
            pipeline: PipelineConfig::default(),
        },
        Workload {
            name: "fig11_high_nulls",
            params: fig11,
            shape: None,
            pipeline: PipelineConfig::default(),
        },
        Workload {
            name: "mixed_profile_hybrid",
            params: mixed,
            shape: Some(mixed_profile),
            pipeline: threaded,
        },
    ]
}

/// Accumulated measurements for one workload.
struct WorkloadRow {
    name: &'static str,
    /// Summed response time per fixed strategy, µs (CA, BL, PL order).
    fixed_us: [f64; 3],
    /// Summed response time of the converged adaptive run, µs.
    adaptive_us: f64,
    /// How often the converged run executed each plan kind.
    picks: [usize; 4],
    identical: bool,
    samples: usize,
}

impl WorkloadRow {
    fn best_fixed(&self) -> (&'static str, f64) {
        let (i, us) = self
            .fixed_us
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("three fixed strategies");
        (FIXED[i], *us)
    }

    fn worst_fixed(&self) -> (&'static str, f64) {
        let (i, us) = self
            .fixed_us
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("three fixed strategies");
        (FIXED[i], *us)
    }

    /// `adaptive / best_fixed` — ≤ 1.0 means adaptive won outright.
    fn vs_best(&self) -> f64 {
        self.adaptive_us / self.best_fixed().1.max(f64::MIN_POSITIVE)
    }

    /// `worst_fixed / adaptive` — how badly a wrong fixed choice loses.
    fn vs_worst(&self) -> f64 {
        self.worst_fixed().1 / self.adaptive_us.max(f64::MIN_POSITIVE)
    }
}

/// Runs one workload sample through every fixed strategy and the
/// adaptive planner, folding the measurements into `row`.
fn run_sample(
    fed: &Federation,
    query: &BoundQuery,
    sys: SystemParams,
    pipeline: PipelineConfig,
    row: &mut WorkloadRow,
) {
    let mut reference = None;
    for (i, name) in FIXED.iter().enumerate() {
        let (answer, metrics) = run_strategy(fixed_strategy(name).as_ref(), fed, query, sys)
            .expect("fixed strategy run");
        row.fixed_us[i] += metrics.response_us;
        if let Some(reference) = &reference {
            row.identical &= answer.same_classification(reference);
        } else {
            reference = Some(answer);
        }
    }
    let reference = reference.expect("at least one fixed run");

    // One catalog per sample: repeats share it, so the EWMA feedback
    // observed on run k reranks the candidates for run k + 1.
    let mut catalog = collect_catalog(fed, sys);
    let mut last = None;
    for _ in 0..REPEATS {
        let outcome = run_adaptive(fed, query, &mut catalog, pipeline, None).expect("adaptive run");
        row.identical &= outcome.answer.same_classification(&reference);
        last = Some(outcome);
    }
    let last = last.expect("REPEATS >= 1");
    row.adaptive_us += last.metrics.response_us;
    let pick = PlanKind::ALL
        .iter()
        .position(|k| *k == last.executed)
        .expect("executed kind is enumerated");
    row.picks[pick] += 1;
}

fn main() -> ExitCode {
    let quick = std::env::var("FEDOQ_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
    let mut settings = Settings::from_env();
    if std::env::var("FEDOQ_SAMPLES").is_err() {
        settings.samples = if quick { 3 } else { 8 };
    }
    if std::env::var("FEDOQ_SCALE").is_err() {
        settings.scale = if quick { 0.02 } else { 0.1 };
    }
    let sys = SystemParams::paper_default();

    println!(
        "bench_planner: {} samples/workload, scale {}, {} adaptive repeats{}",
        settings.samples,
        settings.scale,
        REPEATS,
        if quick { " [quick]" } else { "" },
    );

    let mut rows = Vec::new();
    for workload in workloads(settings.scale) {
        let mut row = WorkloadRow {
            name: workload.name,
            fixed_us: [0.0; 3],
            adaptive_us: 0.0,
            picks: [0; 4],
            identical: true,
            samples: settings.samples,
        };
        for i in 0..settings.samples {
            let seed = BASE_SEED.wrapping_mul(1000).wrapping_add(i as u64);
            let mut config = workload.params.sample(&mut StdRng::seed_from_u64(seed));
            if let Some(shape) = workload.shape {
                shape(&mut config);
            }
            let sample = generate(&config, seed);
            let query = bind(&sample.query, sample.federation.global_schema())
                .expect("generated queries always bind");
            run_sample(&sample.federation, &query, sys, workload.pipeline, &mut row);
        }
        let picks: Vec<String> = PlanKind::ALL
            .iter()
            .zip(row.picks)
            .filter(|(_, n)| *n > 0)
            .map(|(k, n)| format!("{} x{n}", k.label()))
            .collect();
        println!(
            "  {:18} adaptive {:>11.0}us | best {:>4} {:>11.0}us | worst {:>4} {:>11.0}us | \
             vs best {:>5.2}x | vs worst {:>5.2}x | picked {}",
            row.name,
            row.adaptive_us,
            row.best_fixed().0,
            row.best_fixed().1,
            row.worst_fixed().0,
            row.worst_fixed().1,
            row.vs_best(),
            row.vs_worst(),
            picks.join(", "),
        );
        rows.push(row);
    }

    let mut failures = Vec::new();
    for row in &rows {
        if !row.identical {
            failures.push(format!(
                "{}: adaptive answers diverged from the fixed strategies",
                row.name
            ));
        }
        // The mixed-profile workload exists to prove HY is reachable:
        // the converged adaptive run must pick the per-site hybrid at
        // least once, in quick mode too, so the HY-never-picked
        // regression cannot silently return.
        if row.name == "mixed_profile_hybrid" && row.picks[3] == 0 {
            failures.push(format!(
                "{}: adaptive never picked HY (picks: CA {}, BL {}, PL {}, HY {})",
                row.name, row.picks[0], row.picks[1], row.picks[2], row.picks[3]
            ));
        }
        if !quick && row.vs_best() > NEAR_BEST_BAR {
            failures.push(format!(
                "{}: adaptive {:.2}x the best fixed plan (bar {NEAR_BEST_BAR}x)",
                row.name,
                row.vs_best()
            ));
        }
    }
    if !quick && !rows.iter().any(|r| r.vs_worst() >= BEAT_WORST_BAR) {
        failures.push(format!(
            "no workload where adaptive beats the worst fixed plan by {BEAT_WORST_BAR}x"
        ));
    }

    let json = render_json(&rows, &settings, quick);
    let out = Path::new("results").join("BENCH_planner.json");
    if let Some(parent) = out.parent() {
        let _ = fs::create_dir_all(parent);
    }
    match fs::write(&out, &json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
    }

    if failures.is_empty() {
        println!("bench_planner: all bars met");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("error: {f}");
        }
        ExitCode::FAILURE
    }
}

/// Hand-rolled JSON: every key is a fixed ASCII literal and every value
/// a number, bool, or plan label, so no escaping is needed.
fn render_json(rows: &[WorkloadRow], settings: &Settings, quick: bool) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"adaptive-planner\",");
    let _ = writeln!(json, "  \"samples\": {},", settings.samples);
    let _ = writeln!(json, "  \"scale\": {},", settings.scale);
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"repeats\": {REPEATS},");
    json.push_str("  \"workloads\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"name\": \"{}\",", row.name);
        let _ = writeln!(json, "      \"samples\": {},", row.samples);
        json.push_str("      \"fixed_response_us\": {");
        for (j, name) in FIXED.iter().enumerate() {
            let _ = write!(
                json,
                "\"{name}\": {:.3}{}",
                row.fixed_us[j],
                if j + 1 == FIXED.len() { "" } else { ", " }
            );
        }
        json.push_str("},\n");
        let _ = writeln!(
            json,
            "      \"adaptive_response_us\": {:.3},",
            row.adaptive_us
        );
        let _ = writeln!(json, "      \"best_fixed\": \"{}\",", row.best_fixed().0);
        let _ = writeln!(json, "      \"worst_fixed\": \"{}\",", row.worst_fixed().0);
        let _ = writeln!(json, "      \"vs_best\": {:.4},", row.vs_best());
        let _ = writeln!(json, "      \"vs_worst\": {:.4},", row.vs_worst());
        json.push_str("      \"picks\": {");
        for (j, kind) in PlanKind::ALL.iter().enumerate() {
            let _ = write!(
                json,
                "\"{}\": {}{}",
                kind.label(),
                row.picks[j],
                if j + 1 == PlanKind::ALL.len() {
                    ""
                } else {
                    ", "
                }
            );
        }
        json.push_str("},\n");
        let _ = writeln!(json, "      \"identical\": {}", row.identical);
        json.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ]\n}\n");
    json
}
