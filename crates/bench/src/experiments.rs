//! The figure sweeps.

use fedoq_core::{
    run_strategy, run_strategy_with_network, BasicLocalized, Centralized, ExecutionStrategy,
    ParallelLocalized,
};
use fedoq_query::bind;
use fedoq_sim::NetworkModel;
use fedoq_sim::{QueryMetrics, SystemParams};
use fedoq_workload::{generate, WorkloadParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Harness settings: sample count and workload scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Settings {
    /// Random configurations per sweep point (the paper uses 500).
    pub samples: usize,
    /// Object-count scale factor (1.0 = the paper's sizes).
    pub scale: f64,
}

impl Settings {
    /// Reads `FEDOQ_SAMPLES` and `FEDOQ_SCALE` from the environment,
    /// falling back to 120 samples at full scale.
    pub fn from_env() -> Settings {
        let samples = std::env::var("FEDOQ_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(120);
        let scale = std::env::var("FEDOQ_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.0);
        Settings { samples, scale }
    }

    /// A tiny setting for tests.
    pub fn smoke() -> Settings {
        Settings {
            samples: 4,
            scale: 0.01,
        }
    }
}

impl Default for Settings {
    fn default() -> Self {
        Settings::from_env()
    }
}

/// Average metrics of every strategy at one sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The swept parameter's value at this point.
    pub x: f64,
    /// Average metrics per strategy, parallel to the experiment's series.
    pub metrics: Vec<QueryMetrics>,
    /// Sample dispersion per strategy (same order).
    pub dispersion: Vec<Dispersion>,
}

/// Sample standard deviations of the two reported measures.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Dispersion {
    /// Standard deviation of the total execution time, µs.
    pub total_std_us: f64,
    /// Standard deviation of the response time, µs.
    pub response_std_us: f64,
}

impl Dispersion {
    /// Computes per-strategy standard deviations from raw per-sample
    /// measurements (`samples[strategy][sample]`).
    pub fn from_samples(samples: &[Vec<QueryMetrics>]) -> Vec<Dispersion> {
        samples
            .iter()
            .map(|runs| {
                let n = runs.len() as f64;
                if n < 2.0 {
                    return Dispersion::default();
                }
                let mean_total: f64 = runs.iter().map(|m| m.total_execution_us).sum::<f64>() / n;
                let mean_resp: f64 = runs.iter().map(|m| m.response_us).sum::<f64>() / n;
                let var_total = runs
                    .iter()
                    .map(|m| (m.total_execution_us - mean_total).powi(2))
                    .sum::<f64>()
                    / (n - 1.0);
                let var_resp = runs
                    .iter()
                    .map(|m| (m.response_us - mean_resp).powi(2))
                    .sum::<f64>()
                    / (n - 1.0);
                Dispersion {
                    total_std_us: var_total.sqrt(),
                    response_std_us: var_resp.sqrt(),
                }
            })
            .collect()
    }
}

/// One strategy's identity within an experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrategySeries {
    /// Short name ("CA", "BL", "PL", "BL-S", "PL-S").
    pub name: &'static str,
}

/// A regenerated figure: strategy series over a parameter sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentResult {
    /// Which paper artifact this regenerates (e.g. `"fig9"`).
    pub id: &'static str,
    /// Label of the swept parameter.
    pub x_label: &'static str,
    /// The strategies measured.
    pub series: Vec<StrategySeries>,
    /// One entry per sweep value.
    pub points: Vec<SweepPoint>,
}

impl ExperimentResult {
    /// The averaged metric of `series_idx` at `point_idx`.
    pub fn metric(&self, point_idx: usize, series_idx: usize) -> &QueryMetrics {
        &self.points[point_idx].metrics[series_idx]
    }

    /// Index of the named series.
    pub fn series_index(&self, name: &str) -> Option<usize> {
        self.series.iter().position(|s| s.name == name)
    }
}

fn base_strategies() -> Vec<Box<dyn ExecutionStrategy>> {
    vec![
        Box::new(Centralized),
        Box::new(BasicLocalized::new()),
        Box::new(ParallelLocalized::new()),
    ]
}

/// Runs `samples` random configurations of `params`, executing every
/// strategy on each, and returns the per-strategy averages.
///
/// Sampling is seeded from `base_seed` so experiments are reproducible
/// and the strategies are compared on identical workloads.
pub fn run_point(
    params: &WorkloadParams,
    strategies: &[Box<dyn ExecutionStrategy>],
    samples: usize,
    base_seed: u64,
) -> Vec<QueryMetrics> {
    run_point_detailed(params, strategies, samples, base_seed).0
}

/// Like [`run_point`], also returning the per-strategy dispersion of the
/// two reported measures.
pub fn run_point_detailed(
    params: &WorkloadParams,
    strategies: &[Box<dyn ExecutionStrategy>],
    samples: usize,
    base_seed: u64,
) -> (Vec<QueryMetrics>, Vec<Dispersion>) {
    let mut sums = vec![QueryMetrics::default(); strategies.len()];
    let mut raw: Vec<Vec<QueryMetrics>> = vec![Vec::with_capacity(samples); strategies.len()];
    for i in 0..samples {
        let seed = base_seed.wrapping_mul(1000).wrapping_add(i as u64);
        let config = params.sample(&mut StdRng::seed_from_u64(seed));
        let sample = generate(&config, seed);
        let query = bind(&sample.query, sample.federation.global_schema())
            .expect("generated queries always bind");
        let mut answers = Vec::with_capacity(strategies.len());
        for (s, strategy) in strategies.iter().enumerate() {
            let (answer, metrics) = run_strategy(
                strategy.as_ref(),
                &sample.federation,
                &query,
                SystemParams::paper_default(),
            )
            .expect("generated federations execute");
            sums[s] = sums[s].add(&metrics);
            raw[s].push(metrics);
            answers.push(answer);
        }
        // Cross-validate: every strategy classified identically.
        for pair in answers.windows(2) {
            assert!(
                pair[0].same_classification(&pair[1]),
                "strategies disagreed on seed {seed}"
            );
        }
    }
    let means = sums
        .into_iter()
        .map(|m| m.scale_down(samples as u64))
        .collect();
    (means, Dispersion::from_samples(&raw))
}

fn sweep(
    id: &'static str,
    x_label: &'static str,
    xs: &[f64],
    strategies: Vec<Box<dyn ExecutionStrategy>>,
    settings: Settings,
    make_params: impl Fn(f64) -> WorkloadParams,
) -> ExperimentResult {
    let series = strategies
        .iter()
        .map(|s| StrategySeries { name: s.name() })
        .collect();
    let mut points = Vec::with_capacity(xs.len());
    for (i, &x) in xs.iter().enumerate() {
        let params = make_params(x);
        let (metrics, dispersion) =
            run_point_detailed(&params, &strategies, settings.samples, 0xF1D0 + i as u64);
        points.push(SweepPoint {
            x,
            metrics,
            dispersion,
        });
    }
    ExperimentResult {
        id,
        x_label,
        series,
        points,
    }
}

/// Figure 9: total execution time (a) and response time (b) as the
/// average number of objects per constituent class grows.
pub fn fig9(settings: Settings) -> ExperimentResult {
    let xs = [1000.0, 2000.0, 3000.0, 4000.0, 5000.0, 6000.0];
    sweep(
        "fig9",
        "objects per constituent class",
        &xs,
        base_strategies(),
        settings,
        move |x| {
            let mut p = WorkloadParams::paper_default();
            let lo = ((x * 0.9 * settings.scale).round() as usize).max(1);
            let hi = ((x * 1.1 * settings.scale).round() as usize).max(1);
            p.objects_per_class = lo..=hi.max(lo);
            p
        },
    )
}

/// Figure 10: the same measures as the number of component databases
/// grows (`R_iso` follows the paper's `1 − 0.9^(N_db−1)`).
pub fn fig10(settings: Settings) -> ExperimentResult {
    let xs = [2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
    sweep(
        "fig10",
        "component databases",
        &xs,
        base_strategies(),
        settings,
        move |x| {
            let mut p = WorkloadParams::paper_default().scaled(settings.scale);
            p.n_db = x as usize;
            p
        },
    )
}

/// Figure 11: the same measures as the selectivity of the local
/// predicates grows (`N_o` restricted to 1000–2000 as in the paper).
pub fn fig11(settings: Settings) -> ExperimentResult {
    let xs = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    sweep(
        "fig11",
        "local predicate selectivity",
        &xs,
        base_strategies(),
        settings,
        move |x| {
            let mut p = WorkloadParams::paper_default();
            let lo = ((1000.0 * settings.scale).round() as usize).max(1);
            let hi = ((2000.0 * settings.scale).round() as usize).max(lo + 1);
            p.objects_per_class = lo..=hi;
            p.preds_per_class = 1..=3;
            p.forced_selectivity = Some(x);
            p
        },
    )
}

/// Extension ablation: BL/PL against their signature-assisted variants on
/// equality-predicate workloads (the paper's `R_ss` proposal).
pub fn signature_ablation(settings: Settings) -> ExperimentResult {
    let xs = [1000.0, 3000.0, 5000.0];
    let strategies: Vec<Box<dyn ExecutionStrategy>> = vec![
        Box::new(BasicLocalized::new()),
        Box::new(BasicLocalized::with_signatures()),
        Box::new(ParallelLocalized::new()),
        Box::new(ParallelLocalized::with_signatures()),
    ];
    sweep(
        "signature_ablation",
        "objects per constituent class",
        &xs,
        strategies,
        settings,
        move |x| {
            let mut p = WorkloadParams::paper_default();
            let lo = ((x * 0.9 * settings.scale).round() as usize).max(1);
            let hi = ((x * 1.1 * settings.scale).round() as usize).max(lo);
            p.objects_per_class = lo..=hi;
            p.eq_predicates = true;
            p.preds_per_class = 1..=3;
            p
        },
    )
}

/// Isomerism sweep (beyond the paper's figures): vary the number of
/// copies per replicated entity at a fixed federation size. Assistant
/// volume — the localized strategies' main cost — scales directly with
/// it.
pub fn niso_sweep(settings: Settings) -> ExperimentResult {
    let xs = [1.0, 2.0, 3.0, 4.0];
    sweep(
        "niso_sweep",
        "copies per replicated entity",
        &xs,
        base_strategies(),
        settings,
        move |x| {
            let mut p = WorkloadParams::paper_default().scaled(settings.scale);
            p.n_db = 4;
            p.n_iso = x as usize;
            // Hold the replicated fraction fixed so only the copy count moves.
            p.iso_ratio = Some(0.3);
            p
        },
    )
}

/// Network-model ablation: the Figure-10 sweep repeated under
/// point-to-point links instead of the paper's shared medium. Probes the
/// one measured deviation from the paper (PL's response crossing CA at
/// 7–8 databases under bus contention).
pub fn network_ablation(settings: Settings) -> ExperimentResult {
    let xs = [2.0, 4.0, 6.0, 8.0];
    let strategies = base_strategies();
    let series = strategies
        .iter()
        .map(|s| StrategySeries { name: s.name() })
        .collect();
    let mut points = Vec::with_capacity(xs.len());
    for (i, &x) in xs.iter().enumerate() {
        let mut params = WorkloadParams::paper_default().scaled(settings.scale);
        params.n_db = x as usize;
        let (metrics, dispersion) = run_point_with_network(
            &params,
            &strategies,
            settings.samples,
            0xF1D0 + i as u64,
            NetworkModel::PointToPoint,
        );
        points.push(SweepPoint {
            x,
            metrics,
            dispersion,
        });
    }
    ExperimentResult {
        id: "network_ablation",
        x_label: "component databases (p2p links)",
        series,
        points,
    }
}

fn run_point_with_network(
    params: &WorkloadParams,
    strategies: &[Box<dyn ExecutionStrategy>],
    samples: usize,
    base_seed: u64,
    network: NetworkModel,
) -> (Vec<QueryMetrics>, Vec<Dispersion>) {
    let mut sums = vec![QueryMetrics::default(); strategies.len()];
    let mut raw: Vec<Vec<QueryMetrics>> = vec![Vec::with_capacity(samples); strategies.len()];
    for i in 0..samples {
        let seed = base_seed.wrapping_mul(1000).wrapping_add(i as u64);
        let config = params.sample(&mut StdRng::seed_from_u64(seed));
        let sample = generate(&config, seed);
        let query = bind(&sample.query, sample.federation.global_schema())
            .expect("generated queries always bind");
        for (s, strategy) in strategies.iter().enumerate() {
            let (_, metrics) = run_strategy_with_network(
                strategy.as_ref(),
                &sample.federation,
                &query,
                SystemParams::paper_default(),
                network,
            )
            .expect("generated federations execute");
            sums[s] = sums[s].add(&metrics);
            raw[s].push(metrics);
        }
    }
    let means = sums
        .into_iter()
        .map(|m| m.scale_down(samples as u64))
        .collect();
    (means, Dispersion::from_samples(&raw))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_point_averages_over_identical_workloads() {
        let params = WorkloadParams::paper_default().scaled(0.01);
        let metrics = run_point(&params, &base_strategies(), 3, 7);
        assert_eq!(metrics.len(), 3);
        for m in &metrics {
            assert!(m.total_execution_us > 0.0);
            assert!(m.response_us > 0.0);
            assert!(m.total_execution_us >= m.response_us);
        }
    }

    #[test]
    fn fig9_smoke_produces_growing_curves() {
        let mut settings = Settings::smoke();
        settings.samples = 3;
        let result = fig9(settings);
        assert_eq!(result.points.len(), 6);
        assert_eq!(result.series.len(), 3);
        let ca = result.series_index("CA").unwrap();
        // CA's total time grows with object count.
        assert!(result.metric(5, ca).total_execution_us > result.metric(0, ca).total_execution_us);
    }

    #[test]
    fn series_lookup() {
        let settings = Settings {
            samples: 1,
            scale: 0.005,
        };
        let result = fig10(Settings {
            samples: 1,
            scale: 0.005,
        });
        assert_eq!(result.series_index("BL"), Some(1));
        assert_eq!(result.series_index("nope"), None);
        let _ = settings;
    }
}
