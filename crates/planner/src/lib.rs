//! # fedoq-plan — statistics catalog and adaptive strategy planner
//!
//! The paper's analysis (and `fedoq-analytic`'s sweep) shows that none
//! of CA, BL, or PL dominates: the winner flips with extent sizes, the
//! unsolved fraction, isomeric overlap, and the network's price per
//! byte. This crate closes the loop — it *measures* those quantities
//! instead of assuming them, prices every candidate schedule with the
//! same formula set the analytic sweep uses, and folds observed
//! execution times back in so repeated workloads converge on the true
//! winner even where the model is wrong.
//!
//! Three layers:
//!
//! - [`StatsCatalog`] ([`catalog`]) scans the component databases for
//!   per-site per-class cardinalities, per-attribute null fractions and
//!   value sketches, missing-attribute availability, and isomeric
//!   overlap from the GOid tables; it also accumulates EWMA transport
//!   and response-time observations.
//! - [`profile`] ([`cost`]) turns a bound query plus the catalog into
//!   the [`AnalyticInputs`] the shared cost model prices — one
//!   aggregate view and one per-hosting-site view.
//! - [`choose()`] ([`choose`](mod@choose)) enumerates CA/BL/PL plus a
//!   per-site *hybrid* assignment (clean sites skip assistant lookups),
//!   blends model estimates with observed feedback, and returns a
//!   ranked [`PlanChoice`].
//!
//! The executor in `fedoq-core` drives the loop: plan → run → observe →
//! replan.

pub mod catalog;
pub mod choose;
pub mod cost;

pub use catalog::{AttrStats, ClassIsoStats, Ewma, SiteClassStats, SiteStats, StatsCatalog};
pub use choose::{choose, replan, PlanChoice, PlanKind, RankedPlan, SiteMode};
pub use cost::{profile, QueryProfile, SiteProfile};

// Re-export the shared formula-set surface so planner consumers don't
// need a direct fedoq-analytic dependency for the common types.
pub use fedoq_analytic::{AnalyticInputs, CostBreakdown, PipelineKnobs, StrategyKind};
