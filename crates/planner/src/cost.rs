//! Deriving cost-model inputs for one query from the catalog.
//!
//! [`profile`] turns a bound query plus the scanned statistics into the
//! [`AnalyticInputs`] the shared formula set (`fedoq-analytic::model`)
//! prices — one aggregate view for the uniform strategies, and one
//! per-hosting-site view for the hybrid assignment. Selectivities come
//! from the per-attribute sketches, unsolved fractions from measured
//! missing-attribute availability and null fractions, isomeric overlap
//! from the GOid tables, and the network price from observed transport
//! samples when any exist.

use crate::catalog::StatsCatalog;
use fedoq_analytic::AnalyticInputs;
use fedoq_object::DbId;
use fedoq_query::{plan_for_db, BoundQuery};
use fedoq_schema::GlobalSchema;

/// The planner's view of one hosting site.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteProfile {
    /// The site.
    pub db: DbId,
    /// Per-site cost-model inputs (`objects`, selectivity, unsolved
    /// fraction measured at this site; federation-wide `n_db` and iso).
    pub inputs: AnalyticInputs,
    /// `true` when this site can produce maybe results for the query:
    /// some predicate is statically unsolved here, or a locally
    /// evaluable predicate attribute stores nulls. Sites where this is
    /// `false` never need assistant lookups.
    pub maybe_producing: bool,
}

/// The planner's view of one query over the whole federation.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryProfile {
    /// Federation-average inputs for the uniform CA/BL/PL pricing.
    pub inputs: AnalyticInputs,
    /// Per-site inputs for the hybrid pricing (hosting sites only).
    pub sites: Vec<SiteProfile>,
}

/// Builds the cost-model inputs for `query` from the catalog.
pub fn profile(catalog: &StatsCatalog, schema: &GlobalSchema, query: &BoundQuery) -> QueryProfile {
    let mut params = *catalog.params();
    // Observed transport samples re-price the shared link.
    params.net_us_per_byte = catalog.net_us_per_byte();

    let range = query.range();
    let mut involved = query.involved_classes();
    if !involved.contains(&range) {
        involved.push(range);
    }
    let n_classes = involved.len().max(1) as f64;
    let preds = query.predicates();
    let n_db = catalog.sites().len().max(1) as f64;

    // Isomeric overlap averaged over the involved classes.
    let (mut iso_ratio, mut n_iso, mut iso_classes) = (0.0, 0.0, 0usize);
    for &class in &involved {
        if let Some(iso) = catalog.class_iso(class) {
            iso_ratio += iso.iso_ratio();
            n_iso += iso.n_iso();
            iso_classes += 1;
        }
    }
    if iso_classes > 0 {
        iso_ratio /= iso_classes as f64;
        n_iso /= iso_classes as f64;
    } else {
        n_iso = 1.0;
    }

    // Projected attributes per class: key, the involved predicate slots,
    // and the select-list targets.
    let involved_slots: usize = query
        .involved_slots()
        .values()
        .map(std::collections::BTreeSet::len)
        .sum();
    let attrs_per_class =
        1.0 + (involved_slots as f64 + query.targets().len() as f64) / n_classes + 1.0;

    let mut sites = Vec::new();
    for site in catalog.sites() {
        let Some(plan) = plan_for_db(query, schema, site.db) else {
            continue;
        };
        let objects = site
            .class(range)
            .map_or(0.0, |stats| stats.cardinality as f64);

        // Walk the conjuncts: locally evaluable predicates contribute
        // their estimated selectivity; unsolved ones contribute a full
        // unsolved share and no local filtering.
        let mut sel_product = 1.0;
        let mut unsolved_sum = 0.0;
        let mut maybe_producing = false;
        for pred in preds {
            let path = pred.path();
            let terminal = path.len().saturating_sub(1);
            let attr_stats = |db: DbId| {
                catalog
                    .site(db)
                    .and_then(|s| s.class(path.class(terminal)))
                    .map(|c| c.attr(path.slot(terminal)).clone())
            };
            if plan.disposition(pred.id()).is_local() {
                let stats = attr_stats(site.db);
                let (sel, nulls) = stats.map_or((0.5, 0.0), |a| {
                    (a.selectivity(pred.op(), pred.literal()), a.null_fraction)
                });
                sel_product *= sel.clamp(0.0, 1.0);
                unsolved_sum += nulls;
                if nulls > 0.0 {
                    maybe_producing = true;
                }
            } else {
                unsolved_sum += 1.0;
                maybe_producing = true;
            }
        }
        let unsolved_ratio = if preds.is_empty() {
            0.0
        } else {
            (unsolved_sum / preds.len() as f64).clamp(0.0, 1.0)
        };
        // survivors() raises local_selectivity to n_classes; invert so
        // the expected survivor count is objects × Π sel.
        let local_selectivity = sel_product.max(1e-12).powf(1.0 / n_classes);

        sites.push(SiteProfile {
            db: site.db,
            inputs: AnalyticInputs {
                params,
                n_db,
                n_classes,
                objects,
                preds_per_class: preds.len() as f64 / n_classes,
                attrs_per_class,
                local_selectivity,
                iso_ratio,
                n_iso,
                unsolved_ratio,
            },
            maybe_producing,
        });
    }

    // Aggregate: the average hosting site.
    let hosts = sites.len().max(1) as f64;
    let mean = |f: fn(&SiteProfile) -> f64| sites.iter().map(f).sum::<f64>() / hosts;
    let inputs = AnalyticInputs {
        params,
        n_db,
        n_classes,
        objects: mean(|s| s.inputs.objects),
        preds_per_class: preds.len() as f64 / n_classes,
        attrs_per_class,
        local_selectivity: if sites.is_empty() {
            1.0
        } else {
            mean(|s| s.inputs.local_selectivity)
        },
        iso_ratio,
        n_iso,
        unsolved_ratio: if sites.is_empty() {
            0.0
        } else {
            mean(|s| s.inputs.unsolved_ratio)
        },
    };
    QueryProfile { inputs, sites }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedoq_object::{DbId, Value};
    use fedoq_schema::{identify_isomerism, integrate, Correspondences};
    use fedoq_sim::SystemParams;
    use fedoq_store::{AttrType, ClassDef, ComponentDb, ComponentSchema};

    fn setup() -> (StatsCatalog, GlobalSchema, BoundQuery) {
        let s0 = ComponentSchema::new(vec![ClassDef::new("Student")
            .attr("s-no", AttrType::int())
            .attr("age", AttrType::int())
            .key(["s-no"])])
        .unwrap();
        let s1 = ComponentSchema::new(vec![ClassDef::new("Student")
            .attr("s-no", AttrType::int())
            .key(["s-no"])])
        .unwrap();
        let mut db0 = ComponentDb::new(DbId::new(0), "DB0", s0);
        let mut db1 = ComponentDb::new(DbId::new(1), "DB1", s1);
        for i in 0..10 {
            db0.insert_named(
                "Student",
                &[("s-no", Value::Int(i)), ("age", Value::Int(20 + i))],
            )
            .unwrap();
        }
        for i in 0..6 {
            db1.insert_named("Student", &[("s-no", Value::Int(i))])
                .unwrap();
        }
        let schema = integrate(
            &[(db0.id(), db0.schema()), (db1.id(), db1.schema())],
            &Correspondences::new(),
        )
        .unwrap();
        let goids = identify_isomerism(&[&db0, &db1], &schema).unwrap();
        let catalog = StatsCatalog::collect(
            [&db0, &db1],
            &schema,
            &goids,
            0,
            SystemParams::paper_default(),
        );
        let query = fedoq_query::bind(
            &fedoq_query::parse("SELECT X.s-no FROM Student X WHERE X.age >= 25").unwrap(),
            &schema,
        )
        .unwrap();
        (catalog, schema, query)
    }

    #[test]
    fn profile_measures_each_hosting_site() {
        let (catalog, schema, query) = setup();
        let p = profile(&catalog, &schema, &query);
        assert_eq!(p.sites.len(), 2);
        let db0 = &p.sites[0];
        let db1 = &p.sites[1];
        assert_eq!(db0.inputs.objects, 10.0);
        assert_eq!(db1.inputs.objects, 6.0);
        // age is evaluable (and never null) at DB0: no maybes there.
        assert!(!db0.maybe_producing);
        assert_eq!(db0.inputs.unsolved_ratio, 0.0);
        // age is a missing attribute at DB1: every row unsolved.
        assert!(db1.maybe_producing);
        assert_eq!(db1.inputs.unsolved_ratio, 1.0);
        // DB0's sketch: ages 20..29, so `>= 25` keeps 1 − 5/9 of the rows.
        let survivors = db0.inputs.survivors();
        assert!((survivors - 10.0 * (4.0 / 9.0)).abs() < 1e-6, "{survivors}");
        // Aggregate inputs average the sites.
        assert_eq!(p.inputs.objects, 8.0);
        assert_eq!(p.inputs.n_db, 2.0);
        assert!((p.inputs.unsolved_ratio - 0.5).abs() < 1e-9);
    }

    #[test]
    fn iso_overlap_feeds_the_inputs() {
        let (catalog, schema, query) = setup();
        let p = profile(&catalog, &schema, &query);
        // 6 of 10 entities replicated, 2 copies each.
        assert!((p.inputs.iso_ratio - 0.6).abs() < 1e-9);
        assert!((p.inputs.n_iso - 2.0).abs() < 1e-9);
    }

    #[test]
    fn observed_transport_reprices_the_link() {
        let (mut catalog, schema, query) = setup();
        let base = profile(&catalog, &schema, &query);
        assert_eq!(base.inputs.params.net_us_per_byte, 8.0);
        catalog.observe_net(100, 3200.0);
        let tuned = profile(&catalog, &schema, &query);
        assert!((tuned.inputs.params.net_us_per_byte - 32.0).abs() < 1e-9);
    }
}
