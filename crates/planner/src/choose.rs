//! The plan enumerator and chooser.
//!
//! [`choose`] prices every candidate plan — the three uniform strategies
//! plus a per-site *hybrid* assignment — with the shared formula set,
//! blends each model estimate with the catalog's observed response times
//! for the same `(query, plan)` pair (EWMA feedback), and returns a
//! [`PlanChoice`] ranked by blended score. The hybrid assignment gives
//! every maybe-producing site the cheaper of BL's and PL's schedules and
//! lets clean sites (no maybe-producing predicates) skip assistant
//! lookups entirely by running BL's schedule, where no unsolved rows
//! means no checks.

use crate::catalog::StatsCatalog;
use crate::cost::{profile, QueryProfile, SiteProfile};
use fedoq_analytic::{
    breakdown_tuned, certify_cpu, localized_site_terms, CostBreakdown, PipelineKnobs, SiteTerms,
    StrategyKind,
};
use fedoq_object::DbId;
use fedoq_query::BoundQuery;
use fedoq_schema::GlobalSchema;
use std::fmt;

/// A candidate plan shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanKind {
    /// CA everywhere.
    Centralized,
    /// BL everywhere.
    BasicLocalized,
    /// PL everywhere.
    ParallelLocalized,
    /// Per-site BL/PL assignment.
    Hybrid,
}

impl PlanKind {
    /// All candidate shapes, in ranking tie-break order.
    pub const ALL: [PlanKind; 4] = [
        PlanKind::Centralized,
        PlanKind::BasicLocalized,
        PlanKind::ParallelLocalized,
        PlanKind::Hybrid,
    ];

    /// The short label used in plan output and feedback keys.
    pub fn label(self) -> &'static str {
        match self {
            PlanKind::Centralized => "CA",
            PlanKind::BasicLocalized => "BL",
            PlanKind::ParallelLocalized => "PL",
            PlanKind::Hybrid => "HY",
        }
    }

    /// The uniform strategy this shape corresponds to, if any.
    pub fn uniform(self) -> Option<StrategyKind> {
        match self {
            PlanKind::Centralized => Some(StrategyKind::Centralized),
            PlanKind::BasicLocalized => Some(StrategyKind::BasicLocalized),
            PlanKind::ParallelLocalized => Some(StrategyKind::ParallelLocalized),
            PlanKind::Hybrid => None,
        }
    }
}

impl fmt::Display for PlanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One site's schedule under the hybrid plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteMode {
    /// The site.
    pub db: DbId,
    /// `true` → PL's schedule (static prefetch); `false` → BL's.
    pub parallel: bool,
}

/// One priced candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedPlan {
    /// The plan shape.
    pub kind: PlanKind,
    /// Per-site assignment (hybrid only; empty otherwise).
    pub modes: Vec<SiteMode>,
    /// The model's cost decomposition.
    pub breakdown: CostBreakdown,
    /// The model's response-time estimate, µs.
    pub model_us: f64,
    /// Observed EWMA response time for this `(query, plan)`, if any.
    pub observed_us: Option<f64>,
    /// Weight of the observation in the blended score, `[0, 1)`.
    pub confidence: f64,
    /// Blended score the ranking sorts by, µs.
    pub score_us: f64,
}

/// The ranked outcome of plan enumeration.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanChoice {
    /// Candidates, cheapest blended score first.
    pub ranked: Vec<RankedPlan>,
    /// Catalog generation the plans were priced against.
    pub generation: u64,
    /// The query fingerprint the feedback is keyed by.
    pub fingerprint: u64,
}

impl PlanChoice {
    /// The winning plan.
    ///
    /// # Panics
    ///
    /// Never — [`choose`] always ranks at least the three uniform
    /// strategies.
    pub fn best(&self) -> &RankedPlan {
        &self.ranked[0]
    }

    /// The ranked entry for `kind`, if it was enumerated.
    pub fn plan(&self, kind: PlanKind) -> Option<&RankedPlan> {
        self.ranked.iter().find(|p| p.kind == kind)
    }
}

impl fmt::Display for PlanChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "plan ranking (catalog generation {}, fingerprint {:#018x}):",
            self.generation, self.fingerprint
        )?;
        for (i, plan) in self.ranked.iter().enumerate() {
            let marker = if i == 0 { "→" } else { " " };
            write!(
                f,
                "{} {}  score {:>10.1} ms  model {:>10.1} ms",
                marker,
                plan.kind,
                plan.score_us / 1e3,
                plan.model_us / 1e3
            )?;
            match plan.observed_us {
                Some(obs) => writeln!(
                    f,
                    "  observed {:>10.1} ms (weight {:.2})",
                    obs / 1e3,
                    plan.confidence
                )?,
                None => writeln!(f)?,
            }
            writeln!(f, "    {}", plan.breakdown)?;
            if plan.kind == PlanKind::Hybrid {
                let modes: Vec<String> = plan
                    .modes
                    .iter()
                    .map(|m| format!("site {} {}", m.db, if m.parallel { "PL" } else { "BL" }))
                    .collect();
                writeln!(f, "    assignment: {}", modes.join(", "))?;
            }
        }
        Ok(())
    }
}

/// Picks one site's schedule: the cheaper of BL's and PL's for a
/// maybe-producing site (busy time plus its serialized bytes at the
/// given network price), pinned to BL for a clean site (no unsolved
/// rows → no lookups to prefetch).
fn site_mode(site: &SiteProfile, net_us_per_byte: f64, knobs: &PipelineKnobs) -> (SiteTerms, bool) {
    let basic = localized_site_terms(&site.inputs, false, knobs);
    if !site.maybe_producing {
        return (basic, false);
    }
    let par = localized_site_terms(&site.inputs, true, knobs);
    let cost = |t: &SiteTerms, parallel: bool| {
        t.site_path_us(parallel, net_us_per_byte) + t.bytes() * net_us_per_byte
    };
    if cost(&par, true) < cost(&basic, false) {
        (par, true)
    } else {
        (basic, false)
    }
}

/// Prices one localized plan from the per-site profiles. `mode` fixes
/// every site's schedule (uniform BL/PL); `None` lets each site take
/// the cheaper of the two — the hybrid assignment — with maybe-free
/// sites pinned to BL (no unsolved rows → no lookups).
///
/// All three localized candidates go through this one function so their
/// estimates are comparable: pricing the uniform strategies from
/// federation-*averaged* inputs while the hybrid sums honest per-site
/// terms made the uniforms systematically optimistic whenever the site
/// profiles were skewed — exactly the workloads where the hybrid is the
/// right plan — and HY was never selected.
fn localized_plan(
    profile: &QueryProfile,
    mode: Option<bool>,
    knobs: &PipelineKnobs,
) -> Option<(Vec<SiteMode>, CostBreakdown)> {
    if profile.sites.is_empty() {
        return None;
    }
    let net_us_per_byte = profile.inputs.params.net_us_per_byte;
    let mut modes = Vec::with_capacity(profile.sites.len());
    let mut b = CostBreakdown::default();
    for site in &profile.sites {
        let (terms, parallel) = match mode {
            Some(parallel) => (
                localized_site_terms(&site.inputs, parallel, knobs),
                parallel,
            ),
            None => site_mode(site, net_us_per_byte, knobs),
        };
        modes.push(SiteMode {
            db: site.db,
            parallel,
        });
        b.sites_us += terms.site_work_us();
        b.site_path_us = b
            .site_path_us
            .max(terms.site_path_us(parallel, net_us_per_byte));
        b.net_us += terms.bytes() * net_us_per_byte;
        b.global_us += certify_cpu(&site.inputs, terms.survivors);
        b.messages += terms.messages(knobs.batch);
    }
    Some((modes, b))
}

/// Re-prices the per-site assignment for an in-flight hybrid execution
/// and returns fresh schedules for the `unfinished` sites only.
///
/// The profile is rebuilt from the *current* catalog, so transport and
/// response samples fed back mid-query ([`StatsCatalog::observe_net`])
/// shift the network price before the unfinished sites are re-assigned.
/// Completed sites are never returned — their replies are already
/// merged, and re-dispatching them would risk certifying the same
/// maybes twice. Sites in `unfinished` that do not host the query are
/// skipped.
pub fn replan(
    catalog: &StatsCatalog,
    schema: &GlobalSchema,
    query: &BoundQuery,
    knobs: &PipelineKnobs,
    unfinished: &[DbId],
) -> Vec<SiteMode> {
    let prof = profile(catalog, schema, query);
    let net_us_per_byte = prof.inputs.params.net_us_per_byte;
    prof.sites
        .iter()
        .filter(|site| unfinished.contains(&site.db))
        .map(|site| {
            let (_, parallel) = site_mode(site, net_us_per_byte, knobs);
            SiteMode {
                db: site.db,
                parallel,
            }
        })
        .collect()
}

/// Enumerates and ranks every candidate plan for `query`.
///
/// `fingerprint` keys the feedback loop (use the executor's query
/// fingerprint so repeated runs converge); `allow_hybrid` gates the
/// per-site assignment (the distributed runtime only ships uniform
/// strategies).
pub fn choose(
    catalog: &StatsCatalog,
    schema: &GlobalSchema,
    query: &BoundQuery,
    knobs: &PipelineKnobs,
    fingerprint: u64,
    allow_hybrid: bool,
) -> PlanChoice {
    let prof = profile(catalog, schema, query);
    let mut ranked = Vec::new();
    for kind in PlanKind::ALL {
        let (modes, breakdown) = match kind {
            PlanKind::Centralized => (
                Vec::new(),
                breakdown_tuned(StrategyKind::Centralized, &prof.inputs, knobs),
            ),
            PlanKind::BasicLocalized | PlanKind::ParallelLocalized => {
                let parallel = kind == PlanKind::ParallelLocalized;
                match localized_plan(&prof, Some(parallel), knobs) {
                    // The uniform modes carry no per-site assignment.
                    Some((_, b)) => (Vec::new(), b),
                    // No hosting sites profiled: fall back to the
                    // federation-averaged estimate.
                    None => (
                        Vec::new(),
                        breakdown_tuned(
                            kind.uniform().expect("BL/PL are uniform"),
                            &prof.inputs,
                            knobs,
                        ),
                    ),
                }
            }
            PlanKind::Hybrid => {
                if !allow_hybrid {
                    continue;
                }
                let Some((modes, b)) = localized_plan(&prof, None, knobs) else {
                    continue;
                };
                (modes, b)
            }
        };
        let model_us = breakdown.response_us();
        let (observed_us, confidence) = match catalog.observed_response(fingerprint, kind.label()) {
            Some((mean, conf)) => (Some(mean), conf),
            None => (None, 0.0),
        };
        let score_us = match observed_us {
            Some(obs) => (1.0 - confidence) * model_us + confidence * obs,
            None => model_us,
        };
        ranked.push(RankedPlan {
            kind,
            modes,
            breakdown,
            model_us,
            observed_us,
            confidence,
            score_us,
        });
    }
    // Equal response-time scores are broken by expected total busy
    // time: at the same makespan, prefer the plan that burns less
    // federation-wide work (the hybrid skips PL's static prefetch on
    // maybe-free sites, so it wins this tie-break exactly when its
    // assignment differs from a uniform mode).
    ranked.sort_by(|a, b| {
        a.score_us
            .total_cmp(&b.score_us)
            .then(a.breakdown.total_us().total_cmp(&b.breakdown.total_us()))
    });
    PlanChoice {
        ranked,
        generation: catalog.generation(),
        fingerprint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedoq_object::Value;
    use fedoq_schema::{identify_isomerism, integrate, Correspondences};
    use fedoq_sim::SystemParams;
    use fedoq_store::{AttrType, ClassDef, ComponentDb, ComponentSchema};

    fn setup(nulls_at_db0: bool) -> (StatsCatalog, GlobalSchema, BoundQuery) {
        let mk = |db: u32| {
            ComponentSchema::new(vec![ClassDef::new("Student")
                .attr("s-no", AttrType::int())
                .attr("age", AttrType::int())
                .key(["s-no"])])
            .unwrap_or_else(|_| panic!("schema {db}"))
        };
        let mut db0 = ComponentDb::new(DbId::new(0), "DB0", mk(0));
        let mut db1 = ComponentDb::new(DbId::new(1), "DB1", mk(1));
        for i in 0..40 {
            let age = if nulls_at_db0 && i % 2 == 0 {
                Value::Null
            } else {
                Value::Int(20 + (i % 10))
            };
            db0.insert_named("Student", &[("s-no", Value::Int(i)), ("age", age)])
                .unwrap();
            db1.insert_named(
                "Student",
                &[("s-no", Value::Int(i)), ("age", Value::Int(20 + (i % 10)))],
            )
            .unwrap();
        }
        let schema = integrate(
            &[(db0.id(), db0.schema()), (db1.id(), db1.schema())],
            &Correspondences::new(),
        )
        .unwrap();
        let goids = identify_isomerism(&[&db0, &db1], &schema).unwrap();
        let catalog = StatsCatalog::collect(
            [&db0, &db1],
            &schema,
            &goids,
            0,
            SystemParams::paper_default(),
        );
        let query = fedoq_query::bind(
            &fedoq_query::parse("SELECT X.s-no FROM Student X WHERE X.age >= 25").unwrap(),
            &schema,
        )
        .unwrap();
        (catalog, schema, query)
    }

    #[test]
    fn choose_ranks_all_plans_cheapest_first() {
        let (catalog, schema, query) = setup(true);
        let choice = choose(
            &catalog,
            &schema,
            &query,
            &PipelineKnobs::baseline(),
            1,
            true,
        );
        assert_eq!(choice.ranked.len(), 4);
        for pair in choice.ranked.windows(2) {
            assert!(pair[0].score_us <= pair[1].score_us);
        }
        for kind in PlanKind::ALL {
            assert!(choice.plan(kind).is_some(), "{kind} missing");
        }
        let shown = choice.to_string();
        assert!(shown.contains("plan ranking"));
        assert!(shown.contains("CA"));
        assert!(shown.contains("assignment:"));
    }

    #[test]
    fn hybrid_pins_clean_sites_to_bl() {
        let (catalog, schema, query) = setup(true);
        let choice = choose(
            &catalog,
            &schema,
            &query,
            &PipelineKnobs::baseline(),
            1,
            true,
        );
        let hy = choice.plan(PlanKind::Hybrid).unwrap();
        assert_eq!(hy.modes.len(), 2);
        // DB1 stores no nulls and hosts every predicate attribute: its
        // schedule must be BL (skip assistant lookups entirely).
        let db1 = hy.modes.iter().find(|m| m.db == DbId::new(1)).unwrap();
        assert!(!db1.parallel);
        // The hybrid never prices worse than both uniform localized
        // strategies (it can always copy the better one per site).
        let bl = choice.plan(PlanKind::BasicLocalized).unwrap().model_us;
        let pl = choice.plan(PlanKind::ParallelLocalized).unwrap().model_us;
        assert!(hy.model_us <= bl.max(pl) * 1.0001);
    }

    #[test]
    fn allow_hybrid_false_excludes_the_assignment() {
        let (catalog, schema, query) = setup(false);
        let choice = choose(
            &catalog,
            &schema,
            &query,
            &PipelineKnobs::baseline(),
            1,
            false,
        );
        assert_eq!(choice.ranked.len(), 3);
        assert!(choice.plan(PlanKind::Hybrid).is_none());
    }

    #[test]
    fn feedback_overrides_a_wrong_model() {
        let (mut catalog, schema, query) = setup(false);
        let knobs = PipelineKnobs::baseline();
        let cold = choose(&catalog, &schema, &query, &knobs, 9, true);
        let cold_best = cold.best().kind;
        // Feed back measurements saying the model's winner is terrible
        // and CA is nearly free: the ranking must flip to CA.
        for _ in 0..12 {
            catalog.observe_response(9, cold_best.label(), 1e9);
            catalog.observe_response(9, "CA", 1.0);
        }
        let warm = choose(&catalog, &schema, &query, &knobs, 9, true);
        assert_eq!(warm.best().kind, PlanKind::Centralized);
        let flipped = warm.plan(cold_best).unwrap();
        assert!(flipped.confidence > 0.9);
        assert!(flipped.score_us > warm.best().score_us);
        // A different fingerprint is unaffected.
        let other = choose(&catalog, &schema, &query, &knobs, 10, true);
        assert_eq!(other.best().kind, cold_best);
    }

    #[test]
    fn replan_covers_only_unfinished_hosting_sites() {
        let (catalog, schema, query) = setup(true);
        let knobs = PipelineKnobs::baseline();
        // Replanning everything reproduces the full hybrid assignment.
        let all = [DbId::new(0), DbId::new(1)];
        let fresh = replan(&catalog, &schema, &query, &knobs, &all);
        let hy = choose(&catalog, &schema, &query, &knobs, 1, true);
        assert_eq!(fresh, hy.plan(PlanKind::Hybrid).unwrap().modes);
        // A completed site drops out; a site that does not host the
        // query is ignored rather than invented.
        let partial = replan(
            &catalog,
            &schema,
            &query,
            &knobs,
            &[DbId::new(1), DbId::new(9)],
        );
        assert_eq!(partial.len(), 1);
        assert_eq!(partial[0].db, DbId::new(1));
        // DB1 is clean (no nulls, hosts every predicate attribute): the
        // replan keeps it pinned to BL no matter the network price.
        assert!(!partial[0].parallel);
        assert!(replan(&catalog, &schema, &query, &knobs, &[]).is_empty());
    }

    #[test]
    fn replan_reprices_from_midflight_transport_samples() {
        let (mut catalog, schema, query) = setup(true);
        let knobs = PipelineKnobs::baseline();
        let before = replan(&catalog, &schema, &query, &knobs, &[DbId::new(0)]);
        assert_eq!(before.len(), 1);
        // Mid-flight feedback says the link got drastically slower: the
        // replan must price against the observed rate, not the static
        // parameter. Whichever mode wins, the decision is recomputed —
        // assert the observable part: the catalog's link price moved
        // and the assignment is still exactly the unfinished site.
        catalog.observe_net(100, 80_000.0);
        assert!(catalog.net_us_per_byte() > 100.0);
        let after = replan(&catalog, &schema, &query, &knobs, &[DbId::new(0)]);
        assert_eq!(after.len(), 1);
        assert_eq!(after[0].db, DbId::new(0));
    }

    #[test]
    fn warm_cache_knobs_shift_the_ranking_toward_lookup_heavy_plans() {
        let (catalog, schema, query) = setup(true);
        let cold = choose(
            &catalog,
            &schema,
            &query,
            &PipelineKnobs::baseline(),
            1,
            true,
        );
        let warm_knobs = PipelineKnobs {
            warmth: 0.95,
            ..PipelineKnobs::baseline()
        };
        let warm = choose(&catalog, &schema, &query, &warm_knobs, 1, true);
        // Warm lookups make every localized plan cheaper than its cold
        // self; CA's shipping also shrinks but from a different term.
        for kind in [PlanKind::BasicLocalized, PlanKind::ParallelLocalized] {
            let c = cold.plan(kind).unwrap().model_us;
            let w = warm.plan(kind).unwrap().model_us;
            assert!(w <= c, "{kind}: warm {w} vs cold {c}");
        }
    }
}
