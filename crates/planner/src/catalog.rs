//! The statistics catalog: what the planner knows about the federation.
//!
//! [`StatsCatalog::collect`] scans every component database once and
//! records, per site and per global class, the extent cardinality,
//! per-attribute null fractions and availability, a small numeric sketch
//! (min/max/distinct) for selectivity estimation, and the per-class
//! isomeric-overlap counts from the GOid mapping tables. On top of the
//! scanned snapshot the catalog accumulates *observations*: transport
//! cost samples (from the simulation ledger or the `fedoq-net` runtime)
//! and per-query, per-plan response times, both folded in with an
//! exponentially weighted moving average so repeated workloads converge
//! on measured truth even when the scanned statistics go stale.
//!
//! The catalog is stamped with the federation's mutation generation at
//! collection time; [`StatsCatalog::is_stale`] compares it against the
//! current generation (lint `FQ106` warns on planning against a stale
//! catalog).

use fedoq_object::{CmpOp, DbId, GlobalClassId, Value};
use fedoq_schema::{GlobalSchema, GoidCatalog};
use fedoq_sim::SystemParams;
use fedoq_store::ComponentDb;
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// Selectivity assumed when the sketch has nothing to say.
const DEFAULT_SELECTIVITY: f64 = 1.0 / 3.0;

/// Extents at most this large are scanned in full; anything larger is
/// sketched from a deterministic stride sample of [`SAMPLE_TARGET`]
/// objects, making catalog collection O(arity · SAMPLE_TARGET) per
/// constituent instead of O(arity · n) — the difference between seconds
/// and minutes at 10^7 objects.
pub const SAMPLE_THRESHOLD: usize = 65_536;

/// Objects examined per attribute when an extent is sampled. At 8192
/// samples a null-fraction estimate's standard error is below 0.006, and
/// the scale-up distinct estimator stays within the bench-checked 10%
/// band on uniform and key-like columns.
pub const SAMPLE_TARGET: usize = 8_192;

/// An exponentially weighted moving average with a sample counter.
///
/// `confidence()` grows from 0 toward 1 with the number of samples
/// (`1 − (1 − α)^n`), matching the weight the EWMA has actually shifted
/// away from its prior — the planner uses it to blend observed times
/// over model estimates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    mean: f64,
    samples: u64,
}

impl Ewma {
    /// An empty average with smoothing factor `alpha` in `(0, 1]`.
    pub fn new(alpha: f64) -> Ewma {
        Ewma {
            alpha: alpha.clamp(f64::EPSILON, 1.0),
            mean: 0.0,
            samples: 0,
        }
    }

    /// Folds one observation in.
    pub fn observe(&mut self, x: f64) {
        if self.samples == 0 {
            self.mean = x;
        } else {
            self.mean += self.alpha * (x - self.mean);
        }
        self.samples += 1;
    }

    /// The current average (0 before any observation).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Number of observations folded in.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// `true` before the first observation.
    pub fn is_empty(&self) -> bool {
        self.samples == 0
    }

    /// How much weight the observations carry: `1 − (1 − α)^n`.
    pub fn confidence(&self) -> f64 {
        1.0 - (1.0 - self.alpha).powi(self.samples.min(i32::MAX as u64) as i32)
    }
}

/// Statistics of one global attribute at one site's constituent class.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrStats {
    /// Does the constituent define the attribute at all?
    pub present: bool,
    /// Fraction of stored objects whose value is null (1 when absent).
    pub null_fraction: f64,
    /// Smallest numeric value seen, if the attribute is numeric.
    pub min: Option<f64>,
    /// Largest numeric value seen, if the attribute is numeric.
    pub max: Option<f64>,
    /// Distinct non-null values seen.
    pub distinct: usize,
}

impl AttrStats {
    /// Stats of a missing attribute: never evaluable locally.
    pub fn absent() -> AttrStats {
        AttrStats {
            present: false,
            null_fraction: 1.0,
            min: None,
            max: None,
            distinct: 0,
        }
    }

    /// Fraction of objects for which a predicate on this attribute is
    /// unsolved at this site (missing attribute, or stored null).
    pub fn unsolved_fraction(&self) -> f64 {
        if self.present {
            self.null_fraction
        } else {
            1.0
        }
    }

    /// Estimated fraction of objects satisfying `attr op literal`
    /// (evaluating `True`; unknowns never select).
    pub fn selectivity(&self, op: CmpOp, literal: &Value) -> f64 {
        if !self.present {
            return 0.0;
        }
        let eq = || {
            if self.distinct > 0 {
                1.0 / self.distinct as f64
            } else {
                0.0
            }
        };
        let numeric = |x: f64| match (self.min, self.max) {
            (Some(lo), Some(hi)) => {
                let below = if hi > lo {
                    ((x - lo) / (hi - lo)).clamp(0.0, 1.0)
                } else if x > lo {
                    1.0
                } else {
                    0.0
                };
                match op {
                    CmpOp::Eq => eq(),
                    CmpOp::Ne => 1.0 - eq(),
                    CmpOp::Lt | CmpOp::Le => below,
                    CmpOp::Gt | CmpOp::Ge => 1.0 - below,
                }
            }
            _ => DEFAULT_SELECTIVITY,
        };
        let base = match literal {
            Value::Int(i) => numeric(*i as f64),
            Value::Float(f) => numeric(*f),
            Value::Bool(_) => 0.5,
            Value::Text(_) => match op {
                CmpOp::Eq => eq(),
                CmpOp::Ne => 1.0 - eq(),
                _ => DEFAULT_SELECTIVITY,
            },
            _ => DEFAULT_SELECTIVITY,
        };
        (base * (1.0 - self.null_fraction)).clamp(0.0, 1.0)
    }
}

/// Statistics of one global class's constituent at one site.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteClassStats {
    /// Objects in the constituent extent (always exact — counting is
    /// O(1) even when the attribute sketches are sampled).
    pub cardinality: usize,
    /// Per-global-slot attribute statistics.
    pub attrs: Vec<AttrStats>,
    /// Global attributes the constituent does not define.
    pub missing_attrs: usize,
    /// `true` when the attribute sketches were estimated from a stride
    /// sample instead of a full extent scan (see [`SAMPLE_THRESHOLD`]).
    pub sampled: bool,
}

impl SiteClassStats {
    /// The stats of global attribute slot `g`.
    pub fn attr(&self, g: usize) -> &AttrStats {
        &self.attrs[g]
    }
}

/// Everything measured about one component site.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteStats {
    /// The site.
    pub db: DbId,
    /// Its display name.
    pub name: String,
    /// Per-hosted-global-class statistics.
    pub classes: HashMap<GlobalClassId, SiteClassStats>,
    /// Total objects stored at the site.
    pub objects: usize,
}

impl SiteStats {
    /// Stats of the constituent of `class`, if the site hosts one.
    pub fn class(&self, class: GlobalClassId) -> Option<&SiteClassStats> {
        self.classes.get(&class)
    }
}

/// Isomeric-overlap counts of one global class, from its GOid table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassIsoStats {
    /// Distinct real-world entities.
    pub entities: usize,
    /// Entities with at least two isomeric copies.
    pub replicated: usize,
    /// Total local objects across all copies.
    pub copies: usize,
}

impl ClassIsoStats {
    /// `R_iso`: fraction of entities with isomeric copies.
    pub fn iso_ratio(&self) -> f64 {
        if self.entities == 0 {
            0.0
        } else {
            self.replicated as f64 / self.entities as f64
        }
    }

    /// `N_iso`: average copies per *replicated* entity (1 when nothing
    /// is replicated).
    pub fn n_iso(&self) -> f64 {
        if self.replicated == 0 {
            1.0
        } else {
            let singleton = self.entities - self.replicated;
            (self.copies - singleton) as f64 / self.replicated as f64
        }
    }
}

/// The planner's knowledge base: scanned statistics plus observations.
#[derive(Debug, Clone)]
pub struct StatsCatalog {
    generation: u64,
    params: SystemParams,
    alpha: f64,
    sites: Vec<SiteStats>,
    iso: HashMap<GlobalClassId, ClassIsoStats>,
    class_names: HashMap<GlobalClassId, String>,
    net_us_per_byte: Ewma,
    observed: HashMap<(u64, String), Ewma>,
}

impl StatsCatalog {
    /// Default EWMA smoothing factor for observations.
    pub const DEFAULT_ALPHA: f64 = 0.4;

    /// Scans every database and builds a fresh catalog stamped with
    /// `generation` (the federation's mutation generation).
    pub fn collect<'a>(
        dbs: impl IntoIterator<Item = &'a ComponentDb>,
        schema: &GlobalSchema,
        goids: &GoidCatalog,
        generation: u64,
        params: SystemParams,
    ) -> StatsCatalog {
        let mut catalog = StatsCatalog {
            generation,
            params,
            alpha: Self::DEFAULT_ALPHA,
            sites: Vec::new(),
            iso: HashMap::new(),
            class_names: HashMap::new(),
            net_us_per_byte: Ewma::new(Self::DEFAULT_ALPHA),
            observed: HashMap::new(),
        };
        catalog.rescan(dbs, schema, goids, generation);
        catalog
    }

    /// Re-scans the data statistics in place, keeping the transport and
    /// response observations (the feedback loop survives a refresh).
    pub fn rescan<'a>(
        &mut self,
        dbs: impl IntoIterator<Item = &'a ComponentDb>,
        schema: &GlobalSchema,
        goids: &GoidCatalog,
        generation: u64,
    ) {
        self.generation = generation;
        self.sites.clear();
        self.iso.clear();
        self.class_names.clear();
        for db in dbs {
            let mut classes = HashMap::new();
            let mut objects = 0usize;
            for (gid, class) in schema.iter() {
                let Some(constituent) = class.constituent_for(db.id()) else {
                    continue;
                };
                let stats = scan_constituent(db, class.arity(), constituent);
                objects += stats.cardinality;
                classes.insert(gid, stats);
            }
            self.sites.push(SiteStats {
                db: db.id(),
                name: db.name().to_owned(),
                classes,
                objects,
            });
        }
        for (gid, class) in schema.iter() {
            self.class_names.insert(gid, class.name().to_owned());
            let table = goids.table(gid);
            let mut replicated = 0usize;
            let mut copies = 0usize;
            for (_, loids) in table.iter() {
                copies += loids.len();
                if loids.len() > 1 {
                    replicated += 1;
                }
            }
            self.iso.insert(
                gid,
                ClassIsoStats {
                    entities: table.len(),
                    replicated,
                    copies,
                },
            );
        }
    }

    /// The federation generation the data statistics were scanned at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// `true` when the federation has mutated since the last scan.
    pub fn is_stale(&self, fed_generation: u64) -> bool {
        self.generation != fed_generation
    }

    /// The Table-1 unit costs the catalog prices with.
    pub fn params(&self) -> &SystemParams {
        &self.params
    }

    /// Per-site statistics, in collection order.
    pub fn sites(&self) -> &[SiteStats] {
        &self.sites
    }

    /// Statistics of one site.
    pub fn site(&self, db: DbId) -> Option<&SiteStats> {
        self.sites.iter().find(|s| s.db == db)
    }

    /// Isomeric-overlap counts of one global class.
    pub fn class_iso(&self, class: GlobalClassId) -> Option<&ClassIsoStats> {
        self.iso.get(&class)
    }

    /// The transport price in force: the observed per-byte cost when
    /// samples exist, the Table-1 default otherwise.
    pub fn net_us_per_byte(&self) -> f64 {
        if self.net_us_per_byte.is_empty() {
            self.params.net_us_per_byte
        } else {
            self.net_us_per_byte.mean()
        }
    }

    /// Folds one transport sample in: `busy_us` of serialized link time
    /// for `bytes` transferred (from the sim ledger's network resource or
    /// the distributed runtime's clock).
    pub fn observe_net(&mut self, bytes: u64, busy_us: f64) {
        if bytes > 0 && busy_us.is_finite() && busy_us >= 0.0 {
            self.net_us_per_byte.observe(busy_us / bytes as f64);
        }
    }

    /// Folds one measured response time in for `(fingerprint, plan)`.
    pub fn observe_response(&mut self, fingerprint: u64, plan: &str, response_us: f64) {
        self.observed
            .entry((fingerprint, plan.to_owned()))
            .or_insert_with(|| Ewma::new(self.alpha))
            .observe(response_us);
    }

    /// The observed `(mean response µs, confidence)` for
    /// `(fingerprint, plan)`, if any execution has been fed back.
    pub fn observed_response(&self, fingerprint: u64, plan: &str) -> Option<(f64, f64)> {
        self.observed
            .get(&(fingerprint, plan.to_owned()))
            .filter(|e| !e.is_empty())
            .map(|e| (e.mean(), e.confidence()))
    }

    /// Number of `(query, plan)` pairs with feedback.
    pub fn observed_len(&self) -> usize {
        self.observed.len()
    }

    /// A human-readable dump for the shell's `stats` command.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "stats catalog @ generation {} ({} sites, net {:.2} µs/B{})",
            self.generation,
            self.sites.len(),
            self.net_us_per_byte(),
            if self.net_us_per_byte.is_empty() {
                " default"
            } else {
                " observed"
            }
        );
        for site in &self.sites {
            let _ = writeln!(out, "  {} — {} objects", site.name, site.objects);
            let mut classes: Vec<_> = site.classes.iter().collect();
            classes.sort_by_key(|(gid, _)| *gid);
            for (gid, stats) in classes {
                let unknown = String::from("?");
                let name = self.class_names.get(gid).unwrap_or(&unknown);
                let worst_null = stats
                    .attrs
                    .iter()
                    .filter(|a| a.present)
                    .map(|a| a.null_fraction)
                    .fold(0.0f64, f64::max);
                let iso = self.iso.get(gid).copied().unwrap_or(ClassIsoStats {
                    entities: 0,
                    replicated: 0,
                    copies: 0,
                });
                let _ = writeln!(
                    out,
                    "    {}: {} objects, {} missing attrs, worst null {:.0}%, R_iso {:.2}, N_iso {:.1}",
                    name,
                    stats.cardinality,
                    stats.missing_attrs,
                    worst_null * 100.0,
                    iso.iso_ratio(),
                    iso.n_iso()
                );
            }
        }
        let _ = writeln!(
            out,
            "  feedback: {} (query, plan) pairs observed",
            self.observed.len()
        );
        out
    }
}

/// Scans one constituent extent into per-attribute statistics. Extents
/// past [`SAMPLE_THRESHOLD`] are sketched from a deterministic stride
/// sample; everything below it is scanned exactly.
fn scan_constituent(
    db: &ComponentDb,
    arity: usize,
    constituent: &fedoq_schema::Constituent,
) -> SiteClassStats {
    let extent = db.extent(constituent.class());
    let count = extent.len();
    let sampled = count > SAMPLE_THRESHOLD;
    // A deterministic stride keeps the estimate reproducible run to run
    // and unbiased under any insertion-order-correlated skew milder than
    // perfect stride-aligned periodicity.
    let stride = if sampled {
        count.div_ceil(SAMPLE_TARGET)
    } else {
        1
    };
    let mut attrs = Vec::with_capacity(arity);
    let mut missing_attrs = 0usize;
    for g in 0..arity {
        let Some(slot) = constituent.local_slot(g) else {
            missing_attrs += 1;
            attrs.push(AttrStats::absent());
            continue;
        };
        let mut seen = 0usize;
        let mut nulls = 0usize;
        let mut min = None;
        let mut max = None;
        let mut distinct: HashSet<u64> = HashSet::new();
        for object in extent.objects().iter().step_by(stride) {
            seen += 1;
            let value = object.value(slot);
            if value.is_null() {
                nulls += 1;
                continue;
            }
            distinct.insert(value_key(value));
            if let Some(x) = numeric(value) {
                min = Some(min.map_or(x, |m: f64| m.min(x)));
                max = Some(max.map_or(x, |m: f64| m.max(x)));
            }
        }
        attrs.push(AttrStats {
            present: true,
            null_fraction: if seen == 0 {
                0.0
            } else {
                nulls as f64 / seen as f64
            },
            min,
            max,
            distinct: estimate_distinct(distinct.len(), seen, count),
        });
    }
    SiteClassStats {
        cardinality: count,
        attrs,
        missing_attrs,
        sampled,
    }
}

/// Scales a sample's distinct count up to the extent.
///
/// When nearly every sampled value is distinct (a key-like column), the
/// unsampled rows almost certainly keep introducing fresh values, so the
/// sample ratio extrapolates linearly; otherwise the column's domain is
/// small and the sample has already seen most of it, so the sample count
/// stands. Either way the estimate is capped by the extent size.
fn estimate_distinct(sample_distinct: usize, sample_size: usize, total: usize) -> usize {
    if sample_size == 0 || sample_size >= total {
        return sample_distinct;
    }
    let scaled = if (sample_distinct as f64) >= 0.95 * sample_size as f64 {
        (sample_distinct as f64 * total as f64 / sample_size as f64).round() as usize
    } else {
        sample_distinct
    };
    scaled.min(total)
}

/// Numeric view of a value, for the min/max sketch.
fn numeric(value: &Value) -> Option<f64> {
    match value {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// A hashable canonical key for distinct-counting heterogeneous values.
fn value_key(value: &Value) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    match value {
        Value::Null => 0u8.hash(&mut h),
        Value::Int(i) => (1u8, i).hash(&mut h),
        Value::Float(f) => (2u8, f.to_bits()).hash(&mut h),
        Value::Text(s) => (3u8, s).hash(&mut h),
        Value::Bool(b) => (4u8, b).hash(&mut h),
        Value::Ref(l) => (5u8, format!("{l:?}")).hash(&mut h),
        Value::GRef(g) => (6u8, format!("{g:?}")).hash(&mut h),
        Value::List(vs) => {
            (7u8, vs.len()).hash(&mut h);
            for v in vs {
                value_key(v).hash(&mut h);
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedoq_schema::{identify_isomerism, integrate, Correspondences};
    use fedoq_store::{AttrType, ClassDef, ComponentSchema};

    fn two_site_setup() -> (Vec<ComponentDb>, GlobalSchema, GoidCatalog) {
        let s0 = ComponentSchema::new(vec![ClassDef::new("Student")
            .attr("s-no", AttrType::int())
            .attr("age", AttrType::int())
            .key(["s-no"])])
        .unwrap();
        let s1 = ComponentSchema::new(vec![ClassDef::new("Student")
            .attr("s-no", AttrType::int())
            .key(["s-no"])])
        .unwrap();
        let mut db0 = ComponentDb::new(DbId::new(0), "DB0", s0);
        let mut db1 = ComponentDb::new(DbId::new(1), "DB1", s1);
        for i in 0..10 {
            let age = if i % 5 == 0 {
                Value::Null
            } else {
                Value::Int(20 + i)
            };
            db0.insert_named("Student", &[("s-no", Value::Int(i)), ("age", age)])
                .unwrap();
        }
        for i in 0..4 {
            db1.insert_named("Student", &[("s-no", Value::Int(i))])
                .unwrap();
        }
        let schema = integrate(
            &[(db0.id(), db0.schema()), (db1.id(), db1.schema())],
            &Correspondences::new(),
        )
        .unwrap();
        let goids = identify_isomerism(&[&db0, &db1], &schema).unwrap();
        (vec![db0, db1], schema, goids)
    }

    fn catalog() -> (StatsCatalog, GlobalSchema) {
        let (dbs, schema, goids) = two_site_setup();
        let c = StatsCatalog::collect(
            dbs.iter(),
            &schema,
            &goids,
            7,
            SystemParams::paper_default(),
        );
        (c, schema)
    }

    #[test]
    fn collect_measures_cardinality_nulls_and_availability() {
        let (c, schema) = catalog();
        let student = schema.class_id("Student").unwrap();
        let age = schema.class(student).attr_index("age").unwrap();
        let db0 = c.site(DbId::new(0)).unwrap().class(student).unwrap();
        let db1 = c.site(DbId::new(1)).unwrap().class(student).unwrap();
        assert_eq!(db0.cardinality, 10);
        assert_eq!(db1.cardinality, 4);
        // age: 2 of 10 null at DB0; missing entirely at DB1.
        assert!((db0.attr(age).null_fraction - 0.2).abs() < 1e-9);
        assert!(db0.attr(age).present);
        assert!(!db1.attr(age).present);
        assert_eq!(db1.attr(age).unsolved_fraction(), 1.0);
        assert_eq!(db1.missing_attrs, 1);
        // The numeric sketch saw ages 21..29 minus the nulls.
        assert_eq!(db0.attr(age).min, Some(21.0));
        assert_eq!(db0.attr(age).max, Some(29.0));
        assert_eq!(db0.attr(age).distinct, 8);
    }

    #[test]
    fn iso_stats_come_from_the_goid_tables() {
        let (c, schema) = catalog();
        let student = schema.class_id("Student").unwrap();
        let iso = c.class_iso(student).unwrap();
        // 10 entities; s-no 0..3 replicated at DB1.
        assert_eq!(iso.entities, 10);
        assert_eq!(iso.replicated, 4);
        assert_eq!(iso.copies, 14);
        assert!((iso.iso_ratio() - 0.4).abs() < 1e-9);
        assert!((iso.n_iso() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn selectivity_uses_the_sketch_and_null_fraction() {
        let (c, schema) = catalog();
        let student = schema.class_id("Student").unwrap();
        let age = schema.class(student).attr_index("age").unwrap();
        let stats = c.site(DbId::new(0)).unwrap().class(student).unwrap();
        let a = stats.attr(age);
        // age >= 21 selects everything non-null: 0.8.
        let high = a.selectivity(CmpOp::Ge, &Value::Int(21));
        assert!((high - 0.8).abs() < 1e-9);
        // age < 21 selects nothing.
        assert_eq!(a.selectivity(CmpOp::Lt, &Value::Int(21)), 0.0);
        // Equality uses the distinct count.
        let eq = a.selectivity(CmpOp::Eq, &Value::Int(25));
        assert!((eq - 0.8 / 8.0).abs() < 1e-9);
        // A missing attribute never selects.
        let absent = c
            .site(DbId::new(1))
            .unwrap()
            .class(student)
            .unwrap()
            .attr(age);
        assert_eq!(absent.selectivity(CmpOp::Ge, &Value::Int(0)), 0.0);
    }

    #[test]
    fn large_extents_are_sampled_within_error_bounds() {
        const N: usize = 70_000; // past SAMPLE_THRESHOLD
        let s0 = ComponentSchema::new(vec![ClassDef::new("Student")
            .attr("s-no", AttrType::int())
            .attr("age", AttrType::int())
            .key(["s-no"])])
        .unwrap();
        let mut db0 = ComponentDb::new(DbId::new(0), "DB0", s0);
        for i in 0..N as i64 {
            let age = if i % 10 == 0 {
                Value::Null
            } else {
                Value::Int(i % 50)
            };
            db0.insert_named("Student", &[("s-no", Value::Int(i)), ("age", age)])
                .unwrap();
        }
        let schema = integrate(&[(db0.id(), db0.schema())], &Correspondences::new()).unwrap();
        let goids = identify_isomerism(&[&db0], &schema).unwrap();
        let c = StatsCatalog::collect([&db0], &schema, &goids, 0, SystemParams::paper_default());
        let student = schema.class_id("Student").unwrap();
        let stats = c.site(DbId::new(0)).unwrap().class(student).unwrap();
        assert!(stats.sampled);
        // Cardinality stays exact even under sampling.
        assert_eq!(stats.cardinality, N);
        let sno = schema.class(student).attr_index("s-no").unwrap();
        let age = schema.class(student).attr_index("age").unwrap();
        // Key-like column: the scale-up estimator lands within 10%.
        let d = stats.attr(sno).distinct as f64;
        assert!(
            (d - N as f64).abs() / N as f64 <= 0.10,
            "distinct estimate {d} strays more than 10% from {N}"
        );
        // Small-domain column: the sample has seen the whole domain.
        let d = stats.attr(age).distinct;
        assert!((45..=50).contains(&d), "age distinct estimate {d}");
        // Null fraction within two points of the true 10%.
        assert!((stats.attr(age).null_fraction - 0.1).abs() < 0.02);
        // Small extents keep exact statistics.
        let (small, schema2) = catalog();
        let student2 = schema2.class_id("Student").unwrap();
        assert!(
            !small
                .site(DbId::new(0))
                .unwrap()
                .class(student2)
                .unwrap()
                .sampled
        );
    }

    #[test]
    fn staleness_tracks_the_generation_stamp() {
        let (mut c, schema) = catalog();
        assert_eq!(c.generation(), 7);
        assert!(!c.is_stale(7));
        assert!(c.is_stale(8));
        // A rescan clears staleness but keeps observations.
        c.observe_response(99, "CA", 1000.0);
        let (dbs, schema2, goids) = two_site_setup();
        assert_eq!(schema.len(), schema2.len());
        c.rescan(dbs.iter(), &schema2, &goids, 8);
        assert!(!c.is_stale(8));
        assert!(c.observed_response(99, "CA").is_some());
    }

    #[test]
    fn ewma_feedback_converges_and_reports_confidence() {
        let mut e = Ewma::new(0.5);
        assert!(e.is_empty());
        assert_eq!(e.confidence(), 0.0);
        e.observe(100.0);
        assert_eq!(e.mean(), 100.0);
        for _ in 0..20 {
            e.observe(10.0);
        }
        assert!((e.mean() - 10.0).abs() < 1.0);
        assert!(e.confidence() > 0.99);

        let mut c = catalog().0;
        c.observe_response(42, "BL", 500.0);
        c.observe_response(42, "BL", 300.0);
        let (mean, conf) = c.observed_response(42, "BL").unwrap();
        assert!(mean < 500.0 && mean > 300.0);
        assert!(conf > 0.0 && conf < 1.0);
        assert!(c.observed_response(42, "PL").is_none());
        assert_eq!(c.observed_len(), 1);
    }

    #[test]
    fn net_observations_override_the_default() {
        let mut c = catalog().0;
        assert_eq!(c.net_us_per_byte(), 8.0);
        c.observe_net(1000, 16_000.0);
        assert!((c.net_us_per_byte() - 16.0).abs() < 1e-9);
        // Zero-byte and garbage samples are ignored.
        c.observe_net(0, 5.0);
        c.observe_net(10, f64::NAN);
        assert!((c.net_us_per_byte() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn summary_mentions_sites_classes_and_feedback() {
        let (c, _) = catalog();
        let s = c.summary();
        assert!(s.contains("generation 7"));
        assert!(s.contains("DB0"));
        assert!(s.contains("Student"));
        assert!(s.contains("feedback: 0"));
    }
}
