//! Global-schema construction.
//!
//! Integration follows the paper's model: component classes asserted to be
//! semantically equivalent (same global name under the
//! [`Correspondences`]) become one global class whose attribute set is the
//! **union** of the constituents' attributes. Complex attributes are
//! re-pointed at the global class their domain integrates into. The
//! per-constituent attribute map records missing attributes.

use crate::correspondence::Correspondences;
use crate::error::SchemaError;
use crate::global::{Constituent, GlobalAttr, GlobalAttrType, GlobalClass, GlobalSchema};
use fedoq_object::{DbId, GlobalClassId};
use fedoq_store::{AttrType, ComponentSchema};
use std::collections::HashMap;

/// Integrates component schemas into a global schema.
///
/// Global classes appear in first-encounter order over the input; global
/// attributes appear in first-encounter order over each class's
/// constituents. Multi-valued attributes integrate as their element type
/// (the global schema only needs the navigation structure).
///
/// # Errors
///
/// * [`SchemaError::TypeConflict`] — constituents disagree on an
///   attribute's primitive type, or mix primitive with complex;
/// * [`SchemaError::DomainConflict`] — corresponding complex attributes
///   whose domains integrate into different global classes.
///
/// # Example
///
/// See the crate-level example.
pub fn integrate(
    schemas: &[(DbId, &ComponentSchema)],
    corr: &Correspondences,
) -> Result<GlobalSchema, SchemaError> {
    // Pass 1: discover global class names and their constituents.
    let mut order: Vec<String> = Vec::new();
    let mut by_name: HashMap<String, GlobalClassId> = HashMap::new();
    for (db, schema) in schemas {
        for (_, class) in schema.iter() {
            let gname = corr.global_class(*db, class.name());
            if !by_name.contains_key(gname) {
                by_name.insert(gname.to_owned(), GlobalClassId::new(order.len() as u32));
                order.push(gname.to_owned());
            }
        }
    }

    // Pass 2: build each global class.
    // (db, component class id, component class name, (global slot, local slot) pairs)
    type PendingConstituent = (DbId, fedoq_object::ClassId, String, Vec<(usize, usize)>);
    let mut classes = Vec::with_capacity(order.len());
    for gname in &order {
        let mut attrs: Vec<GlobalAttr> = Vec::new();
        let mut attr_slots: HashMap<String, usize> = HashMap::new();
        let mut constituents: Vec<PendingConstituent> = Vec::new();

        for (db, schema) in schemas {
            for (class_id, class) in schema.iter() {
                if corr.global_class(*db, class.name()) != gname.as_str() {
                    continue;
                }
                let mut pairs = Vec::with_capacity(class.arity());
                for (local_slot, attr) in class.attrs().iter().enumerate() {
                    let ganame = corr.global_attr(*db, class.name(), attr.name());
                    let gty = resolve_type(*db, attr.ty(), corr, &by_name);
                    let gslot = match attr_slots.get(ganame) {
                        Some(&slot) => {
                            check_compatible(gname, ganame, attrs[slot].ty(), gty)?;
                            slot
                        }
                        None => {
                            let slot = attrs.len();
                            attrs.push(GlobalAttr::new(ganame, gty));
                            attr_slots.insert(ganame.to_owned(), slot);
                            slot
                        }
                    };
                    pairs.push((gslot, local_slot));
                }
                constituents.push((*db, class_id, class.name().to_owned(), pairs));
            }
        }

        let arity = attrs.len();
        let constituents = constituents
            .into_iter()
            .map(|(db, class_id, class_name, pairs)| {
                let mut map = vec![None; arity];
                for (g, l) in pairs {
                    map[g] = Some(l);
                }
                Constituent::new(db, class_id, class_name, map)
            })
            .collect();
        classes.push(GlobalClass::new(gname.clone(), attrs, constituents));
    }

    Ok(GlobalSchema::new(classes))
}

/// Resolves a component attribute type to a global one. `Multi` resolves
/// to its element type; complex domains resolve through the class
/// correspondence.
fn resolve_type(
    db: DbId,
    ty: &AttrType,
    corr: &Correspondences,
    by_name: &HashMap<String, GlobalClassId>,
) -> GlobalAttrType {
    match ty {
        AttrType::Primitive(p) => GlobalAttrType::Primitive(*p),
        AttrType::Complex(domain) => {
            let gdomain = corr.global_class(db, domain);
            // The domain class exists in the same validated component
            // schema, so its global class was discovered in pass 1.
            GlobalAttrType::Complex(by_name[gdomain])
        }
        AttrType::Multi(inner) => resolve_type(db, inner, corr, by_name),
    }
}

fn check_compatible(
    class: &str,
    attr: &str,
    existing: GlobalAttrType,
    new: GlobalAttrType,
) -> Result<(), SchemaError> {
    match (existing, new) {
        (GlobalAttrType::Primitive(a), GlobalAttrType::Primitive(b)) if a == b => Ok(()),
        (GlobalAttrType::Complex(a), GlobalAttrType::Complex(b)) if a == b => Ok(()),
        (GlobalAttrType::Complex(_), GlobalAttrType::Complex(_)) => {
            Err(SchemaError::DomainConflict {
                class: class.to_owned(),
                attr: attr.to_owned(),
            })
        }
        _ => Err(SchemaError::TypeConflict {
            class: class.to_owned(),
            attr: attr.to_owned(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedoq_store::{ClassDef, PrimitiveType, StoreError};

    type TestResult = Result<(), Box<dyn std::error::Error>>;

    fn db0() -> Result<ComponentSchema, StoreError> {
        ComponentSchema::new(vec![
            ClassDef::new("Department").attr("name", AttrType::text()),
            ClassDef::new("Teacher")
                .attr("name", AttrType::text())
                .attr("department", AttrType::complex("Department")),
            ClassDef::new("Student")
                .attr("s-no", AttrType::int())
                .attr("name", AttrType::text())
                .attr("age", AttrType::int())
                .attr("advisor", AttrType::complex("Teacher")),
        ])
    }

    fn db1() -> Result<ComponentSchema, StoreError> {
        ComponentSchema::new(vec![
            ClassDef::new("Address").attr("city", AttrType::text()),
            ClassDef::new("Teacher")
                .attr("name", AttrType::text())
                .attr("speciality", AttrType::text()),
            ClassDef::new("Student")
                .attr("s-no", AttrType::int())
                .attr("name", AttrType::text())
                .attr("address", AttrType::complex("Address"))
                .attr("advisor", AttrType::complex("Teacher")),
        ])
    }

    fn class<'a>(g: &'a GlobalSchema, name: &str) -> Result<&'a GlobalClass, String> {
        g.class_by_name(name)
            .ok_or_else(|| format!("no global class {name}"))
    }

    fn slot(class: &GlobalClass, attr: &str) -> Result<usize, String> {
        class
            .attr_index(attr)
            .ok_or_else(|| format!("no attr {attr}"))
    }

    fn constituent(class: &GlobalClass, db: DbId) -> Result<&Constituent, String> {
        class
            .constituent_for(db)
            .ok_or_else(|| format!("no constituent for {db}"))
    }

    #[test]
    fn union_of_attributes() -> TestResult {
        let (a, b) = (db0()?, db1()?);
        let g = integrate(
            &[(DbId::new(0), &a), (DbId::new(1), &b)],
            &Correspondences::new(),
        )?;
        let student = class(&g, "Student")?;
        let names: Vec<&str> = student.attrs().iter().map(GlobalAttr::name).collect();
        assert_eq!(names, ["s-no", "name", "age", "advisor", "address"]);
        let teacher = class(&g, "Teacher")?;
        let names: Vec<&str> = teacher.attrs().iter().map(GlobalAttr::name).collect();
        assert_eq!(names, ["name", "department", "speciality"]);
        Ok(())
    }

    #[test]
    fn missing_attributes_recorded_per_constituent() -> TestResult {
        let (a, b) = (db0()?, db1()?);
        let g = integrate(
            &[(DbId::new(0), &a), (DbId::new(1), &b)],
            &Correspondences::new(),
        )?;
        let student = class(&g, "Student")?;
        let address = slot(student, "address")?;
        let age = slot(student, "age")?;
        assert!(constituent(student, DbId::new(0))?.is_missing(address));
        assert!(!constituent(student, DbId::new(0))?.is_missing(age));
        assert!(constituent(student, DbId::new(1))?.is_missing(age));
        Ok(())
    }

    #[test]
    fn complex_domains_resolve_to_global_classes() -> TestResult {
        let (a, b) = (db0()?, db1()?);
        let g = integrate(
            &[(DbId::new(0), &a), (DbId::new(1), &b)],
            &Correspondences::new(),
        )?;
        let student = class(&g, "Student")?;
        let advisor = student.attr(slot(student, "advisor")?);
        assert_eq!(advisor.ty().domain(), g.class_id("Teacher"));
        let address = student.attr(slot(student, "address")?);
        assert_eq!(address.ty().domain(), g.class_id("Address"));
        Ok(())
    }

    #[test]
    fn correspondences_rename_classes_and_attrs() -> TestResult {
        let a = ComponentSchema::new(vec![ClassDef::new("Emp").attr("nm", AttrType::text())])?;
        let b = ComponentSchema::new(vec![ClassDef::new("Employee")
            .attr("name", AttrType::text())
            .attr("salary", AttrType::int())])?;
        let corr = Correspondences::new()
            .map_class(DbId::new(0), "Emp", "Employee")
            .map_attr(DbId::new(0), "Emp", "nm", "name");
        let g = integrate(&[(DbId::new(0), &a), (DbId::new(1), &b)], &corr)?;
        assert_eq!(g.len(), 1);
        let emp = class(&g, "Employee")?;
        assert_eq!(emp.arity(), 2);
        assert_eq!(emp.constituents().len(), 2);
        let c0 = constituent(emp, DbId::new(0))?;
        assert_eq!(c0.local_slot(slot(emp, "name")?), Some(0));
        assert!(c0.is_missing(slot(emp, "salary")?));
        Ok(())
    }

    #[test]
    fn type_conflict_detected() -> TestResult {
        let a = ComponentSchema::new(vec![ClassDef::new("X").attr("v", AttrType::int())])?;
        let b = ComponentSchema::new(vec![ClassDef::new("X").attr("v", AttrType::text())])?;
        let err = integrate(
            &[(DbId::new(0), &a), (DbId::new(1), &b)],
            &Correspondences::new(),
        )
        .err();
        assert_eq!(
            err,
            Some(SchemaError::TypeConflict {
                class: "X".into(),
                attr: "v".into()
            })
        );
        Ok(())
    }

    #[test]
    fn primitive_vs_complex_conflict_detected() -> TestResult {
        let a = ComponentSchema::new(vec![
            ClassDef::new("D"),
            ClassDef::new("X").attr("v", AttrType::complex("D")),
        ])?;
        let b = ComponentSchema::new(vec![ClassDef::new("X").attr("v", AttrType::int())])?;
        let err = integrate(
            &[(DbId::new(0), &a), (DbId::new(1), &b)],
            &Correspondences::new(),
        )
        .err();
        assert!(matches!(err, Some(SchemaError::TypeConflict { .. })));
        Ok(())
    }

    #[test]
    fn domain_conflict_detected() -> TestResult {
        let a = ComponentSchema::new(vec![
            ClassDef::new("D1"),
            ClassDef::new("X").attr("v", AttrType::complex("D1")),
        ])?;
        let b = ComponentSchema::new(vec![
            ClassDef::new("D2"),
            ClassDef::new("X").attr("v", AttrType::complex("D2")),
        ])?;
        let err = integrate(
            &[(DbId::new(0), &a), (DbId::new(1), &b)],
            &Correspondences::new(),
        )
        .err();
        assert_eq!(
            err,
            Some(SchemaError::DomainConflict {
                class: "X".into(),
                attr: "v".into()
            })
        );
        Ok(())
    }

    #[test]
    fn multi_valued_integrates_as_element_type() -> TestResult {
        let a = ComponentSchema::new(vec![
            ClassDef::new("Topic"),
            ClassDef::new("T").attr(
                "topics",
                AttrType::Multi(Box::new(AttrType::complex("Topic"))),
            ),
        ])?;
        let g = integrate(&[(DbId::new(0), &a)], &Correspondences::new())?;
        let t = class(&g, "T")?;
        assert_eq!(t.attr(0).ty().domain(), g.class_id("Topic"));
        Ok(())
    }

    #[test]
    fn matching_primitive_types_merge() -> TestResult {
        let a = ComponentSchema::new(vec![ClassDef::new("X").attr("v", AttrType::int())])?;
        let b = ComponentSchema::new(vec![ClassDef::new("X").attr("v", AttrType::int())])?;
        let g = integrate(
            &[(DbId::new(0), &a), (DbId::new(1), &b)],
            &Correspondences::new(),
        )?;
        let x = class(&g, "X")?;
        assert_eq!(x.arity(), 1);
        assert_eq!(
            x.attr(0).ty(),
            GlobalAttrType::Primitive(PrimitiveType::Int)
        );
        Ok(())
    }

    #[test]
    fn single_database_integration_is_identity_like() -> TestResult {
        let a = db0()?;
        let g = integrate(&[(DbId::new(0), &a)], &Correspondences::new())?;
        assert_eq!(g.len(), 3);
        let student = class(&g, "Student")?;
        assert_eq!(student.arity(), 4);
        assert!(constituent(student, DbId::new(0))?
            .missing_attrs()
            .next()
            .is_none());
        Ok(())
    }
}
