//! Global-schema construction.
//!
//! Integration follows the paper's model: component classes asserted to be
//! semantically equivalent (same global name under the
//! [`Correspondences`]) become one global class whose attribute set is the
//! **union** of the constituents' attributes. Complex attributes are
//! re-pointed at the global class their domain integrates into. The
//! per-constituent attribute map records missing attributes.

use crate::correspondence::Correspondences;
use crate::error::SchemaError;
use crate::global::{Constituent, GlobalAttr, GlobalAttrType, GlobalClass, GlobalSchema};
use fedoq_object::{DbId, GlobalClassId};
use fedoq_store::{AttrType, ComponentSchema};
use std::collections::HashMap;

/// Integrates component schemas into a global schema.
///
/// Global classes appear in first-encounter order over the input; global
/// attributes appear in first-encounter order over each class's
/// constituents. Multi-valued attributes integrate as their element type
/// (the global schema only needs the navigation structure).
///
/// # Errors
///
/// * [`SchemaError::TypeConflict`] — constituents disagree on an
///   attribute's primitive type, or mix primitive with complex;
/// * [`SchemaError::DomainConflict`] — corresponding complex attributes
///   whose domains integrate into different global classes.
///
/// # Example
///
/// See the crate-level example.
pub fn integrate(
    schemas: &[(DbId, &ComponentSchema)],
    corr: &Correspondences,
) -> Result<GlobalSchema, SchemaError> {
    // Pass 1: discover global class names and their constituents.
    let mut order: Vec<String> = Vec::new();
    let mut by_name: HashMap<String, GlobalClassId> = HashMap::new();
    for (db, schema) in schemas {
        for (_, class) in schema.iter() {
            let gname = corr.global_class(*db, class.name());
            if !by_name.contains_key(gname) {
                by_name.insert(gname.to_owned(), GlobalClassId::new(order.len() as u32));
                order.push(gname.to_owned());
            }
        }
    }

    // Pass 2: build each global class.
    // (db, component class id, component class name, (global slot, local slot) pairs)
    type PendingConstituent = (DbId, fedoq_object::ClassId, String, Vec<(usize, usize)>);
    let mut classes = Vec::with_capacity(order.len());
    for gname in &order {
        let mut attrs: Vec<GlobalAttr> = Vec::new();
        let mut attr_slots: HashMap<String, usize> = HashMap::new();
        let mut constituents: Vec<PendingConstituent> = Vec::new();

        for (db, schema) in schemas {
            for (class_id, class) in schema.iter() {
                if corr.global_class(*db, class.name()) != gname.as_str() {
                    continue;
                }
                let mut pairs = Vec::with_capacity(class.arity());
                for (local_slot, attr) in class.attrs().iter().enumerate() {
                    let ganame = corr.global_attr(*db, class.name(), attr.name());
                    let gty = resolve_type(*db, attr.ty(), corr, &by_name);
                    let gslot = match attr_slots.get(ganame) {
                        Some(&slot) => {
                            check_compatible(gname, ganame, attrs[slot].ty(), gty)?;
                            slot
                        }
                        None => {
                            let slot = attrs.len();
                            attrs.push(GlobalAttr::new(ganame, gty));
                            attr_slots.insert(ganame.to_owned(), slot);
                            slot
                        }
                    };
                    pairs.push((gslot, local_slot));
                }
                constituents.push((*db, class_id, class.name().to_owned(), pairs));
            }
        }

        let arity = attrs.len();
        let constituents = constituents
            .into_iter()
            .map(|(db, class_id, class_name, pairs)| {
                let mut map = vec![None; arity];
                for (g, l) in pairs {
                    map[g] = Some(l);
                }
                Constituent::new(db, class_id, class_name, map)
            })
            .collect();
        classes.push(GlobalClass::new(gname.clone(), attrs, constituents));
    }

    Ok(GlobalSchema::new(classes))
}

/// Resolves a component attribute type to a global one. `Multi` resolves
/// to its element type; complex domains resolve through the class
/// correspondence.
fn resolve_type(
    db: DbId,
    ty: &AttrType,
    corr: &Correspondences,
    by_name: &HashMap<String, GlobalClassId>,
) -> GlobalAttrType {
    match ty {
        AttrType::Primitive(p) => GlobalAttrType::Primitive(*p),
        AttrType::Complex(domain) => {
            let gdomain = corr.global_class(db, domain);
            // The domain class exists in the same validated component
            // schema, so its global class was discovered in pass 1.
            GlobalAttrType::Complex(by_name[gdomain])
        }
        AttrType::Multi(inner) => resolve_type(db, inner, corr, by_name),
    }
}

fn check_compatible(
    class: &str,
    attr: &str,
    existing: GlobalAttrType,
    new: GlobalAttrType,
) -> Result<(), SchemaError> {
    match (existing, new) {
        (GlobalAttrType::Primitive(a), GlobalAttrType::Primitive(b)) if a == b => Ok(()),
        (GlobalAttrType::Complex(a), GlobalAttrType::Complex(b)) if a == b => Ok(()),
        (GlobalAttrType::Complex(_), GlobalAttrType::Complex(_)) => {
            Err(SchemaError::DomainConflict {
                class: class.to_owned(),
                attr: attr.to_owned(),
            })
        }
        _ => Err(SchemaError::TypeConflict {
            class: class.to_owned(),
            attr: attr.to_owned(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedoq_store::{ClassDef, PrimitiveType};

    fn db0() -> ComponentSchema {
        ComponentSchema::new(vec![
            ClassDef::new("Department").attr("name", AttrType::text()),
            ClassDef::new("Teacher")
                .attr("name", AttrType::text())
                .attr("department", AttrType::complex("Department")),
            ClassDef::new("Student")
                .attr("s-no", AttrType::int())
                .attr("name", AttrType::text())
                .attr("age", AttrType::int())
                .attr("advisor", AttrType::complex("Teacher")),
        ])
        .unwrap()
    }

    fn db1() -> ComponentSchema {
        ComponentSchema::new(vec![
            ClassDef::new("Address").attr("city", AttrType::text()),
            ClassDef::new("Teacher")
                .attr("name", AttrType::text())
                .attr("speciality", AttrType::text()),
            ClassDef::new("Student")
                .attr("s-no", AttrType::int())
                .attr("name", AttrType::text())
                .attr("address", AttrType::complex("Address"))
                .attr("advisor", AttrType::complex("Teacher")),
        ])
        .unwrap()
    }

    #[test]
    fn union_of_attributes() {
        let (a, b) = (db0(), db1());
        let g = integrate(
            &[(DbId::new(0), &a), (DbId::new(1), &b)],
            &Correspondences::new(),
        )
        .unwrap();
        let student = g.class_by_name("Student").unwrap();
        let names: Vec<&str> = student.attrs().iter().map(GlobalAttr::name).collect();
        assert_eq!(names, ["s-no", "name", "age", "advisor", "address"]);
        let teacher = g.class_by_name("Teacher").unwrap();
        let names: Vec<&str> = teacher.attrs().iter().map(GlobalAttr::name).collect();
        assert_eq!(names, ["name", "department", "speciality"]);
    }

    #[test]
    fn missing_attributes_recorded_per_constituent() {
        let (a, b) = (db0(), db1());
        let g = integrate(
            &[(DbId::new(0), &a), (DbId::new(1), &b)],
            &Correspondences::new(),
        )
        .unwrap();
        let student = g.class_by_name("Student").unwrap();
        let address = student.attr_index("address").unwrap();
        let age = student.attr_index("age").unwrap();
        assert!(student
            .constituent_for(DbId::new(0))
            .unwrap()
            .is_missing(address));
        assert!(!student
            .constituent_for(DbId::new(0))
            .unwrap()
            .is_missing(age));
        assert!(student
            .constituent_for(DbId::new(1))
            .unwrap()
            .is_missing(age));
    }

    #[test]
    fn complex_domains_resolve_to_global_classes() {
        let (a, b) = (db0(), db1());
        let g = integrate(
            &[(DbId::new(0), &a), (DbId::new(1), &b)],
            &Correspondences::new(),
        )
        .unwrap();
        let student = g.class_by_name("Student").unwrap();
        let advisor = student.attr(student.attr_index("advisor").unwrap());
        assert_eq!(advisor.ty().domain(), g.class_id("Teacher"));
        let address = student.attr(student.attr_index("address").unwrap());
        assert_eq!(address.ty().domain(), g.class_id("Address"));
    }

    #[test]
    fn correspondences_rename_classes_and_attrs() {
        let a =
            ComponentSchema::new(vec![ClassDef::new("Emp").attr("nm", AttrType::text())]).unwrap();
        let b = ComponentSchema::new(vec![ClassDef::new("Employee")
            .attr("name", AttrType::text())
            .attr("salary", AttrType::int())])
        .unwrap();
        let corr = Correspondences::new()
            .map_class(DbId::new(0), "Emp", "Employee")
            .map_attr(DbId::new(0), "Emp", "nm", "name");
        let g = integrate(&[(DbId::new(0), &a), (DbId::new(1), &b)], &corr).unwrap();
        assert_eq!(g.len(), 1);
        let emp = g.class_by_name("Employee").unwrap();
        assert_eq!(emp.arity(), 2);
        assert_eq!(emp.constituents().len(), 2);
        let c0 = emp.constituent_for(DbId::new(0)).unwrap();
        assert_eq!(c0.local_slot(emp.attr_index("name").unwrap()), Some(0));
        assert!(c0.is_missing(emp.attr_index("salary").unwrap()));
    }

    #[test]
    fn type_conflict_detected() {
        let a = ComponentSchema::new(vec![ClassDef::new("X").attr("v", AttrType::int())]).unwrap();
        let b = ComponentSchema::new(vec![ClassDef::new("X").attr("v", AttrType::text())]).unwrap();
        let err = integrate(
            &[(DbId::new(0), &a), (DbId::new(1), &b)],
            &Correspondences::new(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            SchemaError::TypeConflict {
                class: "X".into(),
                attr: "v".into()
            }
        );
    }

    #[test]
    fn primitive_vs_complex_conflict_detected() {
        let a = ComponentSchema::new(vec![
            ClassDef::new("D"),
            ClassDef::new("X").attr("v", AttrType::complex("D")),
        ])
        .unwrap();
        let b = ComponentSchema::new(vec![ClassDef::new("X").attr("v", AttrType::int())]).unwrap();
        let err = integrate(
            &[(DbId::new(0), &a), (DbId::new(1), &b)],
            &Correspondences::new(),
        )
        .unwrap_err();
        assert!(matches!(err, SchemaError::TypeConflict { .. }));
    }

    #[test]
    fn domain_conflict_detected() {
        let a = ComponentSchema::new(vec![
            ClassDef::new("D1"),
            ClassDef::new("X").attr("v", AttrType::complex("D1")),
        ])
        .unwrap();
        let b = ComponentSchema::new(vec![
            ClassDef::new("D2"),
            ClassDef::new("X").attr("v", AttrType::complex("D2")),
        ])
        .unwrap();
        let err = integrate(
            &[(DbId::new(0), &a), (DbId::new(1), &b)],
            &Correspondences::new(),
        )
        .unwrap_err();
        assert_eq!(
            err,
            SchemaError::DomainConflict {
                class: "X".into(),
                attr: "v".into()
            }
        );
    }

    #[test]
    fn multi_valued_integrates_as_element_type() {
        let a = ComponentSchema::new(vec![
            ClassDef::new("Topic"),
            ClassDef::new("T").attr(
                "topics",
                AttrType::Multi(Box::new(AttrType::complex("Topic"))),
            ),
        ])
        .unwrap();
        let g = integrate(&[(DbId::new(0), &a)], &Correspondences::new()).unwrap();
        let t = g.class_by_name("T").unwrap();
        assert_eq!(t.attr(0).ty().domain(), g.class_id("Topic"));
    }

    #[test]
    fn matching_primitive_types_merge() {
        let a = ComponentSchema::new(vec![ClassDef::new("X").attr("v", AttrType::int())]).unwrap();
        let b = ComponentSchema::new(vec![ClassDef::new("X").attr("v", AttrType::int())]).unwrap();
        let g = integrate(
            &[(DbId::new(0), &a), (DbId::new(1), &b)],
            &Correspondences::new(),
        )
        .unwrap();
        let x = g.class_by_name("X").unwrap();
        assert_eq!(x.arity(), 1);
        assert_eq!(
            x.attr(0).ty(),
            GlobalAttrType::Primitive(PrimitiveType::Int)
        );
    }

    #[test]
    fn single_database_integration_is_identity_like() {
        let a = db0();
        let g = integrate(&[(DbId::new(0), &a)], &Correspondences::new()).unwrap();
        assert_eq!(g.len(), 3);
        let student = g.class_by_name("Student").unwrap();
        assert_eq!(student.arity(), 4);
        assert!(student
            .constituent_for(DbId::new(0))
            .unwrap()
            .missing_attrs()
            .next()
            .is_none());
    }
}
