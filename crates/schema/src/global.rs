//! The integrated global schema.
//!
//! A [`GlobalClass`] is constructed by integrating semantically-equivalent
//! *constituent classes* from the component databases; its attributes are
//! the **set union** of the constituents' attributes. A global attribute a
//! constituent does not define is a *missing attribute* of that
//! constituent — the static source of missing data.

use fedoq_object::{ClassId, DbId, GlobalClassId};
use fedoq_store::PrimitiveType;
use std::collections::HashMap;
use std::fmt;

/// The type of a global attribute with its domain resolved to a global
/// class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalAttrType {
    /// A primitive attribute.
    Primitive(PrimitiveType),
    /// A complex attribute whose domain is a global class.
    Complex(GlobalClassId),
}

impl GlobalAttrType {
    /// `true` iff complex.
    pub fn is_complex(self) -> bool {
        matches!(self, GlobalAttrType::Complex(_))
    }

    /// The global domain class, if complex.
    pub fn domain(self) -> Option<GlobalClassId> {
        match self {
            GlobalAttrType::Complex(d) => Some(d),
            GlobalAttrType::Primitive(_) => None,
        }
    }
}

/// One attribute of a global class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalAttr {
    name: String,
    ty: GlobalAttrType,
}

impl GlobalAttr {
    /// Creates a global attribute.
    pub fn new(name: impl Into<String>, ty: GlobalAttrType) -> GlobalAttr {
        GlobalAttr {
            name: name.into(),
            ty,
        }
    }

    /// The global attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The resolved type.
    pub fn ty(&self) -> GlobalAttrType {
        self.ty
    }
}

/// One constituent class of a global class: which component class it is
/// and how its attribute slots align with the global attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constituent {
    db: DbId,
    class: ClassId,
    class_name: String,
    /// `attr_map[g]` is the local slot storing global attribute `g`, or
    /// `None` when `g` is a missing attribute of this constituent.
    attr_map: Vec<Option<usize>>,
}

impl Constituent {
    /// Creates a constituent descriptor.
    pub fn new(
        db: DbId,
        class: ClassId,
        class_name: impl Into<String>,
        attr_map: Vec<Option<usize>>,
    ) -> Constituent {
        Constituent {
            db,
            class,
            class_name: class_name.into(),
            attr_map,
        }
    }

    /// The owning component database.
    pub fn db(&self) -> DbId {
        self.db
    }

    /// The component class id within its database.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// The component class name.
    pub fn class_name(&self) -> &str {
        &self.class_name
    }

    /// The local slot holding global attribute `g`, or `None` if missing.
    pub fn local_slot(&self, g: usize) -> Option<usize> {
        self.attr_map.get(g).copied().flatten()
    }

    /// `true` iff global attribute `g` is a *missing attribute* of this
    /// constituent class.
    pub fn is_missing(&self, g: usize) -> bool {
        self.local_slot(g).is_none()
    }

    /// Indices of the global attributes this constituent is missing.
    pub fn missing_attrs(&self) -> impl Iterator<Item = usize> + '_ {
        self.attr_map
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.is_none())
            .map(|(g, _)| g)
    }
}

/// A class of the integrated global schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalClass {
    name: String,
    attrs: Vec<GlobalAttr>,
    by_attr: HashMap<String, usize>,
    constituents: Vec<Constituent>,
}

impl GlobalClass {
    /// Assembles a global class. Intended for use by [`crate::integrate()`];
    /// exposed for tests and hand-built schemas.
    pub fn new(
        name: impl Into<String>,
        attrs: Vec<GlobalAttr>,
        constituents: Vec<Constituent>,
    ) -> GlobalClass {
        let by_attr = attrs
            .iter()
            .enumerate()
            .map(|(i, a)| (a.name().to_owned(), i))
            .collect();
        GlobalClass {
            name: name.into(),
            attrs,
            by_attr,
            constituents,
        }
    }

    /// The global class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of global attributes (the union size).
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The global attributes in slot order.
    pub fn attrs(&self) -> &[GlobalAttr] {
        &self.attrs
    }

    /// Slot of the named global attribute.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.by_attr.get(name).copied()
    }

    /// The attribute definition at a slot.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn attr(&self, idx: usize) -> &GlobalAttr {
        &self.attrs[idx]
    }

    /// All constituent classes.
    pub fn constituents(&self) -> &[Constituent] {
        &self.constituents
    }

    /// The constituent hosted by `db`, if any. (A database hosts at most
    /// one constituent of a global class.)
    pub fn constituent_for(&self, db: DbId) -> Option<&Constituent> {
        self.constituents.iter().find(|c| c.db() == db)
    }

    /// Databases hosting a constituent of this class.
    pub fn hosting_dbs(&self) -> impl Iterator<Item = DbId> + '_ {
        self.constituents.iter().map(Constituent::db)
    }
}

impl fmt::Display for GlobalClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({} attrs, {} constituents)",
            self.name,
            self.attrs.len(),
            self.constituents.len()
        )
    }
}

/// The integrated global schema: the classes users query against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalSchema {
    classes: Vec<GlobalClass>,
    by_name: HashMap<String, GlobalClassId>,
}

impl GlobalSchema {
    /// Assembles a global schema from its classes.
    pub fn new(classes: Vec<GlobalClass>) -> GlobalSchema {
        let by_name = classes
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name().to_owned(), GlobalClassId::new(i as u32)))
            .collect();
        GlobalSchema { classes, by_name }
    }

    /// Number of global classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// `true` iff no classes were integrated.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The id of a global class by name.
    pub fn class_id(&self, name: &str) -> Option<GlobalClassId> {
        self.by_name.get(name).copied()
    }

    /// The class definition by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this schema.
    pub fn class(&self, id: GlobalClassId) -> &GlobalClass {
        &self.classes[id.index()]
    }

    /// The class definition by name.
    pub fn class_by_name(&self, name: &str) -> Option<&GlobalClass> {
        self.class_id(name).map(|id| self.class(id))
    }

    /// Iterates over `(id, class)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (GlobalClassId, &GlobalClass)> {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, c)| (GlobalClassId::new(i as u32), c))
    }

    /// Finds the global class integrating `db`'s component class
    /// `class_id`, together with its constituent record.
    pub fn owner_of(&self, db: DbId, class_id: ClassId) -> Option<(GlobalClassId, &Constituent)> {
        for (gid, class) in self.iter() {
            if let Some(c) = class
                .constituents()
                .iter()
                .find(|c| c.db() == db && c.class() == class_id)
            {
                return Some((gid, c));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GlobalSchema {
        // Global Student(s-no, age, sex) from DB0(s-no, age) + DB1(s-no, sex).
        let student = GlobalClass::new(
            "Student",
            vec![
                GlobalAttr::new("s-no", GlobalAttrType::Primitive(PrimitiveType::Int)),
                GlobalAttr::new("age", GlobalAttrType::Primitive(PrimitiveType::Int)),
                GlobalAttr::new("sex", GlobalAttrType::Primitive(PrimitiveType::Text)),
            ],
            vec![
                Constituent::new(
                    DbId::new(0),
                    ClassId::new(0),
                    "Student",
                    vec![Some(0), Some(1), None],
                ),
                Constituent::new(
                    DbId::new(1),
                    ClassId::new(0),
                    "Student",
                    vec![Some(0), None, Some(1)],
                ),
            ],
        );
        GlobalSchema::new(vec![student])
    }

    #[test]
    fn attribute_union_and_lookup() {
        let g = sample();
        let s = g.class_by_name("Student").unwrap();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.attr_index("sex"), Some(2));
        assert_eq!(s.attr_index("nope"), None);
        assert_eq!(s.attr(1).name(), "age");
    }

    #[test]
    fn missing_attribute_matrix() {
        let g = sample();
        let s = g.class_by_name("Student").unwrap();
        let c0 = s.constituent_for(DbId::new(0)).unwrap();
        let c1 = s.constituent_for(DbId::new(1)).unwrap();
        assert!(c0.is_missing(s.attr_index("sex").unwrap()));
        assert!(!c0.is_missing(s.attr_index("age").unwrap()));
        assert!(c1.is_missing(s.attr_index("age").unwrap()));
        assert_eq!(c0.missing_attrs().collect::<Vec<_>>(), vec![2]);
        assert_eq!(c0.local_slot(0), Some(0));
        assert_eq!(c1.local_slot(2), Some(1));
    }

    #[test]
    fn hosting_and_owner_lookup() {
        let g = sample();
        let s = g.class_by_name("Student").unwrap();
        let dbs: Vec<DbId> = s.hosting_dbs().collect();
        assert_eq!(dbs, vec![DbId::new(0), DbId::new(1)]);
        assert!(s.constituent_for(DbId::new(5)).is_none());
        let (gid, c) = g.owner_of(DbId::new(1), ClassId::new(0)).unwrap();
        assert_eq!(gid, g.class_id("Student").unwrap());
        assert_eq!(c.db(), DbId::new(1));
        assert!(g.owner_of(DbId::new(9), ClassId::new(0)).is_none());
    }

    #[test]
    fn global_attr_type_introspection() {
        let c = GlobalAttrType::Complex(GlobalClassId::new(3));
        assert!(c.is_complex());
        assert_eq!(c.domain(), Some(GlobalClassId::new(3)));
        let p = GlobalAttrType::Primitive(PrimitiveType::Int);
        assert!(!p.is_complex());
        assert_eq!(p.domain(), None);
    }

    #[test]
    fn display_and_iter() {
        let g = sample();
        assert_eq!(g.len(), 1);
        assert!(!g.is_empty());
        let (_, class) = g.iter().next().unwrap();
        assert_eq!(class.to_string(), "Student(3 attrs, 2 constituents)");
    }
}
