//! Correspondence assertions between component and global names.
//!
//! Schema integration needs to know which component classes (and which of
//! their attributes) are *semantically the same*. By default a component
//! name maps to the identical global name; a [`Correspondences`] table
//! overrides that for heterogeneously-named schemas (e.g. `Emp.nm` in one
//! database corresponding to `Employee.name` globally).

use fedoq_object::DbId;
use std::collections::HashMap;

/// A set of name-mapping assertions used during integration.
///
/// # Example
///
/// ```
/// use fedoq_object::DbId;
/// use fedoq_schema::Correspondences;
///
/// let db2 = DbId::new(2);
/// let corr = Correspondences::new()
///     .map_class(db2, "Emp", "Employee")
///     .map_attr(db2, "Emp", "nm", "name");
/// assert_eq!(corr.global_class(db2, "Emp"), "Employee");
/// assert_eq!(corr.global_attr(db2, "Emp", "nm"), "name");
/// // Unmapped names pass through unchanged.
/// assert_eq!(corr.global_class(db2, "Dept"), "Dept");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Correspondences {
    classes: HashMap<(DbId, String), String>,
    attrs: HashMap<(DbId, String, String), String>,
}

impl Correspondences {
    /// An empty (identity) correspondence table.
    pub fn new() -> Correspondences {
        Correspondences::default()
    }

    /// Asserts that `db`'s class `component` integrates into global class
    /// `global` (chainable).
    pub fn map_class(
        mut self,
        db: DbId,
        component: impl Into<String>,
        global: impl Into<String>,
    ) -> Correspondences {
        self.classes.insert((db, component.into()), global.into());
        self
    }

    /// Asserts that attribute `attr` of `db`'s class `component`
    /// corresponds to the global attribute named `global` (chainable).
    pub fn map_attr(
        mut self,
        db: DbId,
        component: impl Into<String>,
        attr: impl Into<String>,
        global: impl Into<String>,
    ) -> Correspondences {
        self.attrs
            .insert((db, component.into(), attr.into()), global.into());
        self
    }

    /// The global class name for a component class (identity if unmapped).
    pub fn global_class<'a>(&'a self, db: DbId, component: &'a str) -> &'a str {
        self.classes
            .get(&(db, component.to_owned()))
            .map_or(component, String::as_str)
    }

    /// The global attribute name for a component attribute (identity if
    /// unmapped).
    pub fn global_attr<'a>(&'a self, db: DbId, component: &'a str, attr: &'a str) -> &'a str {
        self.attrs
            .get(&(db, component.to_owned(), attr.to_owned()))
            .map_or(attr, String::as_str)
    }

    /// Number of explicit assertions (classes + attributes).
    pub fn len(&self) -> usize {
        self.classes.len() + self.attrs.len()
    }

    /// `true` iff no explicit assertions were made.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty() && self.attrs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_by_default() {
        let corr = Correspondences::new();
        assert!(corr.is_empty());
        assert_eq!(corr.global_class(DbId::new(0), "Student"), "Student");
        assert_eq!(corr.global_attr(DbId::new(0), "Student", "age"), "age");
    }

    #[test]
    fn explicit_mappings_take_precedence() {
        let db = DbId::new(1);
        let corr = Correspondences::new()
            .map_class(db, "Emp", "Employee")
            .map_attr(db, "Emp", "nm", "name");
        assert_eq!(corr.global_class(db, "Emp"), "Employee");
        assert_eq!(corr.global_attr(db, "Emp", "nm"), "name");
        assert_eq!(corr.len(), 2);
    }

    #[test]
    fn mappings_are_scoped_to_db_and_class() {
        let corr = Correspondences::new().map_attr(DbId::new(1), "Emp", "nm", "name");
        // Different database: identity.
        assert_eq!(corr.global_attr(DbId::new(2), "Emp", "nm"), "nm");
        // Different class in the same database: identity.
        assert_eq!(corr.global_attr(DbId::new(1), "Mgr", "nm"), "nm");
    }
}
