//! Error type for schema integration.

use fedoq_object::DbId;
use std::fmt;

/// Errors raised while integrating component schemas or building GOid
/// mapping tables.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SchemaError {
    /// Two constituent classes define the same global attribute with
    /// incompatible types.
    TypeConflict { class: String, attr: String },
    /// Two complex attributes map to the same global attribute but their
    /// domain classes integrate into different global classes.
    DomainConflict { class: String, attr: String },
    /// A correspondence references a class a database does not define.
    UnknownComponentClass { db: DbId, class: String },
    /// A global class name was not found in the global schema.
    UnknownGlobalClass(String),
    /// No constituent class of a global class declares a key, so
    /// isomerism cannot be identified for it.
    NoKey { class: String },
    /// Isomeric grouping put two objects from the *same* database into one
    /// group (keys must identify entities uniquely within a database).
    DuplicateEntityInDb { db: DbId, class: String },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::TypeConflict { class, attr } => {
                write!(
                    f,
                    "constituents of {class:?} disagree on the type of {attr:?}"
                )
            }
            SchemaError::DomainConflict { class, attr } => write!(
                f,
                "complex attribute {class}.{attr} integrates to different global domain classes"
            ),
            SchemaError::UnknownComponentClass { db, class } => {
                write!(f, "{db} does not define class {class:?}")
            }
            SchemaError::UnknownGlobalClass(c) => write!(f, "unknown global class {c:?}"),
            SchemaError::NoKey { class } => {
                write!(
                    f,
                    "no constituent of {class:?} declares a key for isomerism"
                )
            }
            SchemaError::DuplicateEntityInDb { db, class } => write!(
                f,
                "two objects of {class:?} in {db} share a key; keys must be unique per database"
            ),
        }
    }
}

impl std::error::Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_subjects() {
        let e = SchemaError::TypeConflict {
            class: "Student".into(),
            attr: "age".into(),
        };
        assert!(e.to_string().contains("Student"));
        assert!(e.to_string().contains("age"));
        let e = SchemaError::UnknownComponentClass {
            db: DbId::new(2),
            class: "X".into(),
        };
        assert!(e.to_string().contains("DB2"));
    }

    #[test]
    fn is_std_error_send_sync() {
        fn check<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        check(SchemaError::UnknownGlobalClass("X".into()));
    }
}
