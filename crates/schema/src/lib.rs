//! Schema-integration substrate for FedOQ.
//!
//! Builds the *global object schema* the users query against:
//!
//! * [`correspondence`] — assertions mapping component class/attribute
//!   names to global names (semantically-equivalent classes are integrated
//!   even when named differently);
//! * [`integrate()`] — constructs each global class as the **set union of the
//!   attributes** of its constituent classes, recording per constituent
//!   which global attributes are *missing attributes* there;
//! * [`isomerism`] — identifies isomeric objects (copies of one real-world
//!   entity in different component databases) by key-attribute equality;
//! * [`goid`] — the GOid mapping tables, replicated at every site, that
//!   associate each local object with its global object identifier.
//!
//! # Example
//!
//! ```
//! use fedoq_object::DbId;
//! use fedoq_store::{AttrType, ClassDef, ComponentSchema};
//! use fedoq_schema::{Correspondences, integrate};
//!
//! let db0 = ComponentSchema::new(vec![
//!     ClassDef::new("Student").attr("s-no", AttrType::int()).attr("age", AttrType::int()),
//! ])?;
//! let db1 = ComponentSchema::new(vec![
//!     ClassDef::new("Student").attr("s-no", AttrType::int()).attr("sex", AttrType::text()),
//! ])?;
//! let global = integrate(
//!     &[(DbId::new(0), &db0), (DbId::new(1), &db1)],
//!     &Correspondences::new(),
//! )?;
//! let student = global.class_by_name("Student").unwrap();
//! // The global class is the union of attributes: s-no, age, sex.
//! assert_eq!(student.arity(), 3);
//! // `sex` is a missing attribute of DB0's constituent class.
//! assert!(student.constituent_for(DbId::new(0)).unwrap().is_missing(
//!     student.attr_index("sex").unwrap()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod correspondence;
pub mod error;
pub mod global;
pub mod goid;
pub mod integrate;
pub mod isomerism;

pub use correspondence::Correspondences;
pub use error::SchemaError;
pub use global::{Constituent, GlobalAttr, GlobalAttrType, GlobalClass, GlobalSchema};
pub use goid::{GoidCatalog, GoidTable, GOID_SHARDS};
pub use integrate::integrate;
pub use isomerism::{identify_isomerism, identify_isomerism_with_keys, EntityKeyMap};
