//! Isomerism identification: grouping local objects into global entities.
//!
//! The paper assumes isomeric objects "have been determined" by its
//! companion technique (Chen, Tsai & Koh 1996). We implement the common
//! practical instance: objects of corresponding classes that agree on a
//! declared *key* (e.g. the student number `s-no`) represent the same
//! real-world entity. Objects without a usable key — the constituent lacks
//! the key attribute, or the key value is null — become singleton entities.

use crate::error::SchemaError;
use crate::global::{GlobalClass, GlobalSchema};
use crate::goid::GoidCatalog;
use fedoq_object::{ClassId, DbId, GOid, GlobalClassId, LOid};
use fedoq_store::{ComponentDb, IndexKey};
use std::collections::HashMap;

/// Builds the GOid mapping tables by key-equality grouping.
///
/// For each global class, the entity key is the key declared by its first
/// keyed constituent, translated into global attribute slots. Constituents
/// that are missing any key attribute contribute only singleton entities.
///
/// # Errors
///
/// Returns [`SchemaError::DuplicateEntityInDb`] if two objects of one
/// database share a key — keys must identify entities uniquely per site.
///
/// # Example
///
/// ```
/// use fedoq_object::{DbId, Value};
/// use fedoq_store::{AttrType, ClassDef, ComponentDb, ComponentSchema};
/// use fedoq_schema::{identify_isomerism, integrate, Correspondences};
///
/// let schema0 = ComponentSchema::new(vec![
///     ClassDef::new("Student").attr("s-no", AttrType::int()).key(["s-no"]),
/// ])?;
/// let schema1 = schema0.clone();
/// let mut db0 = ComponentDb::new(DbId::new(0), "DB0", schema0);
/// let mut db1 = ComponentDb::new(DbId::new(1), "DB1", schema1);
/// let john0 = db0.insert_named("Student", &[("s-no", Value::Int(804301))])?;
/// let john1 = db1.insert_named("Student", &[("s-no", Value::Int(804301))])?;
///
/// let global = integrate(&[(DbId::new(0), db0.schema()), (DbId::new(1), db1.schema())],
///                        &Correspondences::new())?;
/// let catalog = identify_isomerism(&[&db0, &db1], &global)?;
/// let student = global.class_id("Student").unwrap();
/// // Same key => isomeric objects => same GOid.
/// assert_eq!(catalog.table(student).goid_of(john0),
///            catalog.table(student).goid_of(john1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn identify_isomerism(
    dbs: &[&ComponentDb],
    global: &GlobalSchema,
) -> Result<GoidCatalog, SchemaError> {
    let mut catalog = GoidCatalog::new(global.len());
    for (gid, class) in global.iter() {
        group_class(dbs, gid, class, &mut catalog, None)?;
    }
    Ok(catalog)
}

/// Like [`identify_isomerism`], but also returns the [`EntityKeyMap`]
/// that lets subsequent inserts/retracts maintain the catalog
/// *incrementally* (O(changes) per mutation instead of O(extents)).
///
/// # Errors
///
/// Same conditions as [`identify_isomerism`].
pub fn identify_isomerism_with_keys(
    dbs: &[&ComponentDb],
    global: &GlobalSchema,
) -> Result<(GoidCatalog, EntityKeyMap), SchemaError> {
    let mut catalog = GoidCatalog::new(global.len());
    let mut keymap = EntityKeyMap::new(global.len());
    for (gid, class) in global.iter() {
        group_class(dbs, gid, class, &mut catalog, Some(&mut keymap))?;
    }
    Ok((catalog, keymap))
}

fn group_class(
    dbs: &[&ComponentDb],
    gid: GlobalClassId,
    class: &GlobalClass,
    catalog: &mut GoidCatalog,
    mut keymap: Option<&mut EntityKeyMap>,
) -> Result<(), SchemaError> {
    let key_slots = entity_key_slots(dbs, class);
    let mut groups: HashMap<IndexKey, Vec<LOid>> = HashMap::new();
    let mut singletons: Vec<LOid> = Vec::new();

    for constituent in class.constituents() {
        let db = dbs
            .iter()
            .find(|d| d.id() == constituent.db())
            .unwrap_or_else(|| panic!("database {} not supplied", constituent.db()));
        // Translate the global key slots into this constituent's local
        // slots; None if any key attribute is missing here.
        let local_key: Option<Vec<usize>> = key_slots
            .as_ref()
            .and_then(|slots| slots.iter().map(|&g| constituent.local_slot(g)).collect());
        if let Some(km) = keymap.as_deref_mut() {
            km.targets.insert(
                (constituent.db(), constituent.class()),
                Target {
                    gid,
                    class_name: class.name().to_owned(),
                    key_slots: local_key.clone(),
                },
            );
        }
        for object in db.extent(constituent.class()).iter() {
            let key = local_key
                .as_ref()
                .and_then(|slots| IndexKey::compound(slots.iter().map(|&s| object.value(s))));
            match key {
                Some(k) => groups.entry(k).or_default().push(object.loid()),
                None => singletons.push(object.loid()),
            }
        }
    }

    // Deterministic registration order: sort groups by their first LOid.
    let mut grouped: Vec<(IndexKey, Vec<LOid>)> = groups.into_iter().collect();
    for (_, g) in &mut grouped {
        g.sort();
    }
    grouped.sort_by(|a, b| a.1.cmp(&b.1));
    for (key, group) in grouped {
        let mut seen_dbs = Vec::with_capacity(group.len());
        for l in &group {
            if seen_dbs.contains(&l.db()) {
                return Err(SchemaError::DuplicateEntityInDb {
                    db: l.db(),
                    class: class.name().to_owned(),
                });
            }
            seen_dbs.push(l.db());
        }
        let goid = catalog.register(gid, &group);
        if let Some(km) = keymap.as_deref_mut() {
            km.by_key[gid.index()].insert(key.clone(), goid);
            km.key_of[gid.index()].insert(goid, key);
        }
    }
    singletons.sort();
    for l in singletons {
        catalog.register(gid, &[l]);
    }
    Ok(())
}

/// Where one local class lives in the global schema, and how to read its
/// entity key.
#[derive(Debug, Clone)]
struct Target {
    gid: GlobalClassId,
    class_name: String,
    key_slots: Option<Vec<usize>>,
}

/// The key side of isomerism identification, kept alive after the bulk
/// pass so single inserts and retracts can maintain the [`GoidCatalog`]
/// in O(1) instead of re-scanning every extent.
///
/// Built by [`identify_isomerism_with_keys`]. For each global class it
/// remembers entity-key → GOid (and the inverse), plus how each local
/// class's objects map into global classes and key slots.
///
/// GOid *numbering* under incremental maintenance differs from what a
/// fresh [`identify_isomerism`] would assign (new entities take fresh
/// serials instead of re-sorting), but the grouping — which objects share
/// a GOid — is identical.
#[derive(Debug, Clone, Default)]
pub struct EntityKeyMap {
    by_key: Vec<HashMap<IndexKey, GOid>>,
    key_of: Vec<HashMap<GOid, IndexKey>>,
    targets: HashMap<(DbId, ClassId), Target>,
}

impl EntityKeyMap {
    fn new(num_classes: usize) -> EntityKeyMap {
        EntityKeyMap {
            by_key: vec![HashMap::new(); num_classes],
            key_of: vec![HashMap::new(); num_classes],
            targets: HashMap::new(),
        }
    }

    /// Folds one freshly-inserted object into the catalog: joins the
    /// entity whose key it shares, or founds a new one.
    ///
    /// # Errors
    ///
    /// Returns [`SchemaError::DuplicateEntityInDb`] if the object's key
    /// collides with an existing object of the same database — the same
    /// condition the bulk pass rejects.
    pub fn apply_insert(
        &mut self,
        catalog: &mut GoidCatalog,
        db: &ComponentDb,
        loid: LOid,
    ) -> Result<(), SchemaError> {
        let Some(object) = db.object(loid) else {
            return Ok(()); // inserted then retracted within one batch
        };
        let Some(target) = self.targets.get(&(db.id(), object.class())) else {
            return Ok(()); // class not integrated into the global schema
        };
        let key = target
            .key_slots
            .as_ref()
            .and_then(|slots| IndexKey::compound(slots.iter().map(|&s| object.value(s))));
        let gid = target.gid;
        match key {
            Some(key) => {
                if let Some(&goid) = self.by_key[gid.index()].get(&key) {
                    if catalog.table(gid).loid_in_db(goid, db.id()).is_some() {
                        return Err(SchemaError::DuplicateEntityInDb {
                            db: db.id(),
                            class: target.class_name.clone(),
                        });
                    }
                    catalog.add_member(gid, goid, loid);
                } else {
                    let goid = catalog.register(gid, &[loid]);
                    self.by_key[gid.index()].insert(key.clone(), goid);
                    self.key_of[gid.index()].insert(goid, key);
                }
            }
            None => {
                catalog.register(gid, &[loid]); // null/absent key: singleton
            }
        }
        Ok(())
    }

    /// Unlinks a retracted object from its entity; a keyed entity that
    /// loses its last member also releases its key.
    pub fn apply_retract(&mut self, catalog: &mut GoidCatalog, loid: LOid) {
        if let Some((gid, goid, emptied)) = catalog.remove_member(loid) {
            if emptied {
                if let Some(key) = self.key_of[gid.index()].remove(&goid) {
                    self.by_key[gid.index()].remove(&key);
                }
            }
        }
    }

    /// Re-files an updated object: its key may have changed, which can
    /// move it between entities.
    ///
    /// An update that leaves the entity key unchanged keeps its GOid.
    /// Re-filing unconditionally would release and re-found single-member
    /// entities under a fresh GOid, and that renumbering masquerades as
    /// entity churn downstream — e.g. a standing query would report the
    /// row as eliminated and re-added when only a non-key attribute
    /// changed.
    ///
    /// # Errors
    ///
    /// Same conditions as [`EntityKeyMap::apply_insert`].
    pub fn apply_update(
        &mut self,
        catalog: &mut GoidCatalog,
        db: &ComponentDb,
        loid: LOid,
    ) -> Result<(), SchemaError> {
        if let Some(object) = db.object(loid) {
            let Some(target) = self.targets.get(&(db.id(), object.class())) else {
                return Ok(()); // class not integrated into the global schema
            };
            let gid = target.gid;
            let current = catalog.table(gid).goid_of(loid);
            match target.key_slots.as_ref() {
                // Unkeyed classes group as singletons; membership cannot
                // change, so the mapping stands as-is.
                None => return Ok(()),
                Some(slots) => {
                    let key = IndexKey::compound(slots.iter().map(|&s| object.value(s)));
                    match (key, current) {
                        // Key unchanged: still filed under the same entity.
                        (Some(key), Some(goid))
                            if self.by_key[gid.index()].get(&key) == Some(&goid) =>
                        {
                            return Ok(());
                        }
                        // Key still null on a singleton: nothing to re-file.
                        (None, Some(goid)) if !self.key_of[gid.index()].contains_key(&goid) => {
                            return Ok(());
                        }
                        _ => {}
                    }
                }
            }
        }
        self.apply_retract(catalog, loid);
        self.apply_insert(catalog, db, loid)
    }
}

/// The global attribute slots forming the class's entity key: the key of
/// the first constituent that declares one, or `None` (all singletons).
fn entity_key_slots(dbs: &[&ComponentDb], class: &GlobalClass) -> Option<Vec<usize>> {
    for constituent in class.constituents() {
        let db = dbs.iter().find(|d| d.id() == constituent.db())?;
        let def = db.schema().class(constituent.class());
        if def.key_attrs().is_empty() {
            continue;
        }
        let mut slots = Vec::with_capacity(def.key_attrs().len());
        for key_attr in def.key_attrs() {
            let local = def.attr_index(key_attr)?;
            // Find the global slot this local slot implements.
            let g = (0..class.arity()).find(|&g| constituent.local_slot(g) == Some(local))?;
            slots.push(g);
        }
        return Some(slots);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correspondence::Correspondences;
    use crate::integrate::integrate;
    use fedoq_object::{DbId, Value};
    use fedoq_store::{AttrType, ClassDef, ComponentSchema};

    fn keyed_schema() -> ComponentSchema {
        ComponentSchema::new(vec![ClassDef::new("Student")
            .attr("s-no", AttrType::int())
            .attr("name", AttrType::text())
            .key(["s-no"])])
        .unwrap()
    }

    #[test]
    fn same_key_groups_across_dbs() {
        let mut db0 = ComponentDb::new(DbId::new(0), "DB0", keyed_schema());
        let mut db1 = ComponentDb::new(DbId::new(1), "DB1", keyed_schema());
        let a = db0
            .insert_named(
                "Student",
                &[("s-no", Value::Int(1)), ("name", Value::text("John"))],
            )
            .unwrap();
        let b = db1
            .insert_named(
                "Student",
                &[("s-no", Value::Int(1)), ("name", Value::text("John"))],
            )
            .unwrap();
        let c = db1
            .insert_named(
                "Student",
                &[("s-no", Value::Int(2)), ("name", Value::text("Mary"))],
            )
            .unwrap();
        let global = integrate(
            &[(DbId::new(0), db0.schema()), (DbId::new(1), db1.schema())],
            &Correspondences::new(),
        )
        .unwrap();
        let cat = identify_isomerism(&[&db0, &db1], &global).unwrap();
        let class = global.class_id("Student").unwrap();
        let t = cat.table(class);
        assert_eq!(t.goid_of(a), t.goid_of(b));
        assert_ne!(t.goid_of(a), t.goid_of(c));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn null_keys_become_singletons() {
        let mut db0 = ComponentDb::new(DbId::new(0), "DB0", keyed_schema());
        let mut db1 = ComponentDb::new(DbId::new(1), "DB1", keyed_schema());
        let a = db0
            .insert_named("Student", &[("name", Value::text("X"))])
            .unwrap();
        let b = db1
            .insert_named("Student", &[("name", Value::text("X"))])
            .unwrap();
        let global = integrate(
            &[(DbId::new(0), db0.schema()), (DbId::new(1), db1.schema())],
            &Correspondences::new(),
        )
        .unwrap();
        let cat = identify_isomerism(&[&db0, &db1], &global).unwrap();
        let class = global.class_id("Student").unwrap();
        let t = cat.table(class);
        assert_ne!(t.goid_of(a), t.goid_of(b));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn missing_key_attribute_means_singletons() {
        // DB1's Student has no s-no at all; its objects can't join groups.
        let unkeyed =
            ComponentSchema::new(vec![ClassDef::new("Student").attr("name", AttrType::text())])
                .unwrap();
        let mut db0 = ComponentDb::new(DbId::new(0), "DB0", keyed_schema());
        let mut db1 = ComponentDb::new(DbId::new(1), "DB1", unkeyed);
        let a = db0
            .insert_named(
                "Student",
                &[("s-no", Value::Int(1)), ("name", Value::text("J"))],
            )
            .unwrap();
        let b = db1
            .insert_named("Student", &[("name", Value::text("J"))])
            .unwrap();
        let global = integrate(
            &[(DbId::new(0), db0.schema()), (DbId::new(1), db1.schema())],
            &Correspondences::new(),
        )
        .unwrap();
        let cat = identify_isomerism(&[&db0, &db1], &global).unwrap();
        let class = global.class_id("Student").unwrap();
        let t = cat.table(class);
        assert_ne!(t.goid_of(a), t.goid_of(b));
    }

    #[test]
    fn no_key_class_is_all_singletons() {
        let schema =
            ComponentSchema::new(vec![ClassDef::new("Address").attr("city", AttrType::text())])
                .unwrap();
        let mut db0 = ComponentDb::new(DbId::new(0), "DB0", schema);
        let a = db0
            .insert_named("Address", &[("city", Value::text("Taipei"))])
            .unwrap();
        let b = db0
            .insert_named("Address", &[("city", Value::text("Taipei"))])
            .unwrap();
        let global = integrate(&[(DbId::new(0), db0.schema())], &Correspondences::new()).unwrap();
        let cat = identify_isomerism(&[&db0], &global).unwrap();
        let class = global.class_id("Address").unwrap();
        assert_ne!(cat.table(class).goid_of(a), cat.table(class).goid_of(b));
    }

    #[test]
    fn duplicate_key_in_one_db_rejected() {
        let mut db0 = ComponentDb::new(DbId::new(0), "DB0", keyed_schema());
        db0.insert_named("Student", &[("s-no", Value::Int(1))])
            .unwrap();
        db0.insert_named("Student", &[("s-no", Value::Int(1))])
            .unwrap();
        let global = integrate(&[(DbId::new(0), db0.schema())], &Correspondences::new()).unwrap();
        let err = identify_isomerism(&[&db0], &global).unwrap_err();
        assert!(matches!(err, SchemaError::DuplicateEntityInDb { .. }));
    }

    /// The grouping (which LOids share an entity), independent of GOid
    /// numbering — incremental maintenance preserves grouping, not
    /// numbering.
    fn grouping(cat: &crate::GoidCatalog, class: fedoq_object::GlobalClassId) -> Vec<Vec<LOid>> {
        let mut groups: Vec<Vec<LOid>> = cat
            .table(class)
            .iter()
            .map(|(_, ls)| {
                let mut ls = ls.to_vec();
                ls.sort();
                ls
            })
            .collect();
        groups.sort();
        groups
    }

    #[test]
    fn incremental_maintenance_matches_rebuild() {
        let mut db0 = ComponentDb::new(DbId::new(0), "DB0", keyed_schema());
        let mut db1 = ComponentDb::new(DbId::new(1), "DB1", keyed_schema());
        for i in 0..8 {
            db0.insert_named("Student", &[("s-no", Value::Int(i))])
                .unwrap();
        }
        let global = integrate(
            &[(DbId::new(0), db0.schema()), (DbId::new(1), db1.schema())],
            &Correspondences::new(),
        )
        .unwrap();
        let (mut cat, mut keys) = identify_isomerism_with_keys(&[&db0, &db1], &global).unwrap();
        let class = global.class_id("Student").unwrap();

        // Insert an isomeric copy (joins entity 3), a new entity, and a
        // null-keyed singleton in DB1; apply each incrementally.
        let join = db1
            .insert_named("Student", &[("s-no", Value::Int(3))])
            .unwrap();
        let fresh = db1
            .insert_named("Student", &[("s-no", Value::Int(100))])
            .unwrap();
        let nullk = db1
            .insert_named("Student", &[("name", Value::text("x"))])
            .unwrap();
        for l in [join, fresh, nullk] {
            keys.apply_insert(&mut cat, &db1, l).unwrap();
        }
        assert_eq!(
            grouping(&cat, class),
            grouping(&identify_isomerism(&[&db0, &db1], &global).unwrap(), class)
        );

        // Retract the joined copy and the fresh entity.
        db1.retract(join).unwrap();
        keys.apply_retract(&mut cat, join);
        db1.retract(fresh).unwrap();
        keys.apply_retract(&mut cat, fresh);
        assert_eq!(
            grouping(&cat, class),
            grouping(&identify_isomerism(&[&db0, &db1], &global).unwrap(), class)
        );

        // An update that changes the key moves the object between
        // entities.
        let moved = db1
            .insert_named("Student", &[("s-no", Value::Int(5))])
            .unwrap();
        keys.apply_insert(&mut cat, &db1, moved).unwrap();
        db1.object_mut(moved).unwrap().set(0, Value::Int(6));
        keys.apply_update(&mut cat, &db1, moved).unwrap();
        assert_eq!(
            grouping(&cat, class),
            grouping(&identify_isomerism(&[&db0, &db1], &global).unwrap(), class)
        );
        // And a key released by emptying its entity can be re-founded.
        db1.retract(moved).unwrap();
        keys.apply_retract(&mut cat, moved);
        let back = db1
            .insert_named("Student", &[("s-no", Value::Int(6))])
            .unwrap();
        keys.apply_insert(&mut cat, &db1, back).unwrap();
        assert_eq!(
            grouping(&cat, class),
            grouping(&identify_isomerism(&[&db0, &db1], &global).unwrap(), class)
        );
    }

    /// A non-key update must not renumber the entity: before this held,
    /// updating a single-member entity released and re-founded it under a
    /// fresh GOid, which downstream consumers (standing-query deltas, the
    /// lookup cache) read as the entity disappearing and reappearing.
    #[test]
    fn non_key_update_keeps_the_goid() {
        let mut db0 = ComponentDb::new(DbId::new(0), "DB0", keyed_schema());
        let mut db1 = ComponentDb::new(DbId::new(1), "DB1", keyed_schema());
        let solo = db0
            .insert_named(
                "Student",
                &[("s-no", Value::Int(1)), ("name", Value::text("Mary"))],
            )
            .unwrap();
        let paired = db0
            .insert_named(
                "Student",
                &[("s-no", Value::Int(2)), ("name", Value::text("John"))],
            )
            .unwrap();
        db1.insert_named(
            "Student",
            &[("s-no", Value::Int(2)), ("name", Value::text("John"))],
        )
        .unwrap();
        let nullk = db0
            .insert_named("Student", &[("name", Value::text("x"))])
            .unwrap();
        let global = integrate(
            &[(DbId::new(0), db0.schema()), (DbId::new(1), db1.schema())],
            &Correspondences::new(),
        )
        .unwrap();
        let (mut cat, mut keys) = identify_isomerism_with_keys(&[&db0, &db1], &global).unwrap();
        let class = global.class_id("Student").unwrap();
        let before = [
            cat.table(class).goid_of(solo),
            cat.table(class).goid_of(paired),
            cat.table(class).goid_of(nullk),
        ];
        for loid in [solo, paired, nullk] {
            db0.object_mut(loid).unwrap().set(1, Value::text("renamed"));
            keys.apply_update(&mut cat, &db0, loid).unwrap();
        }
        let after = [
            cat.table(class).goid_of(solo),
            cat.table(class).goid_of(paired),
            cat.table(class).goid_of(nullk),
        ];
        assert_eq!(before, after, "non-key updates renumbered a GOid");

        // A *key* update still re-files: s-no 1 → 2 joins John's entity.
        db0.object_mut(solo).unwrap().set(0, Value::Int(3));
        keys.apply_update(&mut cat, &db0, solo).unwrap();
        assert_ne!(cat.table(class).goid_of(solo), before[0]);
        assert_eq!(
            grouping(&cat, class),
            grouping(&identify_isomerism(&[&db0, &db1], &global).unwrap(), class)
        );
    }

    #[test]
    fn incremental_insert_rejects_duplicate_key_in_db() {
        let mut db0 = ComponentDb::new(DbId::new(0), "DB0", keyed_schema());
        db0.insert_named("Student", &[("s-no", Value::Int(1))])
            .unwrap();
        let global = integrate(&[(DbId::new(0), db0.schema())], &Correspondences::new()).unwrap();
        let (mut cat, mut keys) = identify_isomerism_with_keys(&[&db0], &global).unwrap();
        let dup = db0
            .insert_named("Student", &[("s-no", Value::Int(1))])
            .unwrap();
        let err = keys.apply_insert(&mut cat, &db0, dup).unwrap_err();
        assert!(matches!(err, SchemaError::DuplicateEntityInDb { .. }));
    }

    #[test]
    fn deterministic_goid_assignment() {
        let build = || {
            let mut db0 = ComponentDb::new(DbId::new(0), "DB0", keyed_schema());
            let mut db1 = ComponentDb::new(DbId::new(1), "DB1", keyed_schema());
            for i in 0..10 {
                db0.insert_named("Student", &[("s-no", Value::Int(i))])
                    .unwrap();
                db1.insert_named("Student", &[("s-no", Value::Int(i + 5))])
                    .unwrap();
            }
            let global = integrate(
                &[(DbId::new(0), db0.schema()), (DbId::new(1), db1.schema())],
                &Correspondences::new(),
            )
            .unwrap();
            let cat = identify_isomerism(&[&db0, &db1], &global).unwrap();
            let class = global.class_id("Student").unwrap();
            let mut pairs: Vec<(LOid, Option<fedoq_object::GOid>)> = db0
                .extent_by_name("Student")
                .unwrap()
                .loids()
                .map(|l| (l, cat.table(class).goid_of(l)))
                .collect();
            pairs.sort();
            pairs
        };
        assert_eq!(build(), build());
    }
}
