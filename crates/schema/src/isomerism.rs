//! Isomerism identification: grouping local objects into global entities.
//!
//! The paper assumes isomeric objects "have been determined" by its
//! companion technique (Chen, Tsai & Koh 1996). We implement the common
//! practical instance: objects of corresponding classes that agree on a
//! declared *key* (e.g. the student number `s-no`) represent the same
//! real-world entity. Objects without a usable key — the constituent lacks
//! the key attribute, or the key value is null — become singleton entities.

use crate::error::SchemaError;
use crate::global::{GlobalClass, GlobalSchema};
use crate::goid::GoidCatalog;
use fedoq_object::{GlobalClassId, LOid};
use fedoq_store::{ComponentDb, IndexKey};
use std::collections::HashMap;

/// Builds the GOid mapping tables by key-equality grouping.
///
/// For each global class, the entity key is the key declared by its first
/// keyed constituent, translated into global attribute slots. Constituents
/// that are missing any key attribute contribute only singleton entities.
///
/// # Errors
///
/// Returns [`SchemaError::DuplicateEntityInDb`] if two objects of one
/// database share a key — keys must identify entities uniquely per site.
///
/// # Example
///
/// ```
/// use fedoq_object::{DbId, Value};
/// use fedoq_store::{AttrType, ClassDef, ComponentDb, ComponentSchema};
/// use fedoq_schema::{identify_isomerism, integrate, Correspondences};
///
/// let schema0 = ComponentSchema::new(vec![
///     ClassDef::new("Student").attr("s-no", AttrType::int()).key(["s-no"]),
/// ])?;
/// let schema1 = schema0.clone();
/// let mut db0 = ComponentDb::new(DbId::new(0), "DB0", schema0);
/// let mut db1 = ComponentDb::new(DbId::new(1), "DB1", schema1);
/// let john0 = db0.insert_named("Student", &[("s-no", Value::Int(804301))])?;
/// let john1 = db1.insert_named("Student", &[("s-no", Value::Int(804301))])?;
///
/// let global = integrate(&[(DbId::new(0), db0.schema()), (DbId::new(1), db1.schema())],
///                        &Correspondences::new())?;
/// let catalog = identify_isomerism(&[&db0, &db1], &global)?;
/// let student = global.class_id("Student").unwrap();
/// // Same key => isomeric objects => same GOid.
/// assert_eq!(catalog.table(student).goid_of(john0),
///            catalog.table(student).goid_of(john1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn identify_isomerism(
    dbs: &[&ComponentDb],
    global: &GlobalSchema,
) -> Result<GoidCatalog, SchemaError> {
    let mut catalog = GoidCatalog::new(global.len());
    for (gid, class) in global.iter() {
        group_class(dbs, gid, class, &mut catalog)?;
    }
    Ok(catalog)
}

fn group_class(
    dbs: &[&ComponentDb],
    gid: GlobalClassId,
    class: &GlobalClass,
    catalog: &mut GoidCatalog,
) -> Result<(), SchemaError> {
    let key_slots = entity_key_slots(dbs, class);
    let mut groups: HashMap<IndexKey, Vec<LOid>> = HashMap::new();
    let mut singletons: Vec<LOid> = Vec::new();

    for constituent in class.constituents() {
        let db = dbs
            .iter()
            .find(|d| d.id() == constituent.db())
            .unwrap_or_else(|| panic!("database {} not supplied", constituent.db()));
        // Translate the global key slots into this constituent's local
        // slots; None if any key attribute is missing here.
        let local_key: Option<Vec<usize>> = key_slots
            .as_ref()
            .and_then(|slots| slots.iter().map(|&g| constituent.local_slot(g)).collect());
        for object in db.extent(constituent.class()).iter() {
            let key = local_key
                .as_ref()
                .and_then(|slots| IndexKey::compound(slots.iter().map(|&s| object.value(s))));
            match key {
                Some(k) => groups.entry(k).or_default().push(object.loid()),
                None => singletons.push(object.loid()),
            }
        }
    }

    // Deterministic registration order: sort groups by their first LOid.
    let mut grouped: Vec<Vec<LOid>> = groups.into_values().collect();
    for g in &mut grouped {
        g.sort();
    }
    grouped.sort();
    for group in grouped {
        let mut seen_dbs = Vec::with_capacity(group.len());
        for l in &group {
            if seen_dbs.contains(&l.db()) {
                return Err(SchemaError::DuplicateEntityInDb {
                    db: l.db(),
                    class: class.name().to_owned(),
                });
            }
            seen_dbs.push(l.db());
        }
        catalog.register(gid, &group);
    }
    singletons.sort();
    for l in singletons {
        catalog.register(gid, &[l]);
    }
    Ok(())
}

/// The global attribute slots forming the class's entity key: the key of
/// the first constituent that declares one, or `None` (all singletons).
fn entity_key_slots(dbs: &[&ComponentDb], class: &GlobalClass) -> Option<Vec<usize>> {
    for constituent in class.constituents() {
        let db = dbs.iter().find(|d| d.id() == constituent.db())?;
        let def = db.schema().class(constituent.class());
        if def.key_attrs().is_empty() {
            continue;
        }
        let mut slots = Vec::with_capacity(def.key_attrs().len());
        for key_attr in def.key_attrs() {
            let local = def.attr_index(key_attr)?;
            // Find the global slot this local slot implements.
            let g = (0..class.arity()).find(|&g| constituent.local_slot(g) == Some(local))?;
            slots.push(g);
        }
        return Some(slots);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correspondence::Correspondences;
    use crate::integrate::integrate;
    use fedoq_object::{DbId, Value};
    use fedoq_store::{AttrType, ClassDef, ComponentSchema};

    fn keyed_schema() -> ComponentSchema {
        ComponentSchema::new(vec![ClassDef::new("Student")
            .attr("s-no", AttrType::int())
            .attr("name", AttrType::text())
            .key(["s-no"])])
        .unwrap()
    }

    #[test]
    fn same_key_groups_across_dbs() {
        let mut db0 = ComponentDb::new(DbId::new(0), "DB0", keyed_schema());
        let mut db1 = ComponentDb::new(DbId::new(1), "DB1", keyed_schema());
        let a = db0
            .insert_named(
                "Student",
                &[("s-no", Value::Int(1)), ("name", Value::text("John"))],
            )
            .unwrap();
        let b = db1
            .insert_named(
                "Student",
                &[("s-no", Value::Int(1)), ("name", Value::text("John"))],
            )
            .unwrap();
        let c = db1
            .insert_named(
                "Student",
                &[("s-no", Value::Int(2)), ("name", Value::text("Mary"))],
            )
            .unwrap();
        let global = integrate(
            &[(DbId::new(0), db0.schema()), (DbId::new(1), db1.schema())],
            &Correspondences::new(),
        )
        .unwrap();
        let cat = identify_isomerism(&[&db0, &db1], &global).unwrap();
        let class = global.class_id("Student").unwrap();
        let t = cat.table(class);
        assert_eq!(t.goid_of(a), t.goid_of(b));
        assert_ne!(t.goid_of(a), t.goid_of(c));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn null_keys_become_singletons() {
        let mut db0 = ComponentDb::new(DbId::new(0), "DB0", keyed_schema());
        let mut db1 = ComponentDb::new(DbId::new(1), "DB1", keyed_schema());
        let a = db0
            .insert_named("Student", &[("name", Value::text("X"))])
            .unwrap();
        let b = db1
            .insert_named("Student", &[("name", Value::text("X"))])
            .unwrap();
        let global = integrate(
            &[(DbId::new(0), db0.schema()), (DbId::new(1), db1.schema())],
            &Correspondences::new(),
        )
        .unwrap();
        let cat = identify_isomerism(&[&db0, &db1], &global).unwrap();
        let class = global.class_id("Student").unwrap();
        let t = cat.table(class);
        assert_ne!(t.goid_of(a), t.goid_of(b));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn missing_key_attribute_means_singletons() {
        // DB1's Student has no s-no at all; its objects can't join groups.
        let unkeyed =
            ComponentSchema::new(vec![ClassDef::new("Student").attr("name", AttrType::text())])
                .unwrap();
        let mut db0 = ComponentDb::new(DbId::new(0), "DB0", keyed_schema());
        let mut db1 = ComponentDb::new(DbId::new(1), "DB1", unkeyed);
        let a = db0
            .insert_named(
                "Student",
                &[("s-no", Value::Int(1)), ("name", Value::text("J"))],
            )
            .unwrap();
        let b = db1
            .insert_named("Student", &[("name", Value::text("J"))])
            .unwrap();
        let global = integrate(
            &[(DbId::new(0), db0.schema()), (DbId::new(1), db1.schema())],
            &Correspondences::new(),
        )
        .unwrap();
        let cat = identify_isomerism(&[&db0, &db1], &global).unwrap();
        let class = global.class_id("Student").unwrap();
        let t = cat.table(class);
        assert_ne!(t.goid_of(a), t.goid_of(b));
    }

    #[test]
    fn no_key_class_is_all_singletons() {
        let schema =
            ComponentSchema::new(vec![ClassDef::new("Address").attr("city", AttrType::text())])
                .unwrap();
        let mut db0 = ComponentDb::new(DbId::new(0), "DB0", schema);
        let a = db0
            .insert_named("Address", &[("city", Value::text("Taipei"))])
            .unwrap();
        let b = db0
            .insert_named("Address", &[("city", Value::text("Taipei"))])
            .unwrap();
        let global = integrate(&[(DbId::new(0), db0.schema())], &Correspondences::new()).unwrap();
        let cat = identify_isomerism(&[&db0], &global).unwrap();
        let class = global.class_id("Address").unwrap();
        assert_ne!(cat.table(class).goid_of(a), cat.table(class).goid_of(b));
    }

    #[test]
    fn duplicate_key_in_one_db_rejected() {
        let mut db0 = ComponentDb::new(DbId::new(0), "DB0", keyed_schema());
        db0.insert_named("Student", &[("s-no", Value::Int(1))])
            .unwrap();
        db0.insert_named("Student", &[("s-no", Value::Int(1))])
            .unwrap();
        let global = integrate(&[(DbId::new(0), db0.schema())], &Correspondences::new()).unwrap();
        let err = identify_isomerism(&[&db0], &global).unwrap_err();
        assert!(matches!(err, SchemaError::DuplicateEntityInDb { .. }));
    }

    #[test]
    fn deterministic_goid_assignment() {
        let build = || {
            let mut db0 = ComponentDb::new(DbId::new(0), "DB0", keyed_schema());
            let mut db1 = ComponentDb::new(DbId::new(1), "DB1", keyed_schema());
            for i in 0..10 {
                db0.insert_named("Student", &[("s-no", Value::Int(i))])
                    .unwrap();
                db1.insert_named("Student", &[("s-no", Value::Int(i + 5))])
                    .unwrap();
            }
            let global = integrate(
                &[(DbId::new(0), db0.schema()), (DbId::new(1), db1.schema())],
                &Correspondences::new(),
            )
            .unwrap();
            let cat = identify_isomerism(&[&db0, &db1], &global).unwrap();
            let class = global.class_id("Student").unwrap();
            let mut pairs: Vec<(LOid, Option<fedoq_object::GOid>)> = db0
                .extent_by_name("Student")
                .unwrap()
                .loids()
                .map(|l| (l, cat.table(class).goid_of(l)))
                .collect();
            pairs.sort();
            pairs
        };
        assert_eq!(build(), build());
    }
}
