//! GOid mapping tables.
//!
//! Each real-world entity gets one [`GOid`]; the mapping tables associate
//! it with the LOids of its isomeric objects across component databases
//! (the paper's Figure 5). The catalog is *replicated at every site*: the
//! simulation charges local CPU time, not network transfer, for probes.

use fedoq_object::{DbId, GOid, GlobalClassId, LOid};
use std::collections::HashMap;

/// Number of shards in each [`GoidTable`]. Sharding bounds rehash pauses
/// at the 10^6–10^7 entity scale (a full-table rehash would stall the
/// certification path) and gives parallel certification probes disjoint
/// regions to walk.
pub const GOID_SHARDS: usize = 16;

#[inline]
fn goid_shard(goid: GOid) -> usize {
    (goid.serial() as usize) & (GOID_SHARDS - 1)
}

#[inline]
fn loid_shard(loid: LOid) -> usize {
    // Cheap mix of site and serial; the low serial bits alone would put
    // every site's object k in the same shard.
    ((loid.serial() ^ (u64::from(loid.db().raw()) << 3)) as usize) & (GOID_SHARDS - 1)
}

/// The GOid mapping table of one global class, sharded [`GOID_SHARDS`]
/// ways on both directions of the mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoidTable {
    entries: Vec<HashMap<GOid, Vec<LOid>>>,
    reverse: Vec<HashMap<LOid, GOid>>,
}

impl Default for GoidTable {
    fn default() -> GoidTable {
        GoidTable {
            entries: vec![HashMap::new(); GOID_SHARDS],
            reverse: vec![HashMap::new(); GOID_SHARDS],
        }
    }
}

impl GoidTable {
    /// An empty table.
    pub fn new() -> GoidTable {
        GoidTable::default()
    }

    /// Number of distinct entities (GOids).
    pub fn len(&self) -> usize {
        self.entries.iter().map(HashMap::len).sum()
    }

    /// `true` iff no entities are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(HashMap::is_empty)
    }

    /// The GOid of a local object, if registered.
    pub fn goid_of(&self, loid: LOid) -> Option<GOid> {
        self.reverse[loid_shard(loid)].get(&loid).copied()
    }

    /// The isomeric objects of an entity (all registered LOids).
    pub fn loids_of(&self, goid: GOid) -> &[LOid] {
        self.entries[goid_shard(goid)]
            .get(&goid)
            .map_or(&[], Vec::as_slice)
    }

    /// The isomeric siblings of `loid`: the entity's other LOids.
    pub fn siblings(&self, loid: LOid) -> impl Iterator<Item = LOid> + '_ {
        let goid = self.goid_of(loid);
        goid.into_iter()
            .flat_map(move |g| self.loids_of(g).iter().copied())
            .filter(move |&l| l != loid)
    }

    /// The entity's LOid inside database `db`, if the entity has an
    /// isomeric object there.
    pub fn loid_in_db(&self, goid: GOid, db: DbId) -> Option<LOid> {
        self.loids_of(goid).iter().copied().find(|l| l.db() == db)
    }

    /// Iterates over `(goid, loids)` entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (GOid, &[LOid])> {
        self.entries
            .iter()
            .flat_map(|shard| shard.iter().map(|(g, v)| (*g, v.as_slice())))
    }

    /// Number of shards (constant, but callers shouldn't hardcode it).
    pub fn num_shards(&self) -> usize {
        GOID_SHARDS
    }

    /// One shard's entities, for parallel certification sweeps. Entities
    /// are distributed by GOid; the union over all shards is [`iter`].
    ///
    /// # Panics
    ///
    /// Panics if `shard >= num_shards()`.
    ///
    /// [`iter`]: GoidTable::iter
    pub fn shard(&self, shard: usize) -> impl Iterator<Item = (GOid, &[LOid])> {
        self.entries[shard].iter().map(|(g, v)| (*g, v.as_slice()))
    }

    fn register(&mut self, goid: GOid, group: &[LOid]) {
        for &loid in group {
            self.reverse[loid_shard(loid)].insert(loid, goid);
        }
        self.entries[goid_shard(goid)].insert(goid, group.to_vec());
    }

    fn add_member(&mut self, goid: GOid, loid: LOid) {
        self.reverse[loid_shard(loid)].insert(loid, goid);
        let group = self.entries[goid_shard(goid)].entry(goid).or_default();
        if !group.contains(&loid) {
            group.push(loid);
        }
    }

    /// Removes one LOid; returns its GOid and whether the entity vanished
    /// (lost its last member).
    fn remove_member(&mut self, loid: LOid) -> Option<(GOid, bool)> {
        let goid = self.reverse[loid_shard(loid)].remove(&loid)?;
        let shard = &mut self.entries[goid_shard(goid)];
        let mut emptied = false;
        if let Some(group) = shard.get_mut(&goid) {
            group.retain(|&l| l != loid);
            if group.is_empty() {
                shard.remove(&goid);
                emptied = true;
            }
        }
        Some((goid, emptied))
    }
}

/// The full set of GOid mapping tables, one per global class, plus the
/// federation-wide GOid allocator.
///
/// # Example
///
/// ```
/// use fedoq_object::{DbId, GlobalClassId, LOid};
/// use fedoq_schema::GoidCatalog;
///
/// let mut catalog = GoidCatalog::new(1);
/// let class = GlobalClassId::new(0);
/// let s1 = LOid::new(DbId::new(0), 0);
/// let s2 = LOid::new(DbId::new(1), 0);
/// let g = catalog.register(class, &[s1, s2]); // isomeric pair
/// assert_eq!(catalog.table(class).goid_of(s1), Some(g));
/// assert_eq!(catalog.table(class).loid_in_db(g, DbId::new(1)), Some(s2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoidCatalog {
    tables: Vec<GoidTable>,
    next: u64,
}

impl GoidCatalog {
    /// Creates a catalog with one empty table per global class.
    pub fn new(num_classes: usize) -> GoidCatalog {
        GoidCatalog {
            tables: vec![GoidTable::new(); num_classes],
            next: 0,
        }
    }

    /// Registers one entity: the group of isomeric LOids representing it.
    /// Returns the freshly-allocated GOid (unique across all classes).
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range or `group` is empty.
    pub fn register(&mut self, class: GlobalClassId, group: &[LOid]) -> GOid {
        assert!(
            !group.is_empty(),
            "an entity must have at least one local object"
        );
        let goid = GOid::new(self.next);
        self.next += 1;
        self.tables[class.index()].register(goid, group);
        goid
    }

    /// Adds `loid` as a further isomeric member of an existing entity
    /// (incremental maintenance: an insert whose key matched `goid`).
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn add_member(&mut self, class: GlobalClassId, goid: GOid, loid: LOid) {
        self.tables[class.index()].add_member(goid, loid);
    }

    /// Removes `loid` from whichever entity holds it, searching all
    /// classes (a retracted object's class is no longer known). Returns
    /// the class, the GOid, and whether the entity lost its last member.
    pub fn remove_member(&mut self, loid: LOid) -> Option<(GlobalClassId, GOid, bool)> {
        for (index, table) in self.tables.iter_mut().enumerate() {
            if let Some((goid, emptied)) = table.remove_member(loid) {
                return Some((GlobalClassId::new(index as u32), goid, emptied));
            }
        }
        None
    }

    /// The mapping table of one global class.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn table(&self, class: GlobalClassId) -> &GoidTable {
        &self.tables[class.index()]
    }

    /// Number of global classes covered.
    pub fn num_classes(&self) -> usize {
        self.tables.len()
    }

    /// Total number of registered entities across all classes.
    pub fn total_entities(&self) -> usize {
        self.tables.iter().map(GoidTable::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loid(db: u16, n: u64) -> LOid {
        LOid::new(DbId::new(db), n)
    }

    #[test]
    fn register_and_lookup() {
        let mut cat = GoidCatalog::new(2);
        let c0 = GlobalClassId::new(0);
        let g1 = cat.register(c0, &[loid(0, 1), loid(1, 4)]);
        let g2 = cat.register(c0, &[loid(0, 2)]);
        assert_ne!(g1, g2);
        assert_eq!(cat.table(c0).goid_of(loid(1, 4)), Some(g1));
        assert_eq!(cat.table(c0).goid_of(loid(0, 2)), Some(g2));
        assert_eq!(cat.table(c0).goid_of(loid(0, 9)), None);
        assert_eq!(cat.table(c0).loids_of(g1), &[loid(0, 1), loid(1, 4)]);
        assert_eq!(cat.total_entities(), 2);
        assert_eq!(cat.num_classes(), 2);
    }

    #[test]
    fn goids_unique_across_classes() {
        let mut cat = GoidCatalog::new(2);
        let a = cat.register(GlobalClassId::new(0), &[loid(0, 1)]);
        let b = cat.register(GlobalClassId::new(1), &[loid(0, 2)]);
        assert_ne!(a, b);
    }

    #[test]
    fn siblings_exclude_self() {
        let mut cat = GoidCatalog::new(1);
        let c0 = GlobalClassId::new(0);
        cat.register(c0, &[loid(0, 1), loid(1, 1), loid(2, 1)]);
        let sibs: Vec<LOid> = cat.table(c0).siblings(loid(1, 1)).collect();
        assert_eq!(sibs, vec![loid(0, 1), loid(2, 1)]);
        // Unregistered LOid has no siblings.
        assert_eq!(cat.table(c0).siblings(loid(5, 5)).count(), 0);
    }

    #[test]
    fn loid_in_db_finds_the_local_copy() {
        let mut cat = GoidCatalog::new(1);
        let c0 = GlobalClassId::new(0);
        let g = cat.register(c0, &[loid(0, 1), loid(2, 7)]);
        assert_eq!(cat.table(c0).loid_in_db(g, DbId::new(2)), Some(loid(2, 7)));
        assert_eq!(cat.table(c0).loid_in_db(g, DbId::new(1)), None);
    }

    #[test]
    fn iter_covers_all_entities() {
        let mut cat = GoidCatalog::new(1);
        let c0 = GlobalClassId::new(0);
        cat.register(c0, &[loid(0, 1)]);
        cat.register(c0, &[loid(0, 2), loid(1, 2)]);
        let total: usize = cat.table(c0).iter().map(|(_, ls)| ls.len()).sum();
        assert_eq!(total, 3);
        assert!(!cat.table(c0).is_empty());
        assert_eq!(cat.table(c0).len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one local object")]
    fn empty_group_rejected() {
        let mut cat = GoidCatalog::new(1);
        cat.register(GlobalClassId::new(0), &[]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Random groups of distinct LOids (one per database).
        fn arb_groups() -> impl Strategy<Value = Vec<Vec<LOid>>> {
            proptest::collection::vec(
                proptest::collection::btree_set(0u16..6, 1..4).prop_map(|dbs| {
                    dbs.into_iter()
                        .map(|db| LOid::new(DbId::new(db), u64::from(db) * 1000))
                        .collect::<Vec<_>>()
                }),
                0..20,
            )
        }

        proptest! {
            /// Every registered LOid resolves to its group's GOid, and
            /// sibling sets partition correctly.
            #[test]
            fn registration_round_trips(groups in arb_groups()) {
                let mut cat = GoidCatalog::new(1);
                let class = GlobalClassId::new(0);
                let mut goids = Vec::new();
                // Make LOids globally unique across groups by offsetting
                // the serials per group.
                let groups: Vec<Vec<LOid>> = groups
                    .into_iter()
                    .enumerate()
                    .map(|(i, g)| {
                        g.into_iter()
                            .map(|l| LOid::new(l.db(), l.serial() + i as u64))
                            .collect()
                    })
                    .collect();
                for group in &groups {
                    goids.push(cat.register(class, group));
                }
                prop_assert_eq!(cat.table(class).len(), groups.len());
                for (group, goid) in groups.iter().zip(&goids) {
                    for &loid in group {
                        prop_assert_eq!(cat.table(class).goid_of(loid), Some(*goid));
                        let siblings: Vec<LOid> =
                            cat.table(class).siblings(loid).collect();
                        prop_assert_eq!(siblings.len(), group.len() - 1);
                        for s in siblings {
                            prop_assert!(group.contains(&s));
                            prop_assert_ne!(s, loid);
                        }
                    }
                    // Per-database lookup agrees with membership.
                    for &loid in group {
                        prop_assert_eq!(
                            cat.table(class).loid_in_db(*goid, loid.db()),
                            Some(loid)
                        );
                    }
                }
                // GOids are unique.
                let mut sorted = goids.clone();
                sorted.sort();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), goids.len());
            }
        }
    }
}
