//! An omniscient, zero-cost evaluator used to validate the strategies.
//!
//! The oracle answers a bound query by consulting every component
//! database directly (no shipping, no phases, no cost model) with the
//! federation's merge semantics: an attribute of an entity is the first
//! non-null value among its isomeric copies. All three strategies must
//! produce the oracle's classification; the property-based integration
//! tests enforce this.

use crate::federation::Federation;
use crate::result::{MaybeRow, QueryAnswer, ResultRow};
use fedoq_object::{GOid, GlobalClassId, Truth, Value};
use fedoq_query::{bind, BoundPath, BoundQuery, DnfQuery};

/// Computes the ground-truth answer for `query` over `fed`.
///
/// # Example
///
/// ```no_run
/// use fedoq_core::{oracle_answer, Federation};
/// # fn get_fed() -> Federation { unimplemented!() }
/// let fed = get_fed();
/// let query = fed.parse_and_bind("SELECT X.name FROM Student X WHERE X.age > 30")?;
/// let truth = oracle_answer(&fed, &query);
/// # Ok::<(), fedoq_core::ExecError>(())
/// ```
pub fn oracle_answer(fed: &Federation, query: &BoundQuery) -> QueryAnswer {
    let table = fed.catalog().table(query.range());
    let mut roots: Vec<GOid> = table.iter().map(|(g, _)| g).collect();
    roots.sort();

    let mut certain = Vec::new();
    let mut maybe = Vec::new();
    for goid in roots {
        let mut eliminated = false;
        let mut unsolved = Vec::new();
        for pred in query.predicates() {
            let value = walk(fed, goid, pred.path());
            match value.compare(pred.op(), pred.literal()) {
                Truth::True => {}
                Truth::False => {
                    eliminated = true;
                    break;
                }
                Truth::Unknown => unsolved.push(pred.id()),
            }
        }
        if eliminated {
            continue;
        }
        let values = query.targets().iter().map(|t| walk(fed, goid, t)).collect();
        let row = ResultRow::new(goid, values);
        if unsolved.is_empty() {
            certain.push(row);
        } else {
            maybe.push(MaybeRow::new(row, unsolved));
        }
    }
    QueryAnswer::new(certain, maybe)
}

/// Ground truth for a disjunctive query: the Kleene-OR merge of the
/// per-branch oracle answers.
///
/// # Panics
///
/// Panics if a branch fails to bind against the federation's global
/// schema (callers validate queries first).
pub fn oracle_disjunctive(fed: &Federation, query: &DnfQuery) -> QueryAnswer {
    let answers: Vec<QueryAnswer> = query
        .branches()
        .iter()
        .map(|branch| {
            let bound = bind(branch, fed.global_schema()).expect("branch binds");
            oracle_answer(fed, &bound)
        })
        .collect();
    crate::disjunctive::merge_branches(query, &answers)
}

/// The merged value of one global attribute of one entity: the first
/// non-null value among the entity's isomeric copies, with local
/// references lifted to global identities. Shared with `crate::condition`,
/// whose atom collection must agree with this merge exactly.
pub(crate) fn merged_value(
    fed: &Federation,
    class: GlobalClassId,
    goid: GOid,
    slot: usize,
) -> Value {
    let global_class = fed.global_schema().class(class);
    let domain = global_class.attr(slot).ty().domain();
    for &loid in fed.catalog().table(class).loids_of(goid) {
        let Some(constituent) = global_class.constituent_for(loid.db()) else {
            continue;
        };
        let Some(local) = constituent.local_slot(slot) else {
            continue;
        };
        let Some(object) = fed.db(loid.db()).object(loid) else {
            continue;
        };
        let value = object.value(local);
        if value.is_null() {
            continue;
        }
        return match (domain, value) {
            (Some(d), Value::Ref(target)) => fed
                .catalog()
                .table(d)
                .goid_of(*target)
                .map_or(Value::Null, Value::GRef),
            _ => value.clone(),
        };
    }
    Value::Null
}

/// Walks a bound path through merged entities.
fn walk(fed: &Federation, root: GOid, path: &BoundPath) -> Value {
    let mut goid = root;
    let n = path.len();
    for i in 0..n {
        let value = merged_value(fed, path.class(i), goid, path.slot(i));
        if i + 1 == n {
            return value;
        }
        match value {
            Value::GRef(next) => goid = next,
            _ => return Value::Null,
        }
    }
    unreachable!("paths are non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::run_strategy;
    use crate::Centralized;
    use fedoq_object::DbId;
    use fedoq_schema::Correspondences;
    use fedoq_sim::SystemParams;
    use fedoq_store::{AttrType, ClassDef, ComponentDb, ComponentSchema};

    fn fed() -> Federation {
        let s0 = ComponentSchema::new(vec![
            ClassDef::new("Dept")
                .attr("name", AttrType::text())
                .key(["name"]),
            ClassDef::new("Emp")
                .attr("id", AttrType::int())
                .attr("dept", AttrType::complex("Dept"))
                .key(["id"]),
        ])
        .unwrap();
        let s1 = ComponentSchema::new(vec![ClassDef::new("Emp")
            .attr("id", AttrType::int())
            .attr("salary", AttrType::int())
            .key(["id"])])
        .unwrap();
        let mut db0 = ComponentDb::new(DbId::new(0), "DB0", s0);
        let mut db1 = ComponentDb::new(DbId::new(1), "DB1", s1);
        let d = db0
            .insert_named("Dept", &[("name", Value::text("CS"))])
            .unwrap();
        db0.insert_named("Emp", &[("id", Value::Int(1)), ("dept", Value::Ref(d))])
            .unwrap();
        db1.insert_named("Emp", &[("id", Value::Int(1)), ("salary", Value::Int(90))])
            .unwrap();
        db1.insert_named("Emp", &[("id", Value::Int(2)), ("salary", Value::Int(50))])
            .unwrap();
        Federation::new(vec![db0, db1], &Correspondences::new()).unwrap()
    }

    #[test]
    fn oracle_merges_across_copies_and_classes() {
        let f = fed();
        let q = f
            .parse_and_bind("SELECT X.id FROM Emp X WHERE X.dept.name = 'CS' AND X.salary > 60")
            .unwrap();
        let a = oracle_answer(&f, &q);
        // Entity 1: dept CS (DB0) + salary 90 (DB1) => certain.
        assert_eq!(a.certain().len(), 1);
        assert_eq!(a.certain()[0].values(), &[Value::Int(1)]);
        // Entity 2: salary 50 => eliminated (dept unknown is irrelevant).
        assert!(a.maybe().is_empty());
    }

    #[test]
    fn oracle_agrees_with_centralized() {
        let f = fed();
        for sql in [
            "SELECT X.id FROM Emp X WHERE X.salary > 60",
            "SELECT X.id FROM Emp X WHERE X.dept.name = 'CS'",
            "SELECT X.salary FROM Emp X WHERE X.dept.name != 'EE'",
            "SELECT X.id FROM Emp X",
        ] {
            let q = f.parse_and_bind(sql).unwrap();
            let oracle = oracle_answer(&f, &q);
            let (ca, _) =
                run_strategy(&Centralized, &f, &q, SystemParams::paper_default()).unwrap();
            assert!(oracle.same_classification(&ca), "disagreement on {sql}");
            // CA materializes the same merged values, so full equality holds.
            assert_eq!(oracle, ca, "value disagreement on {sql}");
        }
    }

    #[test]
    fn maybe_results_report_unsolved_predicates() {
        let f = fed();
        let q = f
            .parse_and_bind("SELECT X.id FROM Emp X WHERE X.dept.name = 'CS' AND X.salary > 10")
            .unwrap();
        let a = oracle_answer(&f, &q);
        assert_eq!(a.certain().len(), 1);
        assert_eq!(a.maybe().len(), 1); // entity 2: dept unknown, salary ok
        let unsolved: Vec<_> = a.maybe()[0].unsolved().collect();
        assert_eq!(unsolved.len(), 1);
        assert_eq!(unsolved[0].index(), 0);
    }
}
