//! Disjunctive-query execution — the paper's future-work extension.
//!
//! A [`DnfQuery`] runs as the union of its conjunctive branches, each
//! executed by the chosen strategy within one shared simulation (so the
//! metrics cover the whole disjunction). Under Kleene semantics the
//! branch answers merge as a three-valued OR per entity:
//!
//! * **certain** in any branch → certain;
//! * **maybe** in some branch and certain in none → maybe, with the
//!   unsolved conjuncts renumbered into the DNF query's global conjunct
//!   numbering ([`DnfQuery::branch_offset`]);
//! * absent from every branch → eliminated.

use crate::error::ExecError;
use crate::federation::Federation;
use crate::result::{MaybeRow, QueryAnswer, ResultRow};
use crate::strategy::ExecutionStrategy;
use fedoq_object::{GOid, Value};
use fedoq_query::{bind, DnfQuery, PredId};
use fedoq_sim::Simulation;
use std::collections::BTreeSet;
use std::collections::HashMap;

/// Executes a disjunctive query with `strategy`, one branch at a time,
/// and merges the branch answers.
///
/// # Errors
///
/// Returns [`ExecError::Query`] if a branch fails to bind (e.g. a
/// predicate on an attribute the global schema lacks) and propagates the
/// strategy's errors.
///
/// # Example
///
/// ```no_run
/// use fedoq_core::{run_disjunctive, BasicLocalized, Federation};
/// use fedoq_query::parse_dnf;
/// use fedoq_sim::{Simulation, SystemParams};
/// # fn get_fed() -> Federation { unimplemented!() }
/// let fed = get_fed();
/// let query = parse_dnf("SELECT X.name FROM Student X WHERE X.age < 25 OR X.age > 60")?;
/// let mut sim = Simulation::new(SystemParams::paper_default(), fed.num_dbs());
/// let answer = run_disjunctive(&BasicLocalized::new(), &fed, &query, &mut sim)?;
/// println!("{answer}: {}", sim.metrics());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_disjunctive<S: ExecutionStrategy + ?Sized>(
    strategy: &S,
    fed: &Federation,
    query: &DnfQuery,
    sim: &mut Simulation,
) -> Result<QueryAnswer, ExecError> {
    let mut branch_answers = Vec::with_capacity(query.num_branches());
    for branch in query.branches() {
        let bound = bind(&branch, fed.global_schema())?;
        branch_answers.push(strategy.execute(fed, &bound, sim)?);
    }
    Ok(merge_branches(query, &branch_answers))
}

/// Merges per-branch answers under three-valued OR.
pub(crate) fn merge_branches(query: &DnfQuery, branches: &[QueryAnswer]) -> QueryAnswer {
    // Entity -> best-known state. Certain dominates maybe.
    let mut certain: HashMap<GOid, Vec<Value>> = HashMap::new();
    let mut maybe: HashMap<GOid, (Vec<Value>, BTreeSet<PredId>)> = HashMap::new();

    for (b, answer) in branches.iter().enumerate() {
        let offset = query.branch_offset(b);
        for row in answer.certain() {
            maybe.remove(&row.goid());
            certain
                .entry(row.goid())
                .or_insert_with(|| row.values().to_vec());
        }
        for m in answer.maybe() {
            if certain.contains_key(&m.goid()) {
                continue;
            }
            let entry = maybe
                .entry(m.goid())
                .or_insert_with(|| (m.row().values().to_vec(), BTreeSet::new()));
            for p in m.unsolved() {
                entry.1.insert(PredId::new(offset + p.index()));
            }
            // Prefer non-null target values from any branch.
            for (slot, value) in m.row().values().iter().enumerate() {
                if entry.0[slot].is_null() && !value.is_null() {
                    entry.0[slot] = value.clone();
                }
            }
        }
    }

    let certain_rows = certain
        .into_iter()
        .map(|(goid, values)| ResultRow::new(goid, values))
        .collect();
    let maybe_rows = maybe
        .into_iter()
        .map(|(goid, (values, unsolved))| MaybeRow::new(ResultRow::new(goid, values), unsolved))
        .collect();
    QueryAnswer::new(certain_rows, maybe_rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::run_strategy;
    use crate::{BasicLocalized, Centralized, ParallelLocalized};
    use fedoq_object::DbId;
    use fedoq_query::parse_dnf;
    use fedoq_schema::Correspondences;
    use fedoq_sim::SystemParams;
    use fedoq_store::{AttrType, ClassDef, ComponentDb, ComponentSchema};

    /// DB0 knows ages, DB1 knows cities; students keyed by sid.
    fn fed() -> Federation {
        let s0 = ComponentSchema::new(vec![ClassDef::new("Student")
            .attr("sid", AttrType::int())
            .attr("age", AttrType::int())
            .key(["sid"])])
        .unwrap();
        let s1 = ComponentSchema::new(vec![ClassDef::new("Student")
            .attr("sid", AttrType::int())
            .attr("city", AttrType::text())
            .key(["sid"])])
        .unwrap();
        let mut db0 = ComponentDb::new(DbId::new(0), "DB0", s0);
        let mut db1 = ComponentDb::new(DbId::new(1), "DB1", s1);
        // 1: age 20 (young) — certain via the first branch.
        db0.insert_named(
            "Student",
            &[("sid", Value::Int(1)), ("age", Value::Int(20))],
        )
        .unwrap();
        // 2: age 40, city Taipei — certain via the second branch only.
        db0.insert_named(
            "Student",
            &[("sid", Value::Int(2)), ("age", Value::Int(40))],
        )
        .unwrap();
        db1.insert_named(
            "Student",
            &[("sid", Value::Int(2)), ("city", Value::text("Taipei"))],
        )
        .unwrap();
        // 3: age 40, city unknown — maybe (second branch unknown).
        db0.insert_named(
            "Student",
            &[("sid", Value::Int(3)), ("age", Value::Int(40))],
        )
        .unwrap();
        // 4: age 40, city HsinChu — eliminated by both branches.
        db0.insert_named(
            "Student",
            &[("sid", Value::Int(4)), ("age", Value::Int(40))],
        )
        .unwrap();
        db1.insert_named(
            "Student",
            &[("sid", Value::Int(4)), ("city", Value::text("HsinChu"))],
        )
        .unwrap();
        Federation::new(vec![db0, db1], &Correspondences::new()).unwrap()
    }

    const DNF: &str = "SELECT X.sid FROM Student X WHERE X.age < 25 OR X.city = 'Taipei'";

    #[test]
    fn kleene_or_merge_across_branches() {
        let f = fed();
        let q = parse_dnf(DNF).unwrap();
        for strategy in [
            &Centralized as &dyn ExecutionStrategy,
            &BasicLocalized::new(),
            &ParallelLocalized::new(),
        ] {
            let mut sim = Simulation::new(SystemParams::paper_default(), f.num_dbs());
            let answer = run_disjunctive(strategy, &f, &q, &mut sim).unwrap();
            let certain: Vec<i64> = answer
                .certain()
                .iter()
                .map(|r| match &r.values()[0] {
                    Value::Int(v) => *v,
                    other => panic!("unexpected {other}"),
                })
                .collect();
            assert_eq!(certain, vec![1, 2], "{}", strategy.name());
            assert_eq!(answer.maybe().len(), 1, "{}", strategy.name());
            assert_eq!(answer.maybe()[0].row().values(), &[Value::Int(3)]);
            // The unsolved conjunct is the second branch's city predicate,
            // reported in global numbering (offset 1).
            let unsolved: Vec<usize> = answer.maybe()[0]
                .unsolved()
                .map(fedoq_query::PredId::index)
                .collect();
            assert_eq!(unsolved, vec![1], "{}", strategy.name());
            // Entity 4 is gone entirely.
            assert_eq!(answer.len(), 3);
            let m = sim.metrics();
            assert!(m.total_execution_us > 0.0);
        }
    }

    #[test]
    fn certain_in_any_branch_dominates_maybe() {
        let f = fed();
        // Entity 3 is maybe under the city branch but *certain* under a
        // wider age branch — the merge must report it certain once.
        let q = parse_dnf("SELECT X.sid FROM Student X WHERE X.age >= 35 OR X.city = 'Taipei'")
            .unwrap();
        let mut sim = Simulation::new(SystemParams::paper_default(), f.num_dbs());
        let answer = run_disjunctive(&Centralized, &f, &q, &mut sim).unwrap();
        assert_eq!(answer.certain().len(), 3); // 2, 3, 4
                                               // Entity 1 fails the age branch but nobody knows its city: the
                                               // city branch keeps it maybe.
        assert_eq!(answer.maybe().len(), 1);
        assert_eq!(answer.maybe()[0].row().values(), &[Value::Int(1)]);
        let unsolved: Vec<usize> = answer.maybe()[0]
            .unsolved()
            .map(fedoq_query::PredId::index)
            .collect();
        assert_eq!(unsolved, vec![1]);
    }

    #[test]
    fn single_branch_equals_conjunctive_execution() {
        let f = fed();
        let dnf = parse_dnf("SELECT X.sid FROM Student X WHERE X.age < 25").unwrap();
        let mut sim = Simulation::new(SystemParams::paper_default(), f.num_dbs());
        let via_dnf = run_disjunctive(&BasicLocalized::new(), &f, &dnf, &mut sim).unwrap();
        let bound = f
            .parse_and_bind("SELECT X.sid FROM Student X WHERE X.age < 25")
            .unwrap();
        let (direct, _) = run_strategy(
            &BasicLocalized::new(),
            &f,
            &bound,
            SystemParams::paper_default(),
        )
        .unwrap();
        assert_eq!(via_dnf, direct);
    }

    #[test]
    fn metrics_accumulate_over_branches() {
        let f = fed();
        let one = parse_dnf("SELECT X.sid FROM Student X WHERE X.age < 25").unwrap();
        let two = parse_dnf(DNF).unwrap();
        let mut sim1 = Simulation::new(SystemParams::paper_default(), f.num_dbs());
        run_disjunctive(&Centralized, &f, &one, &mut sim1).unwrap();
        let mut sim2 = Simulation::new(SystemParams::paper_default(), f.num_dbs());
        run_disjunctive(&Centralized, &f, &two, &mut sim2).unwrap();
        assert!(sim2.metrics().total_execution_us > sim1.metrics().total_execution_us);
    }
}
