//! The localized approaches: BL (P → O → I) and PL (O → P → I).
//!
//! The global query is decomposed into local queries. Each site evaluates
//! its *local predicates* (predicates it can navigate) over its local root
//! class, producing local maybe rows; predicates blocked by missing
//! attributes or nulls stay *unsolved*, and the site looks up the
//! *assistant objects* (isomeric copies that might hold the missing data)
//! in the replicated GOid mapping tables, sending check requests to the
//! sites owning them. The global site finally *certifies* the merged local
//! results with the check replies (see [`crate::certify`]).
//!
//! **BL** performs assistant lookup *after* local evaluation, so only the
//! surviving maybe results generate checks. **PL** performs the lookup for
//! every candidate object *before* local evaluation, putting its check
//! requests on the wire early so remote checking overlaps local predicate
//! evaluation — at the price of checking objects that local evaluation
//! would have eliminated.
//!
//! With `use_signatures`, a site first probes the replicated object
//! signatures before requesting a check: an equality predicate whose value
//! bits and null marker are both absent from the assistant's signature is
//! a definite violation — the row is eliminated locally and nothing is
//! transferred. Signature pruning never changes answers.

use crate::cache::{query_fingerprint, CacheKey, CacheValue, LookupCache};
use crate::certify::{certify, CheckReplies};
use crate::error::ExecError;
use crate::federation::Federation;
use crate::pipeline::PipelineConfig;
use crate::result::QueryAnswer;
use crate::strategy::ExecutionStrategy;
use fedoq_object::{CmpOp, DbId, GOid, GlobalClassId, LOid, Object, Path, Truth, Value};
use fedoq_query::{plan_for_db, BoundQuery, PredDisposition, PredId, SitePlan};
use fedoq_sim::{MessageToken, Phase, Simulation, Site, SystemParams};
use fedoq_store::{
    map_chunks, worker_shares, CompiledPath, CompiledPredicate, ComponentDb, EvalCounter, Extent,
    IndexKey,
};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

/// The basic localized strategy (the paper's algorithm **BL**).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BasicLocalized {
    /// Prune assistant checks with replicated object signatures.
    pub use_signatures: bool,
    /// Fetch locally-unprojectable target values from assistant objects
    /// (FedOQ extension; the paper projects local attributes only).
    pub complete_targets: bool,
}

impl BasicLocalized {
    /// BL without signatures (the paper's base algorithm).
    pub fn new() -> BasicLocalized {
        BasicLocalized::default()
    }

    /// BL with signature pruning (the paper's proposed extension).
    pub fn with_signatures() -> BasicLocalized {
        BasicLocalized {
            use_signatures: true,
            ..BasicLocalized::default()
        }
    }

    /// Enables target completion (chainable).
    pub fn completing_targets(mut self) -> BasicLocalized {
        self.complete_targets = true;
        self
    }
}

impl ExecutionStrategy for BasicLocalized {
    fn name(&self) -> &'static str {
        if self.use_signatures {
            "BL-S"
        } else {
            "BL"
        }
    }

    fn execute(
        &self,
        fed: &Federation,
        query: &BoundQuery,
        sim: &mut Simulation,
    ) -> Result<QueryAnswer, ExecError> {
        execute_localized(
            fed,
            query,
            sim,
            LocalizedMode::Basic,
            LocalizedConfig {
                use_signatures: self.use_signatures,
                complete_targets: self.complete_targets,
            },
        )
    }

    fn execute_with(
        &self,
        fed: &Federation,
        query: &BoundQuery,
        sim: &mut Simulation,
        pipeline: PipelineConfig,
        cache: Option<&RefCell<LookupCache>>,
    ) -> Result<QueryAnswer, ExecError> {
        execute_localized_with(
            fed,
            query,
            sim,
            LocalizedMode::Basic,
            LocalizedConfig {
                use_signatures: self.use_signatures,
                complete_targets: self.complete_targets,
            },
            pipeline,
            cache,
        )
    }
}

/// The parallel localized strategy (the paper's algorithm **PL**).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParallelLocalized {
    /// Prune assistant checks with replicated object signatures.
    pub use_signatures: bool,
    /// Fetch locally-unprojectable target values from assistant objects
    /// (FedOQ extension; the paper projects local attributes only).
    pub complete_targets: bool,
}

impl ParallelLocalized {
    /// PL without signatures (the paper's base algorithm).
    pub fn new() -> ParallelLocalized {
        ParallelLocalized::default()
    }

    /// PL with signature pruning (the paper's proposed extension).
    pub fn with_signatures() -> ParallelLocalized {
        ParallelLocalized {
            use_signatures: true,
            ..ParallelLocalized::default()
        }
    }

    /// Enables target completion (chainable).
    pub fn completing_targets(mut self) -> ParallelLocalized {
        self.complete_targets = true;
        self
    }
}

impl ExecutionStrategy for ParallelLocalized {
    fn name(&self) -> &'static str {
        if self.use_signatures {
            "PL-S"
        } else {
            "PL"
        }
    }

    fn execute(
        &self,
        fed: &Federation,
        query: &BoundQuery,
        sim: &mut Simulation,
    ) -> Result<QueryAnswer, ExecError> {
        execute_localized(
            fed,
            query,
            sim,
            LocalizedMode::Parallel,
            LocalizedConfig {
                use_signatures: self.use_signatures,
                complete_targets: self.complete_targets,
            },
        )
    }

    fn execute_with(
        &self,
        fed: &Federation,
        query: &BoundQuery,
        sim: &mut Simulation,
        pipeline: PipelineConfig,
        cache: Option<&RefCell<LookupCache>>,
    ) -> Result<QueryAnswer, ExecError> {
        execute_localized_with(
            fed,
            query,
            sim,
            LocalizedMode::Parallel,
            LocalizedConfig {
                use_signatures: self.use_signatures,
                complete_targets: self.complete_targets,
            },
            pipeline,
            cache,
        )
    }
}

/// The hybrid localized strategy (**HY**): a per-site BL/PL assignment
/// chosen by the planner.
///
/// Sites listed in `parallel_sites` run PL's schedule (static assistant
/// lookups before local evaluation); every other site runs BL's. A site
/// whose predicates cannot produce maybe results issues no assistant
/// checks under BL, so the planner pins such *clean* sites to BL and
/// reserves PL's prefetch overlap for the sites that need it. The answer
/// is identical to BL's and PL's by the strategies' shared invariant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HybridLocalized {
    /// Sites that run PL's static-prefetch schedule.
    pub parallel_sites: Vec<DbId>,
    /// Prune assistant checks with replicated object signatures.
    pub use_signatures: bool,
    /// Fetch locally-unprojectable target values from assistant objects
    /// (FedOQ extension; the paper projects local attributes only).
    pub complete_targets: bool,
}

impl HybridLocalized {
    /// A hybrid running PL's schedule at `parallel_sites` and BL's
    /// everywhere else.
    pub fn new(parallel_sites: impl IntoIterator<Item = DbId>) -> HybridLocalized {
        HybridLocalized {
            parallel_sites: parallel_sites.into_iter().collect(),
            ..HybridLocalized::default()
        }
    }
}

impl ExecutionStrategy for HybridLocalized {
    fn name(&self) -> &'static str {
        "HY"
    }

    fn execute(
        &self,
        fed: &Federation,
        query: &BoundQuery,
        sim: &mut Simulation,
    ) -> Result<QueryAnswer, ExecError> {
        self.execute_with(fed, query, sim, PipelineConfig::sequential(), None)
    }

    fn execute_with(
        &self,
        fed: &Federation,
        query: &BoundQuery,
        sim: &mut Simulation,
        pipeline: PipelineConfig,
        cache: Option<&RefCell<LookupCache>>,
    ) -> Result<QueryAnswer, ExecError> {
        execute_localized_policy(
            fed,
            query,
            sim,
            &ModePolicy::ParallelAt(self.parallel_sites.clone()),
            LocalizedConfig {
                use_signatures: self.use_signatures,
                complete_targets: self.complete_targets,
            },
            pipeline,
            cache,
        )
    }
}

/// Which localized algorithm drives a site's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LocalizedMode {
    /// BL: assistant lookup after local evaluation (P → O → I).
    Basic,
    /// PL: static assistant lookup before local evaluation (O → P → I).
    Parallel,
}

/// How localized modes are assigned across sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModePolicy {
    /// Every site runs the same schedule (plain BL or PL).
    Uniform(LocalizedMode),
    /// The listed sites run PL's static schedule; every other site BL's.
    ParallelAt(Vec<DbId>),
}

impl ModePolicy {
    /// The schedule `db` runs under this policy.
    fn mode_for(&self, db: DbId) -> LocalizedMode {
        match self {
            ModePolicy::Uniform(mode) => *mode,
            ModePolicy::ParallelAt(sites) => {
                if sites.contains(&db) {
                    LocalizedMode::Parallel
                } else {
                    LocalizedMode::Basic
                }
            }
        }
    }
}

/// Per-execution options shared by BL and PL.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct LocalizedConfig {
    /// Prune assistant checks with replicated object signatures.
    pub use_signatures: bool,
    /// Fetch locally-unprojectable target values from assistant objects.
    pub complete_targets: bool,
}

/// One local result row produced at a component database.
#[derive(Debug, Clone)]
pub struct LocalRow {
    /// The root object this row came from.
    pub root_loid: LOid,
    /// Its entity (from the GOid mapping table).
    pub goid: GOid,
    /// Per-conjunct verdict: `True` (locally satisfied) or `Unknown`
    /// (unsolved); rows with a `False` verdict are never produced.
    pub verdicts: Vec<Truth>,
    /// The unsolved predicates and their items.
    pub unsolved: Vec<UnsolvedEntry>,
    /// Locally projected target values (null where not projectable).
    pub targets: Vec<Value>,
    /// For each target, the nested item whose assistants can supply the
    /// value when it is not locally projectable, with the step index where
    /// the unprojectable remainder begins (target completion).
    pub target_items: Vec<Option<(LOid, usize)>>,
}

/// One unsolved predicate on one local row.
#[derive(Debug, Clone)]
pub struct UnsolvedEntry {
    /// Which conjunct is unsolved.
    pub pred: PredId,
    /// The unsolved item holding the missing data: a nested branch object,
    /// or `None` when the root object itself is the item (certified by
    /// merging the other sites' local results rather than by checks).
    pub item: Option<LOid>,
}

/// A request to check one assistant object against one unsolved predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CheckRequest {
    /// The unsolved item whose assistants are being consulted.
    pub item: LOid,
    /// The assistant object to check (its `db()` is the target site).
    pub assistant: LOid,
    /// Which conjunct to check.
    pub pred: PredId,
    /// Step index of the predicate's bound path where the unsolved
    /// remainder begins (the item's class is `path.class(start)`). The
    /// receiving site translates the remainder into its own attribute
    /// names — sites may name corresponding attributes differently.
    pub start: usize,
}

/// A request to fetch a target value from an assistant object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TargetRequest {
    /// The nested item whose assistants can supply the value.
    pub item: LOid,
    /// The assistant object to read (its `db()` is the target site).
    pub assistant: LOid,
    /// Select-list position of the target.
    pub target: usize,
    /// Step index of the target's bound path where the unprojectable
    /// remainder begins.
    pub start: usize,
}

/// Output of the PL-only static phase-O pass over all candidate objects.
#[derive(Debug, Default)]
struct StaticScan {
    requests: Vec<CheckRequest>,
    state: StaticState,
}

/// The part of the static pass the evaluation pass consumes.
#[derive(Debug, Default)]
struct StaticState {
    /// `(root serial, conjunct) -> (item, remainder start step)`, reused
    /// by the evaluation pass so prefixes are not walked twice.
    items: HashMap<(u64, usize), (Option<LOid>, usize)>,
    /// Root objects a signature already proved violating.
    sig_eliminated: HashSet<u64>,
}

/// Everything one site produces for a localized query: its local result
/// rows plus the check and target requests it wants answered elsewhere.
///
/// This is the unit of work a distributed site actor performs on a
/// `LocalEval` message (see the `fedoq-net` crate); the in-process
/// strategies assemble the same outputs wave by wave.
#[derive(Debug)]
pub struct SiteEval {
    /// The evaluating site.
    pub db: DbId,
    /// Local maybe rows surviving local evaluation.
    pub rows: Vec<LocalRow>,
    /// PL-only: check requests issued before evaluation (phase O ahead of
    /// phase P); empty under BL.
    pub static_requests: Vec<CheckRequest>,
    /// Check requests issued after local evaluation (all of BL's, plus
    /// PL's null-caused ones).
    pub dynamic_requests: Vec<CheckRequest>,
    /// Target-value fetches (only with target completion enabled).
    pub target_requests: Vec<TargetRequest>,
}

/// Everything precompiled once per site before scanning.
struct SiteContext<'a> {
    db: &'a ComponentDb,
    plan: &'a SitePlan,
    /// Compiled local predicates, indexed like the query's conjuncts
    /// (`None` where the predicate is truncated here).
    local_preds: Vec<Option<CompiledPredicate>>,
    /// For each truncated predicate: its id and the compiled navigable
    /// prefix (`None` when the root itself holds the missing attribute).
    truncated: Vec<(PredId, Option<CompiledPath>)>,
    /// Compiled target projections with their global domain when the
    /// terminal is complex (`None` where not locally projectable).
    targets: Vec<Option<(CompiledPath, Option<GlobalClassId>)>>,
    /// For unprojectable targets with a non-empty navigable prefix: the
    /// compiled prefix (target completion resolves items through it).
    target_prefixes: Vec<Option<CompiledPath>>,
    /// Disk width (projected attributes) of the root class here.
    root_width: usize,
}

fn build_context<'a>(
    fed: &'a Federation,
    query: &BoundQuery,
    plan: &'a SitePlan,
) -> Result<SiteContext<'a>, ExecError> {
    let db_id = plan.db();
    let db = fed.db(db_id);
    let root = plan.root_constituent();
    let involved = query.involved_slots();
    let schema = fed.global_schema();

    let mut local_preds = Vec::with_capacity(query.predicates().len());
    let mut truncated = Vec::new();
    for pred in query.predicates() {
        match plan.disposition(pred.id()) {
            PredDisposition::Local => {
                let local_path = translate_steps(fed, db_id, pred.path(), 0, pred.path().len())
                    .ok_or_else(|| ExecError::Internal("local predicate lost".into()))?;
                let compiled = CompiledPredicate::compile(
                    db,
                    root,
                    &local_path,
                    pred.op(),
                    pred.literal().clone(),
                )
                .map_err(|e| ExecError::Internal(format!("local predicate lost: {e}")))?;
                local_preds.push(Some(compiled));
            }
            PredDisposition::Truncated { prefix_len } => {
                local_preds.push(None);
                let prefix = if prefix_len == 0 {
                    None
                } else {
                    let prefix_path = translate_steps(fed, db_id, pred.path(), 0, prefix_len)
                        .ok_or_else(|| ExecError::Internal("prefix lost".into()))?;
                    Some(
                        CompiledPath::compile(db, root, &prefix_path)
                            .map_err(|e| ExecError::Internal(format!("prefix lost: {e}")))?,
                    )
                };
                truncated.push((pred.id(), prefix));
            }
        }
    }

    let mut targets = Vec::with_capacity(query.targets().len());
    let mut target_prefixes = Vec::with_capacity(query.targets().len());
    for (i, target) in query.targets().iter().enumerate() {
        let prefix_len = plan.target_prefix_len(i);
        if prefix_len == target.len() {
            let local_path = translate_steps(fed, db_id, target, 0, target.len())
                .ok_or_else(|| ExecError::Internal("target lost".into()))?;
            let compiled = CompiledPath::compile(db, root, &local_path)
                .map_err(|e| ExecError::Internal(format!("target lost: {e}")))?;
            targets.push(Some((compiled, target.terminal_domain())));
            target_prefixes.push(None);
        } else {
            targets.push(None);
            target_prefixes.push(if prefix_len == 0 {
                None
            } else {
                let prefix_path = translate_steps(fed, db_id, target, 0, prefix_len)
                    .ok_or_else(|| ExecError::Internal("target prefix lost".into()))?;
                Some(
                    CompiledPath::compile(db, root, &prefix_path)
                        .map_err(|e| ExecError::Internal(format!("target prefix lost: {e}")))?,
                )
            });
        }
    }

    let range_class = schema.class(query.range());
    let constituent = range_class
        .constituent_for(db_id)
        .ok_or_else(|| ExecError::Internal("plan for non-hosting site".into()))?;
    let root_width = involved.get(&query.range()).map_or(0, |slots| {
        slots
            .iter()
            .filter(|&&g| !constituent.is_missing(g))
            .count()
    });

    Ok(SiteContext {
        db,
        plan,
        local_preds,
        truncated,
        targets,
        target_prefixes,
        root_width,
    })
}

/// Resolves the unsolved item of a truncated predicate on one object by
/// walking the navigable prefix: the deepest object reached holds the
/// missing data, and the returned step index marks where the unsolved
/// remainder of the path begins.
fn resolve_item(
    ctx: &SiteContext<'_>,
    object: &Object,
    prefix: &Option<CompiledPath>,
    counter: &mut EvalCounter,
) -> (Option<LOid>, usize) {
    match prefix {
        None => (None, 0),
        Some(compiled) => {
            let walk = compiled.walk(ctx.db, object, counter);
            match walk.value.as_ref_loid() {
                Some(item) => (Some(item), compiled.len()),
                // A null blocked the prefix walk part-way: the deepest
                // visited object (or the root) is the item.
                None => (walk.visited.last().copied(), walk.visited.len()),
            }
        }
    }
}

/// Translates steps `[start, end)` of a bound path into `db`'s local
/// attribute names; `None` when any step's attribute is missing there.
fn translate_steps(
    fed: &Federation,
    db: DbId,
    path: &fedoq_query::BoundPath,
    start: usize,
    end: usize,
) -> Option<Path> {
    let schema = fed.global_schema();
    let mut names = Vec::with_capacity(end - start);
    for i in start..end {
        names.push(local_attr_name(fed, db, path.class(i), path.slot(i))?);
    }
    let _ = schema;
    Some(Path::new(names))
}

/// The local name `db` uses for global attribute `slot` of `class`.
fn local_attr_name(
    fed: &Federation,
    db: DbId,
    class: GlobalClassId,
    slot: usize,
) -> Option<String> {
    let constituent = fed.global_schema().class(class).constituent_for(db)?;
    let local_slot = constituent.local_slot(slot)?;
    let def = fed.db(db).schema().class(constituent.class());
    Some(def.attrs()[local_slot].name().to_owned())
}

/// Looks up the presence-filtered assistant set of one unsolved item —
/// the GOid-mapping lookup plus one remote-schema presence probe per
/// sibling — consulting the shared cache when one is given. The filtered
/// set depends only on `(class, slot, item)`, so predicate checks and
/// target completion share entries.
fn filtered_siblings(
    fed: &Federation,
    item_class: GlobalClassId,
    first_slot: usize,
    item: LOid,
    cache: Option<&RefCell<LookupCache>>,
    comparisons: &mut u64,
) -> Vec<LOid> {
    *comparisons += 1; // GOid-table probe for the item
    let key = CacheKey::Siblings {
        class: item_class.index() as u32,
        slot: first_slot,
        item,
    };
    if let Some(cache) = cache {
        if let Some(CacheValue::Siblings(assistants)) = cache.borrow_mut().get(&key) {
            return assistants;
        }
    }
    let class = fed.global_schema().class(item_class);
    let mut survivors = Vec::new();
    for assistant in fed.catalog().table(item_class).siblings(item) {
        // Consult the remote schema: only ask sites whose constituent can
        // start evaluating the remaining path.
        *comparisons += 1;
        let present = class
            .constituent_for(assistant.db())
            .is_some_and(|c| !c.is_missing(first_slot));
        if present {
            survivors.push(assistant);
        }
    }
    if let Some(cache) = cache {
        cache
            .borrow_mut()
            .put(key, CacheValue::Siblings(survivors.clone()));
    }
    survivors
}

/// Expands one unsolved item into check requests against its assistants,
/// consulting the GOid tables, the other sites' schemas, and (optionally)
/// the replicated signatures.
///
/// Returns `false` if a signature proves a violation — the caller must
/// eliminate the row/object.
#[allow(clippy::too_many_arguments)]
fn requests_for_item(
    fed: &Federation,
    query: &BoundQuery,
    item: LOid,
    pred: PredId,
    start: usize,
    use_signatures: bool,
    cache: Option<&RefCell<LookupCache>>,
    comparisons: &mut u64,
    seen: &mut HashSet<CheckRequest>,
    out: &mut Vec<CheckRequest>,
) -> bool {
    let bound_pred = query.predicate(pred);
    let item_class = bound_pred.path().class(start);
    let first_slot = bound_pred.path().slot(start);
    for assistant in filtered_siblings(fed, item_class, first_slot, item, cache, comparisons) {
        let single_step = start + 1 == bound_pred.path().len();
        if use_signatures && single_step && bound_pred.op() == CmpOp::Eq {
            *comparisons += 2; // value-bits probe + null-marker probe
            let attr = local_attr_name(fed, assistant.db(), item_class, first_slot);
            if let (Some(sig), Some(attr)) = (fed.signature(assistant), attr) {
                // A value-bit miss means the assistant does not hold the
                // literal; without the null marker that is a definite
                // violation — the certification rule says any violating
                // assistant eliminates the result. With the marker set,
                // only the remote check can distinguish False from
                // Unknown, so the request still goes out.
                if !sig.may_contain(&attr, bound_pred.literal()) && !sig.may_be_null(&attr) {
                    return false;
                }
            }
        }
        let request = CheckRequest {
            item,
            assistant,
            pred,
            start,
        };
        *comparisons += 1; // dedup probe (shared branch items)
        if seen.insert(request) {
            out.push(request);
        }
    }
    true
}

/// PL's step C1: for every candidate object, resolve the items of the
/// statically unsolved predicates and emit their check requests — before
/// any predicate is evaluated (phase O ahead of phase P).
fn scan_static(
    fed: &Federation,
    query: &BoundQuery,
    ctx: &SiteContext<'_>,
    sim: &mut Simulation,
    config: LocalizedConfig,
    pipeline: PipelineConfig,
    cache: Option<&RefCell<LookupCache>>,
) -> StaticScan {
    let mut scan = StaticScan::default();
    if ctx.truncated.is_empty() {
        return scan;
    }
    let site = Site::Db(ctx.db.id());
    let params = *sim.params();
    let extent = ctx.db.extent(ctx.plan.root_constituent());
    if pipeline.is_parallel() {
        // Chunked like the phase-P scan. Workers cannot share the
        // (single-threaded) cache, so each chunk resolves its siblings
        // from the catalog and dedups locally; the merge below re-dedups
        // across chunks in chunk order, which reproduces the sequential
        // first-occurrence request order exactly. Workers may repeat a
        // sibling walk a sequential pass would have memoized — that is
        // charged as genuine (overlapped) work.
        let partials = map_chunks(
            extent.objects(),
            pipeline.threads,
            pipeline.chunk,
            |_, chunk| {
                let mut counter = EvalCounter::new();
                let mut comparisons = 0u64;
                let mut seen = HashSet::new();
                let mut requests = Vec::new();
                let mut sig_eliminated = Vec::new();
                let mut items = Vec::new();
                for object in chunk {
                    for (pred, prefix) in &ctx.truncated {
                        let (item, start) = resolve_item(ctx, object, prefix, &mut counter);
                        if let Some(item_loid) = item {
                            let ok = requests_for_item(
                                fed,
                                query,
                                item_loid,
                                *pred,
                                start,
                                config.use_signatures,
                                None,
                                &mut comparisons,
                                &mut seen,
                                &mut requests,
                            );
                            if !ok {
                                sig_eliminated.push(object.loid().serial());
                            }
                        }
                        items.push(((object.loid().serial(), pred.index()), (item, start)));
                    }
                }
                (requests, items, sig_eliminated, counter, comparisons)
            },
        );
        let mut seen = HashSet::new();
        let mut disk_costs = Vec::with_capacity(partials.len());
        let mut cpu_costs = Vec::with_capacity(partials.len());
        for (requests, items, sig_eliminated, counter, comparisons) in partials {
            for request in requests {
                if seen.insert(request) {
                    scan.requests.push(request);
                }
            }
            scan.state.items.extend(items);
            scan.state.sig_eliminated.extend(sig_eliminated);
            disk_costs.push(counter.objects_fetched * params.object_bytes(1));
            cpu_costs.push(comparisons + counter.comparisons);
        }
        sim.disk_parallel(
            site,
            &worker_shares(&disk_costs, pipeline.threads),
            Phase::O,
        );
        sim.cpu_parallel(site, &worker_shares(&cpu_costs, pipeline.threads), Phase::O);
        return scan;
    }
    let mut counter = EvalCounter::new();
    let mut comparisons = 0u64;
    let mut seen = HashSet::new();
    for object in extent.iter() {
        for (pred, prefix) in &ctx.truncated {
            let (item, start) = resolve_item(ctx, object, prefix, &mut counter);
            if let Some(item_loid) = item {
                let ok = requests_for_item(
                    fed,
                    query,
                    item_loid,
                    *pred,
                    start,
                    config.use_signatures,
                    cache,
                    &mut comparisons,
                    &mut seen,
                    &mut scan.requests,
                );
                if !ok {
                    scan.state.sig_eliminated.insert(object.loid().serial());
                }
            }
            scan.state
                .items
                .insert((object.loid().serial(), pred.index()), (item, start));
        }
    }
    sim.disk(
        site,
        counter.objects_fetched * params.object_bytes(1),
        Phase::O,
    );
    sim.cpu(site, comparisons + counter.comparisons, Phase::O);
    scan
}

/// Per unsolved entry of one local row: its item, the remainder start
/// step, and whether the static pass already issued its checks.
type RowRemainders = Vec<(Option<LOid>, usize, bool)>;

/// Evaluates one candidate object (the phase-P body): local predicates,
/// static-state reuse, target projection, and the root GOid probe. Pure
/// over the federation — chunked parallel scans call it concurrently —
/// with every charged probe accumulated in `counter`.
fn eval_object(
    fed: &Federation,
    query: &BoundQuery,
    ctx: &SiteContext<'_>,
    config: LocalizedConfig,
    static_state: &StaticState,
    object: &Object,
    counter: &mut EvalCounter,
) -> Option<(LocalRow, RowRemainders)> {
    if static_state
        .sig_eliminated
        .contains(&object.loid().serial())
    {
        return None;
    }
    let mut verdicts = vec![Truth::Unknown; query.predicates().len()];
    let mut unsolved: Vec<(PredId, Option<LOid>, usize, bool)> = Vec::new();
    for (i, compiled) in ctx.local_preds.iter().enumerate() {
        let Some(pred) = compiled else { continue };
        let (verdict, walk) = pred.eval(ctx.db, object, counter);
        match verdict {
            Truth::True => verdicts[i] = Truth::True,
            Truth::False => return None,
            Truth::Unknown => {
                // A null blocked the walk: the deepest visited object
                // holds the missing data, and the remainder starts at
                // its depth.
                unsolved.push((
                    PredId::new(i),
                    walk.visited.last().copied(),
                    walk.visited.len(),
                    false,
                ));
            }
        }
    }
    // Statically unsolved predicates: reuse the static pass (PL) or
    // resolve items now (BL).
    for (pred, prefix) in &ctx.truncated {
        match static_state
            .items
            .get(&(object.loid().serial(), pred.index()))
            .copied()
        {
            Some((item, start)) => unsolved.push((*pred, item, start, true)),
            None => {
                let (item, start) = resolve_item(ctx, object, prefix, counter);
                unsolved.push((*pred, item, start, false));
            }
        }
    }

    // Project targets; with target completion, resolve the nested
    // item whose assistants can supply an unprojectable value.
    let mut targets = Vec::with_capacity(ctx.targets.len());
    let mut target_items = vec![None; ctx.targets.len()];
    for (t, compiled) in ctx.targets.iter().enumerate() {
        match compiled {
            None => {
                targets.push(Value::Null);
                if let (true, Some(prefix)) = (config.complete_targets, &ctx.target_prefixes[t]) {
                    let walk = prefix.walk(ctx.db, object, counter);
                    target_items[t] = match walk.value.as_ref_loid() {
                        Some(item) => Some((item, prefix.len())),
                        // A null blocked the prefix: the deepest
                        // visited object is the item.
                        None => walk.visited.last().map(|&item| (item, walk.visited.len())),
                    };
                }
            }
            Some((path, terminal_domain)) => {
                let walk = path.walk(ctx.db, object, counter);
                match terminal_domain {
                    Some(domain) => {
                        counter.comparisons += 1; // LOid -> GOid probe
                        let translated = walk
                            .value
                            .as_ref_loid()
                            .and_then(|l| fed.catalog().table(*domain).goid_of(l))
                            .map_or(Value::Null, Value::GRef);
                        targets.push(translated);
                    }
                    None => targets.push(walk.value),
                }
            }
        }
    }

    counter.comparisons += 1; // root GOid probe
    let goid = fed.catalog().table(query.range()).goid_of(object.loid())?;
    let entries = unsolved
        .iter()
        .map(|(pred, item, _, _)| UnsolvedEntry {
            pred: *pred,
            item: *item,
        })
        .collect();
    let remainders = unsolved
        .into_iter()
        .map(|(_, item, start, from_static)| (item, start, from_static))
        .collect();
    Some((
        LocalRow {
            root_loid: object.loid(),
            goid,
            verdicts,
            unsolved: entries,
            targets,
            target_items,
        },
        remainders,
    ))
}

/// Index-seeded phase-P candidates (FedOQ extension, `pipeline.index`).
///
/// Picks the first local predicate that is a bare single-step equality
/// whose literal is indexable and whose root attribute carries a
/// maintained index, and returns the union of the index's exact matches
/// and its null-key unknowns, in extent scan order. Every object outside
/// that union holds a known non-null value different from the literal, so
/// the sequential scan would eliminate it with a definite `False` before
/// producing a row; skipping those objects leaves the surviving row list
/// byte-identical while phase P touches only `matches + unknowns` objects
/// instead of the whole extent.
///
/// Returns `None` (scan everything) when no predicate qualifies — path
/// traversals, non-equality operators, float literals (never indexed),
/// or simply no maintained index on the attribute.
fn index_candidates<'a>(
    ctx: &SiteContext<'_>,
    extent: &'a Extent,
    probes: &mut u64,
) -> Option<Vec<&'a Object>> {
    for compiled in ctx.local_preds.iter().flatten() {
        if compiled.op() != CmpOp::Eq || compiled.compiled_path().len() != 1 {
            continue;
        }
        let Some(slot) = compiled.compiled_path().step_attr(0) else {
            continue;
        };
        let Some(index) = ctx.db.index_on(ctx.plan.root_constituent(), &[slot]) else {
            continue;
        };
        let Some(key) = IndexKey::from_value(compiled.literal()) else {
            continue;
        };
        *probes += 1; // index hash probe
        let objects = extent.objects();
        let mut positions: Vec<usize> = index
            .matches(&key)
            .iter()
            .chain(index.unknowns().iter())
            .filter_map(|&loid| {
                *probes += 1; // candidate LOid -> extent slot probe
                extent.position(loid)
            })
            .collect();
        positions.sort_unstable();
        return Some(positions.iter().map(|&p| &objects[p]).collect());
    }
    None
}

/// One worker's phase-P partial: its surviving rows, eval counter, and
/// scanned bytes.
type ScanPartial = (Vec<(LocalRow, RowRemainders)>, EvalCounter, u64);

/// Merges chunked phase-P partials in chunk order (reproducing the
/// sequential row order) and charges the overlapped per-worker disk and
/// CPU shares to the site's clock.
fn merge_scan_partials(
    sim: &mut Simulation,
    site: Site,
    threads: usize,
    partials: Vec<ScanPartial>,
    rows: &mut Vec<(LocalRow, RowRemainders)>,
) {
    let params = *sim.params();
    let mut disk_costs = Vec::with_capacity(partials.len());
    let mut cpu_costs = Vec::with_capacity(partials.len());
    for (chunk_rows, counter, scan_bytes) in partials {
        rows.extend(chunk_rows);
        disk_costs.push(scan_bytes + counter.objects_fetched * params.object_bytes(1));
        cpu_costs.push(counter.comparisons);
    }
    sim.disk_parallel(site, &worker_shares(&disk_costs, threads), Phase::P);
    sim.cpu_parallel(site, &worker_shares(&cpu_costs, threads), Phase::P);
}

/// Steps BL_C1/BL_C2 (and PL_C2): evaluate the local predicates over the
/// root extent (phase P), then look up assistants for the unsolved data
/// local evaluation surfaced (phase O).
#[allow(clippy::too_many_arguments)]
fn scan_eval(
    fed: &Federation,
    query: &BoundQuery,
    ctx: &SiteContext<'_>,
    sim: &mut Simulation,
    config: LocalizedConfig,
    static_state: &StaticState,
    pipeline: PipelineConfig,
    cache: Option<&RefCell<LookupCache>>,
) -> SiteEval {
    let db_id = ctx.db.id();
    let site = Site::Db(db_id);
    let extent = ctx.db.extent(ctx.plan.root_constituent());
    let params = *sim.params();

    // --- Phase P: chunked over the root extent. Workers evaluate
    // disjoint chunks against the immutable federation; partials merge in
    // chunk order, so the row list is byte-identical to a sequential
    // scan. Parallel charges overlap the per-worker shares on the site's
    // clock instead of summing them. With `pipeline.index`, a maintained
    // index narrows the scan to its candidate set first (same rows, but
    // disk and CPU scale with selectivity instead of extent size).
    let mut rows: Vec<(LocalRow, RowRemainders)> = Vec::new();
    let mut index_probes = 0u64;
    let candidates: Option<Vec<&Object>> = if pipeline.index {
        index_candidates(ctx, extent, &mut index_probes)
    } else {
        None
    };
    if index_probes > 0 {
        sim.cpu(site, index_probes, Phase::P);
    }
    if let Some(cands) = &candidates {
        if pipeline.is_parallel() {
            let partials = map_chunks(cands, pipeline.threads, pipeline.chunk, |_, chunk| {
                let mut counter = EvalCounter::new();
                let mut chunk_rows = Vec::new();
                let mut scan_bytes = 0u64;
                for &object in chunk {
                    scan_bytes += params.object_bytes(ctx.root_width);
                    if let Some(pair) =
                        eval_object(fed, query, ctx, config, static_state, object, &mut counter)
                    {
                        chunk_rows.push(pair);
                    }
                }
                (chunk_rows, counter, scan_bytes)
            });
            merge_scan_partials(sim, site, pipeline.threads, partials, &mut rows);
        } else {
            let mut counter = EvalCounter::new();
            let mut scan_bytes = 0u64;
            for &object in cands {
                scan_bytes += params.object_bytes(ctx.root_width);
                if let Some(pair) =
                    eval_object(fed, query, ctx, config, static_state, object, &mut counter)
                {
                    rows.push(pair);
                }
            }
            sim.disk(
                site,
                scan_bytes + counter.objects_fetched * params.object_bytes(1),
                Phase::P,
            );
            sim.cpu(site, counter.comparisons, Phase::P);
        }
    } else if pipeline.is_parallel() {
        let partials = map_chunks(
            extent.objects(),
            pipeline.threads,
            pipeline.chunk,
            |_, chunk| {
                let mut counter = EvalCounter::new();
                let mut chunk_rows = Vec::new();
                let mut scan_bytes = 0u64;
                for object in chunk {
                    scan_bytes += params.object_bytes(ctx.root_width);
                    if let Some(pair) =
                        eval_object(fed, query, ctx, config, static_state, object, &mut counter)
                    {
                        chunk_rows.push(pair);
                    }
                }
                (chunk_rows, counter, scan_bytes)
            },
        );
        merge_scan_partials(sim, site, pipeline.threads, partials, &mut rows);
    } else {
        let mut counter = EvalCounter::new();
        let mut scan_bytes = 0u64;
        for object in extent.iter() {
            scan_bytes += params.object_bytes(ctx.root_width);
            if let Some(pair) =
                eval_object(fed, query, ctx, config, static_state, object, &mut counter)
            {
                rows.push(pair);
            }
        }
        sim.disk(
            site,
            scan_bytes + counter.objects_fetched * params.object_bytes(1),
            Phase::P,
        );
        sim.cpu(site, counter.comparisons, Phase::P);
    }

    // --- Phase O: assistant lookup for what evaluation surfaced.
    let mut comparisons = 0u64;
    let mut dynamic_requests = Vec::new();
    let mut target_requests = Vec::new();
    let mut seen = HashSet::new();
    let mut target_seen: HashSet<TargetRequest> = HashSet::new();
    let mut final_rows = Vec::with_capacity(rows.len());
    'rows: for (row, remainders) in rows {
        for (entry, (item, start, from_static)) in row.unsolved.iter().zip(&remainders) {
            if *from_static {
                continue; // PL issued these checks before evaluation
            }
            let Some(item_loid) = item else { continue };
            let ok = requests_for_item(
                fed,
                query,
                *item_loid,
                entry.pred,
                *start,
                config.use_signatures,
                cache,
                &mut comparisons,
                &mut seen,
                &mut dynamic_requests,
            );
            if !ok {
                continue 'rows; // signature proved a violation
            }
        }
        if config.complete_targets {
            for (t, item) in row.target_items.iter().enumerate() {
                let Some((item_loid, start)) = item else {
                    continue;
                };
                let (item_loid, start) = (item_loid, *start);
                let bound = &query.targets()[t];
                let item_class = bound.class(start);
                let first_slot = bound.slot(start);
                for assistant in filtered_siblings(
                    fed,
                    item_class,
                    first_slot,
                    *item_loid,
                    cache,
                    &mut comparisons,
                ) {
                    let request = TargetRequest {
                        item: *item_loid,
                        assistant,
                        target: t,
                        start,
                    };
                    comparisons += 1; // dedup probe
                    if target_seen.insert(request) {
                        target_requests.push(request);
                    }
                }
            }
        }
        final_rows.push(row);
    }
    sim.cpu(site, comparisons, Phase::O);

    SiteEval {
        db: db_id,
        rows: final_rows,
        static_requests: Vec::new(),
        dynamic_requests,
        target_requests,
    }
}

/// Runs one site's full share of a localized query — PL's static lookup
/// (when `mode` is [`LocalizedMode::Parallel`]), local predicate
/// evaluation, and post-evaluation assistant lookup — charging the site's
/// clock in `sim` for its disk and CPU work.
///
/// Returns `None` when the site hosts no constituent of the query's range
/// class (it receives no local query). Messaging is the caller's concern:
/// the in-process strategies narrate sends/receives to the simulation,
/// while the distributed runtime moves the same payloads through a
/// transport.
pub fn evaluate_site(
    fed: &Federation,
    query: &BoundQuery,
    db: DbId,
    mode: LocalizedMode,
    config: LocalizedConfig,
    sim: &mut Simulation,
) -> Result<Option<SiteEval>, ExecError> {
    evaluate_site_with(
        fed,
        query,
        db,
        mode,
        config,
        sim,
        PipelineConfig::sequential(),
        None,
    )
}

/// [`evaluate_site`] under an explicit pipeline: the phase-P extent scan
/// runs chunked over the pipeline's worker threads, and assistant-set
/// lookups consult the shared cache when one is given. The produced
/// [`SiteEval`] is identical for every configuration.
///
/// # Errors
///
/// As for [`evaluate_site`].
#[allow(clippy::too_many_arguments)]
pub fn evaluate_site_with(
    fed: &Federation,
    query: &BoundQuery,
    db: DbId,
    mode: LocalizedMode,
    config: LocalizedConfig,
    sim: &mut Simulation,
    pipeline: PipelineConfig,
    cache: Option<&RefCell<LookupCache>>,
) -> Result<Option<SiteEval>, ExecError> {
    let cache = if pipeline.cache { cache } else { None };
    let Some(plan) = plan_for_db(query, fed.global_schema(), db) else {
        return Ok(None);
    };
    let ctx = build_context(fed, query, &plan)?;
    let scan = match mode {
        LocalizedMode::Basic => StaticScan::default(),
        LocalizedMode::Parallel => scan_static(fed, query, &ctx, sim, config, pipeline, cache),
    };
    let mut eval = scan_eval(fed, query, &ctx, sim, config, &scan.state, pipeline, cache);
    eval.static_requests = scan.requests;
    Ok(Some(eval))
}

/// One assistant's verdict on one unsolved `(item, predicate)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckVerdict {
    /// The unsolved item the verdict certifies or eliminates.
    pub item: LOid,
    /// The conjunct checked.
    pub pred: PredId,
    /// The assistant's answer on its own data.
    pub verdict: Truth,
}

/// Answers a batch of check requests at their target site `db`: fetch each
/// assistant, evaluate the remaining predicate on it, and return the
/// verdicts (steps BL_C3 / PL_C3), charging `db`'s clock for the disk and
/// CPU work.
pub fn answer_check_requests(
    fed: &Federation,
    query: &BoundQuery,
    db_id: DbId,
    requests: &[CheckRequest],
    sim: &mut Simulation,
) -> Vec<CheckVerdict> {
    let params = *sim.params();
    let site = Site::Db(db_id);
    let db = fed.db(db_id);
    let mut counter = EvalCounter::new();
    let mut read_bytes = 0u64;
    let mut verdicts = Vec::with_capacity(requests.len());
    for request in requests {
        read_bytes += params.object_bytes(1);
        counter.comparisons += 1; // locate the assistant by LOid
        let verdict = check_assistant(fed, query, db, request, &mut counter);
        verdicts.push(CheckVerdict {
            item: request.item,
            pred: request.pred,
            verdict,
        });
    }
    sim.disk(
        site,
        read_bytes + counter.objects_fetched * params.object_bytes(1),
        Phase::O,
    );
    sim.cpu(site, counter.comparisons, Phase::O);
    verdicts
}

/// Answers a batch of target-value fetches at their target site `db`
/// (target-completion extension), charging `db`'s clock for the work.
/// Returns `((item, select-list position), value)` pairs.
pub fn answer_target_requests(
    fed: &Federation,
    query: &BoundQuery,
    db_id: DbId,
    requests: &[TargetRequest],
    sim: &mut Simulation,
) -> Vec<((LOid, usize), Value)> {
    let params = *sim.params();
    let site = Site::Db(db_id);
    let db = fed.db(db_id);
    let mut counter = EvalCounter::new();
    let mut read_bytes = 0u64;
    let mut values = Vec::with_capacity(requests.len());
    for request in requests {
        read_bytes += params.object_bytes(1);
        counter.comparisons += 1; // locate the assistant by LOid
        let value = fetch_target_value(fed, query, db, request, &mut counter);
        values.push(((request.item, request.target), value));
    }
    sim.disk(
        site,
        read_bytes + counter.objects_fetched * params.object_bytes(1),
        Phase::O,
    );
    sim.cpu(site, counter.comparisons, Phase::O);
    values
}

/// Reads one target value from one assistant object, translating the path
/// remainder into the target site's own attribute names.
fn fetch_target_value(
    fed: &Federation,
    query: &BoundQuery,
    db: &ComponentDb,
    request: &TargetRequest,
    counter: &mut EvalCounter,
) -> Value {
    let bound = &query.targets()[request.target];
    let value = match db.object(request.assistant) {
        Some(object) => match translate_steps(fed, db.id(), bound, request.start, bound.len()) {
            Some(remaining) => match CompiledPath::compile(db, object.class(), &remaining) {
                Ok(path) => path.walk(db, object, counter).value,
                Err(_) => Value::Null,
            },
            None => Value::Null,
        },
        None => Value::Null,
    };
    // Complex terminals would need a further GOid translation; completion
    // covers primitive target values.
    match value {
        Value::Ref(_) => Value::Null,
        other => other,
    }
}

/// Bytes of one local-results message: per row, the entity id, the local
/// oid, the projected targets, and one oid + tag per unsolved entry.
pub fn result_message_bytes(rows: &[LocalRow], params: &SystemParams) -> u64 {
    rows.iter()
        .map(|row| {
            params.goid_bytes
                + params.loid_bytes
                + row.targets.len() as u64 * params.attr_bytes
                + row.unsolved.len() as u64 * (params.loid_bytes + 1)
        })
        .sum()
}

/// Bytes of one check-request batch: assistant oid + item oid + predicate.
pub fn request_message_bytes(count: usize, params: &SystemParams) -> u64 {
    count as u64 * (2 * params.loid_bytes + params.predicate_bytes())
}

/// Bytes of one check-reply batch: item oid + assistant oid + verdict tag.
pub fn reply_message_bytes(count: usize, params: &SystemParams) -> u64 {
    count as u64 * (2 * params.loid_bytes + 1)
}

/// Bytes of one target-reply batch: item oid + assistant oid + value.
pub fn target_reply_message_bytes(count: usize, params: &SystemParams) -> u64 {
    count as u64 * (2 * params.loid_bytes + params.attr_bytes)
}

/// Groups requests by the database owning the assistants.
fn group_by_target(requests: &[CheckRequest]) -> HashMap<DbId, Vec<&CheckRequest>> {
    let mut out: HashMap<DbId, Vec<&CheckRequest>> = HashMap::new();
    for r in requests {
        out.entry(r.assistant.db()).or_default().push(r);
    }
    out
}

/// Sends one wave of check-request batches, fragmenting each
/// `(source, target)` batch per the pipeline's batch size; returns
/// `(target, token, fragment)` triples for later processing. With a
/// cache, each request is first probed against the replicated verdict
/// store: hits are recorded into `replies` directly — verdict merging is
/// commutative, so recording order is immaterial — and never reach the
/// wire.
fn send_request_wave<'a>(
    sources: &[(DbId, &'a [CheckRequest])],
    sim: &mut Simulation,
    pipeline: PipelineConfig,
    cache: Option<&RefCell<LookupCache>>,
    fingerprint: u64,
    replies: &mut CheckReplies,
) -> Vec<(DbId, MessageToken, Vec<&'a CheckRequest>)> {
    let params = *sim.params();
    let mut sends = Vec::new();
    let mut meta = Vec::new();
    for (source, requests) in sources {
        let mut grouped: Vec<_> = group_by_target(requests).into_iter().collect();
        grouped.sort_by_key(|(db, _)| *db); // deterministic wire order
        for (target, batch) in grouped {
            let mut misses = Vec::with_capacity(batch.len());
            for request in batch {
                let hit = cache.and_then(|c| {
                    let key = CacheKey::Verdict {
                        assistant: request.assistant,
                        pred: request.pred.index(),
                        start: request.start,
                        query: fingerprint,
                    };
                    match c.borrow_mut().get(&key) {
                        Some(CacheValue::Verdict(verdict)) => Some(verdict),
                        _ => None,
                    }
                });
                match hit {
                    Some(verdict) => replies.record(request.item, request.pred, verdict),
                    None => misses.push(request),
                }
            }
            for fragment in pipeline.split(&misses) {
                let bytes = request_message_bytes(fragment.len(), &params);
                sends.push((Site::Db(*source), Site::Db(target), bytes, Phase::O));
                meta.push((target, fragment.to_vec()));
            }
        }
    }
    let tokens = sim.send_batch(sends);
    meta.into_iter()
        .zip(tokens)
        .map(|((target, batch), token)| (target, token, batch))
        .collect()
}

/// Processes one wave of check requests at their target sites: fetch each
/// assistant, evaluate the remaining predicate, and send the verdicts to
/// the global site (steps BL_C3 / PL_C3). Freshly computed verdicts fill
/// the cache for subsequent queries.
fn process_check_wave(
    fed: &Federation,
    query: &BoundQuery,
    waves: Vec<(DbId, MessageToken, Vec<&CheckRequest>)>,
    sim: &mut Simulation,
    replies: &mut CheckReplies,
    cache: Option<&RefCell<LookupCache>>,
    fingerprint: u64,
) {
    let params = *sim.params();
    let mut reply_sends = Vec::new();
    for (target, token, batch) in waves {
        let site = Site::Db(target);
        sim.recv(site, token);
        let requests: Vec<CheckRequest> = batch.iter().map(|r| **r).collect();
        for (request, v) in requests
            .iter()
            .zip(answer_check_requests(fed, query, target, &requests, sim))
        {
            if let Some(c) = cache {
                c.borrow_mut().put(
                    CacheKey::Verdict {
                        assistant: request.assistant,
                        pred: request.pred.index(),
                        start: request.start,
                        query: fingerprint,
                    },
                    CacheValue::Verdict(v.verdict),
                );
            }
            replies.record(v.item, v.pred, v.verdict);
        }
        let bytes = reply_message_bytes(batch.len(), &params);
        reply_sends.push((site, Site::Global, bytes, Phase::O));
    }
    let tokens = sim.send_batch(reply_sends);
    sim.recv_all(Site::Global, tokens);
}

/// One site's pending target-fetch work: the wire fragments addressed to
/// it from one `(source, target)` batch, with per-request cache hits kept
/// in their original batch positions. Target merging takes the *first*
/// non-null value per `(item, slot)`, so — unlike check verdicts — reply
/// order is observable and hits must be spliced back in place.
struct TargetWave<'a> {
    target: DbId,
    tokens: Vec<MessageToken>,
    /// The full batch in request order; `Some` carries a cached value.
    batch: Vec<(&'a TargetRequest, Option<Value>)>,
    /// Sizes of the wire fragments (the cache misses, split per the
    /// pipeline's batch size) — replies fragment the same way.
    frag_sizes: Vec<usize>,
}

/// Processes target-value fetches at their target sites and sends the
/// values to the global site (target-completion extension). Cache misses
/// are answered remotely and fill the cache; hits contribute their stored
/// value at their original batch position.
fn process_target_wave(
    fed: &Federation,
    query: &BoundQuery,
    waves: Vec<TargetWave<'_>>,
    sim: &mut Simulation,
    replies: &mut TargetReplies,
    cache: Option<&RefCell<LookupCache>>,
    fingerprint: u64,
) {
    let params = *sim.params();
    let mut reply_sends = Vec::new();
    for wave in waves {
        let site = Site::Db(wave.target);
        for token in wave.tokens {
            sim.recv(site, token);
        }
        let misses: Vec<TargetRequest> = wave
            .batch
            .iter()
            .filter(|(_, hit)| hit.is_none())
            .map(|(r, _)| **r)
            .collect();
        let mut answered = answer_target_requests(fed, query, wave.target, &misses, sim)
            .into_iter()
            .map(|(_, value)| value);
        for (request, hit) in wave.batch {
            let value = match hit {
                Some(value) => value,
                None => {
                    let value = answered.next().expect("one answer per miss");
                    if let Some(c) = cache {
                        c.borrow_mut().put(
                            CacheKey::Target {
                                assistant: request.assistant,
                                target: request.target,
                                start: request.start,
                                query: fingerprint,
                            },
                            CacheValue::Target(value.clone()),
                        );
                    }
                    value
                }
            };
            replies
                .entry((request.item, request.target))
                .or_default()
                .push(value);
        }
        for size in wave.frag_sizes {
            reply_sends.push((
                site,
                Site::Global,
                target_reply_message_bytes(size, &params),
                Phase::O,
            ));
        }
    }
    let tokens = sim.send_batch(reply_sends);
    sim.recv_all(Site::Global, tokens);
}

/// Fetched target values, keyed by `(item, select-list position)`.
pub type TargetReplies = HashMap<(LOid, usize), Vec<Value>>;

/// Evaluates one remaining predicate on one assistant object, translating
/// the path remainder into the target site's own attribute names.
fn check_assistant(
    fed: &Federation,
    query: &BoundQuery,
    db: &ComponentDb,
    request: &CheckRequest,
    counter: &mut EvalCounter,
) -> Truth {
    let Some(object) = db.object(request.assistant) else {
        return Truth::Unknown; // stale mapping-table entry
    };
    let bound = query.predicate(request.pred);
    let Some(remaining) = translate_steps(
        fed,
        db.id(),
        bound.path(),
        request.start,
        bound.path().len(),
    ) else {
        // This site is missing a deeper attribute on the path: the check
        // cannot decide either way.
        return Truth::Unknown;
    };
    let compiled = CompiledPredicate::compile(
        db,
        object.class(),
        &remaining,
        bound.op(),
        bound.literal().clone(),
    );
    match compiled {
        Ok(pred) => pred.eval(db, object, counter).0,
        Err(_) => Truth::Unknown,
    }
}

/// Shared orchestration of BL and PL.
fn execute_localized(
    fed: &Federation,
    query: &BoundQuery,
    sim: &mut Simulation,
    mode: LocalizedMode,
    config: LocalizedConfig,
) -> Result<QueryAnswer, ExecError> {
    execute_localized_with(
        fed,
        query,
        sim,
        mode,
        config,
        PipelineConfig::sequential(),
        None,
    )
}

/// Shared orchestration of BL and PL under an explicit pipeline: the
/// phase-P scans run chunked, check/target batches fragment into at most
/// `batch` probes per message, and the shared cache short-circuits
/// repeated assistant lookups. The default pipeline without a cache
/// reproduces the legacy sequential execution — message for message.
#[allow(clippy::too_many_arguments)]
fn execute_localized_with(
    fed: &Federation,
    query: &BoundQuery,
    sim: &mut Simulation,
    mode: LocalizedMode,
    config: LocalizedConfig,
    pipeline: PipelineConfig,
    cache: Option<&RefCell<LookupCache>>,
) -> Result<QueryAnswer, ExecError> {
    execute_localized_policy(
        fed,
        query,
        sim,
        &ModePolicy::Uniform(mode),
        config,
        pipeline,
        cache,
    )
}

/// [`execute_localized_with`] generalized to a per-site [`ModePolicy`]:
/// each hosting site runs BL's or PL's schedule independently, which is
/// sound because the schedules only differ in *when* assistant checks go
/// on the wire, never in what gets checked.
#[allow(clippy::too_many_arguments)]
fn execute_localized_policy(
    fed: &Federation,
    query: &BoundQuery,
    sim: &mut Simulation,
    policy: &ModePolicy,
    config: LocalizedConfig,
    pipeline: PipelineConfig,
    cache: Option<&RefCell<LookupCache>>,
) -> Result<QueryAnswer, ExecError> {
    let cache = if pipeline.cache { cache } else { None };
    let fingerprint = if cache.is_some() {
        query_fingerprint(query)
    } else {
        0
    };
    let schema = fed.global_schema();
    let params = *sim.params();

    // Step BL_G1 / PL_G1: ship local queries to the hosting sites.
    let mut plans = Vec::new();
    for db in fed.dbs() {
        if let Some(plan) = plan_for_db(query, schema, db.id()) {
            plans.push(plan);
        }
    }
    let queried_dbs: Vec<DbId> = plans.iter().map(fedoq_query::SitePlan::db).collect();
    let query_sends = plans
        .iter()
        .map(|p| {
            (
                Site::Global,
                Site::Db(p.db()),
                2 * params.attr_bytes,
                Phase::Ship,
            )
        })
        .collect();
    let tokens = sim.send_batch(query_sends);
    for (plan, token) in plans.iter().zip(tokens) {
        sim.recv(Site::Db(plan.db()), token);
    }

    let mut contexts = Vec::with_capacity(plans.len());
    for plan in &plans {
        contexts.push(build_context(fed, query, plan)?);
    }

    // PL: run the static phase-O pass at every site, then put its check
    // requests on the wire *before* charging phase P anywhere — the wire
    // sees them at each site's phase-O completion time.
    let mut static_requests: Vec<Vec<CheckRequest>> = Vec::with_capacity(contexts.len());
    let mut static_states: Vec<StaticState> = Vec::with_capacity(contexts.len());
    for ctx in &contexts {
        let scan = match policy.mode_for(ctx.db.id()) {
            LocalizedMode::Basic => StaticScan::default(),
            LocalizedMode::Parallel => scan_static(fed, query, ctx, sim, config, pipeline, cache),
        };
        static_requests.push(scan.requests);
        static_states.push(scan.state);
    }
    let mut replies = CheckReplies::new();
    let static_sources: Vec<(DbId, &[CheckRequest])> = contexts
        .iter()
        .zip(&static_requests)
        .map(|(ctx, requests)| (ctx.db.id(), requests.as_slice()))
        .collect();
    let static_waves = send_request_wave(
        &static_sources,
        sim,
        pipeline,
        cache,
        fingerprint,
        &mut replies,
    );

    // Local evaluation everywhere.
    let mut outputs = Vec::with_capacity(contexts.len());
    for (ctx, state) in contexts.iter().zip(&static_states) {
        outputs.push(scan_eval(
            fed, query, ctx, sim, config, state, pipeline, cache,
        ));
    }

    // Post-evaluation check requests, target fetches, and local results.
    let dynamic_sources: Vec<(DbId, &[CheckRequest])> = outputs
        .iter()
        .map(|o| (o.db, o.dynamic_requests.as_slice()))
        .collect();
    let dynamic_waves = send_request_wave(
        &dynamic_sources,
        sim,
        pipeline,
        cache,
        fingerprint,
        &mut replies,
    );
    let mut target_sends = Vec::new();
    let mut target_meta = Vec::new();
    for output in &outputs {
        let mut grouped: HashMap<DbId, Vec<&TargetRequest>> = HashMap::new();
        for r in &output.target_requests {
            grouped.entry(r.assistant.db()).or_default().push(r);
        }
        let mut grouped: Vec<_> = grouped.into_iter().collect();
        grouped.sort_by_key(|(db, _)| *db);
        for (target, batch) in grouped {
            // Probe the cache per request; misses fragment onto the wire.
            let mut annotated = Vec::with_capacity(batch.len());
            let mut misses = Vec::new();
            for request in batch {
                let hit = cache.and_then(|c| {
                    let key = CacheKey::Target {
                        assistant: request.assistant,
                        target: request.target,
                        start: request.start,
                        query: fingerprint,
                    };
                    match c.borrow_mut().get(&key) {
                        Some(CacheValue::Target(value)) => Some(value),
                        _ => None,
                    }
                });
                if hit.is_none() {
                    misses.push(request);
                }
                annotated.push((request, hit));
            }
            let mut frag_sizes = Vec::new();
            let mut send_indices = Vec::new();
            for fragment in pipeline.split(&misses) {
                let bytes =
                    fragment.len() as u64 * (2 * params.loid_bytes + params.predicate_bytes());
                send_indices.push(target_sends.len());
                target_sends.push((Site::Db(output.db), Site::Db(target), bytes, Phase::O));
                frag_sizes.push(fragment.len());
            }
            target_meta.push((target, annotated, frag_sizes, send_indices));
        }
    }
    let target_tokens = sim.send_batch(target_sends);
    let target_waves: Vec<TargetWave<'_>> = target_meta
        .into_iter()
        .map(|(target, batch, frag_sizes, send_indices)| TargetWave {
            target,
            tokens: send_indices.iter().map(|&i| target_tokens[i]).collect(),
            batch,
            frag_sizes,
        })
        .collect();
    let result_sends = outputs
        .iter()
        .map(|o| {
            (
                Site::Db(o.db),
                Site::Global,
                result_message_bytes(&o.rows, &params),
                Phase::I,
            )
        })
        .collect();
    let tokens = sim.send_batch(result_sends);
    sim.recv_all(Site::Global, tokens);

    // Remote checking (PL's static wave first — it arrived first).
    process_check_wave(
        fed,
        query,
        static_waves,
        sim,
        &mut replies,
        cache,
        fingerprint,
    );
    process_check_wave(
        fed,
        query,
        dynamic_waves,
        sim,
        &mut replies,
        cache,
        fingerprint,
    );
    let mut target_replies = TargetReplies::new();
    process_target_wave(
        fed,
        query,
        target_waves,
        sim,
        &mut target_replies,
        cache,
        fingerprint,
    );

    // Step BL_G2 / PL_G2: certification at the global site (phase I).
    let site_rows: Vec<(DbId, Vec<LocalRow>)> =
        outputs.into_iter().map(|o| (o.db, o.rows)).collect();
    Ok(certify(
        fed,
        query,
        site_rows,
        &replies,
        &target_replies,
        &queried_dbs,
        sim,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_flags() {
        assert!(!BasicLocalized::new().use_signatures);
        assert!(!BasicLocalized::new().complete_targets);
        assert!(BasicLocalized::with_signatures().use_signatures);
        assert!(BasicLocalized::new().completing_targets().complete_targets);
        let both = BasicLocalized::with_signatures().completing_targets();
        assert!(both.use_signatures && both.complete_targets);
        assert!(ParallelLocalized::with_signatures().use_signatures);
        assert!(
            ParallelLocalized::new()
                .completing_targets()
                .complete_targets
        );
        assert_eq!(BasicLocalized::default(), BasicLocalized::new());
        assert_eq!(ParallelLocalized::default(), ParallelLocalized::new());
    }

    #[test]
    fn strategy_names_reflect_signature_use() {
        use crate::strategy::ExecutionStrategy as _;
        assert_eq!(BasicLocalized::new().name(), "BL");
        assert_eq!(BasicLocalized::with_signatures().name(), "BL-S");
        assert_eq!(ParallelLocalized::new().name(), "PL");
        assert_eq!(ParallelLocalized::with_signatures().name(), "PL-S");
    }

    #[test]
    fn dedup_drops_repeated_requests() {
        let mut seen = HashSet::new();
        let item = LOid::new(DbId::new(0), 1);
        let assistant = LOid::new(DbId::new(1), 2);
        let request = CheckRequest {
            item,
            assistant,
            pred: PredId::new(0),
            start: 1,
        };
        assert!(seen.insert(request));
        assert!(!seen.insert(request));
        // A different start (same item/assistant/pred) is a distinct check.
        let other = CheckRequest {
            item,
            assistant,
            pred: PredId::new(0),
            start: 0,
        };
        assert!(seen.insert(other));
    }
}
