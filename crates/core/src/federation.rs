//! The federation: component databases, global schema, GOid tables, and
//! the replicated signature catalog.

use crate::error::ExecError;
use fedoq_object::{DbId, GlobalClassId, LOid, ObjectSignature};
use fedoq_query::{bind, parse, BoundQuery};
use fedoq_schema::{
    identify_isomerism, identify_isomerism_with_keys, integrate, Correspondences, EntityKeyMap,
    GlobalSchema, GoidCatalog,
};
use fedoq_store::{Change, ComponentDb};
use std::collections::HashMap;
use std::fmt;

/// One entry in the federation's ordered change log.
///
/// Every [`Federation::mutate`] appends the store-level changes it drained,
/// annotated with the mutated site and — when resolvable — the *global*
/// class the changed object belongs(ed) to, so consumers can filter by
/// class footprint without re-deriving the mapping themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChangeRecord {
    seq: u64,
    db: DbId,
    change: Change,
    class: Option<GlobalClassId>,
}

impl ChangeRecord {
    /// Position in the federation-wide stream (monotonic, gap-free).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The component database the mutation ran against.
    pub fn db(&self) -> DbId {
        self.db
    }

    /// The store-level change.
    pub fn change(&self) -> Change {
        self.change
    }

    /// The global class of the changed object. `None` when the object's
    /// class does not participate in the integration, or when an object
    /// inserted and retracted within one `mutate` batch left no trace to
    /// resolve against — consumers should treat `None` conservatively
    /// (i.e. as potentially affecting any class).
    pub fn class(&self) -> Option<GlobalClassId> {
        self.class
    }

    /// The changed object's local identity.
    pub fn loid(&self) -> LOid {
        match self.change {
            Change::Insert(l) | Change::Retract(l) | Change::Update(l) => l,
        }
    }
}

/// A consumer's position in the federation change log.
///
/// Multiple consumers (index maintenance, the live reactor, audits) each
/// hold their own cursor over the *same* ordered stream; reads return
/// borrowed slices, so no consumer forces a clone of the log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct ChangeCursor {
    next: u64,
}

impl ChangeCursor {
    /// A cursor at the very beginning of the stream (sequence 0).
    pub fn start() -> ChangeCursor {
        ChangeCursor::default()
    }

    /// The sequence number of the next record this cursor will observe.
    pub fn position(&self) -> u64 {
        self.next
    }
}

/// A distributed heterogeneous object database federation.
///
/// Owns the component databases, the integrated global schema, the GOid
/// mapping tables (logically replicated at every site), and the object
/// signatures (the auxiliary structure for the signature-assisted
/// strategies).
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct Federation {
    dbs: Vec<ComponentDb>,
    global: GlobalSchema,
    catalog: GoidCatalog,
    /// Entity-key map for incremental catalog maintenance; `None` for
    /// federations assembled from prebuilt parts, whose catalog we cannot
    /// re-derive — those fall back to full rebuilds on mutation.
    keymap: Option<EntityKeyMap>,
    signatures: HashMap<LOid, ObjectSignature>,
    /// Mutation counter: bumped by [`Federation::mutate`] so caches keyed
    /// on federation data (see `crate::cache`) can invalidate.
    generation: u64,
    /// Ordered change log appended by [`Federation::mutate`]; record `i`
    /// carries sequence `log_base + i`. Trimmed explicitly via
    /// [`Federation::trim_changes`].
    changelog: Vec<ChangeRecord>,
    /// Sequence number of `changelog[0]` (records below it were trimmed).
    log_base: u64,
}

impl Federation {
    /// Integrates the component schemas, identifies isomeric objects, and
    /// builds the signature catalog.
    ///
    /// `dbs[i]` must have id `DbId::new(i)`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Schema`] when integration or isomerism
    /// identification fails, and [`ExecError::Internal`] when database ids
    /// are out of order.
    pub fn new(mut dbs: Vec<ComponentDb>, corr: &Correspondences) -> Result<Federation, ExecError> {
        for (i, db) in dbs.iter().enumerate() {
            if db.id().index() != i {
                return Err(ExecError::Internal(format!(
                    "database at position {i} has id {}",
                    db.id()
                )));
            }
        }
        let schemas: Vec<(DbId, &fedoq_store::ComponentSchema)> =
            dbs.iter().map(|d| (d.id(), d.schema())).collect();
        let global = integrate(&schemas, corr)?;
        let db_refs: Vec<&ComponentDb> = dbs.iter().collect();
        let (catalog, keymap) = identify_isomerism_with_keys(&db_refs, &global)?;
        let signatures = build_signatures(&dbs);
        for db in &mut dbs {
            db.set_change_tracking(true); // feeds incremental maintenance
        }
        Ok(Federation {
            dbs,
            global,
            catalog,
            keymap: Some(keymap),
            signatures,
            generation: 0,
            changelog: Vec::new(),
            log_base: 0,
        })
    }

    /// Assembles a federation from prebuilt parts (used by generators that
    /// construct the catalog directly). Lacking the entity-key map behind
    /// the supplied catalog, such a federation rebuilds the catalog in
    /// full on every [`Federation::mutate`] — signatures are still
    /// maintained incrementally.
    pub fn from_parts(
        mut dbs: Vec<ComponentDb>,
        global: GlobalSchema,
        catalog: GoidCatalog,
    ) -> Federation {
        let signatures = build_signatures(&dbs);
        for db in &mut dbs {
            db.set_change_tracking(true);
        }
        Federation {
            dbs,
            global,
            catalog,
            keymap: None,
            signatures,
            generation: 0,
            changelog: Vec::new(),
            log_base: 0,
        }
    }

    /// The mutation generation: 0 at construction, +1 per successful
    /// [`Federation::mutate`]. Lookup caches compare this against the
    /// generation their entries were computed under.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Applies a store mutation to one component database, then restores
    /// the federation invariants — the GOid mapping tables and the
    /// signature catalog — and bumps the mutation generation.
    ///
    /// When the database's change log is available (the normal case), the
    /// catalog and signatures are maintained *incrementally*: cost is
    /// O(objects touched), not O(total extent size), which is what keeps
    /// repeated mutation affordable at millions of objects. A federation
    /// without an entity-key map ([`Federation::from_parts`]) or whose
    /// change log was disabled falls back to the full rebuild.
    ///
    /// The closure's own failure leaves the federation untouched — the
    /// maintenance only runs after `f` succeeds.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Internal`] when `db` is out of range,
    /// [`ExecError::Store`] when `f` fails, and [`ExecError::Schema`]
    /// when isomerism maintenance fails afterwards (e.g. the mutation
    /// created two objects with one entity key in a single database).
    pub fn mutate<R, F>(&mut self, db: DbId, f: F) -> Result<R, ExecError>
    where
        F: FnOnce(&mut ComponentDb) -> Result<R, fedoq_store::StoreError>,
    {
        let slot = self
            .dbs
            .get_mut(db.index())
            .ok_or_else(|| ExecError::Internal(format!("no database {db}")))?;
        let out = f(slot)?;
        let tracked = slot.change_tracking();
        let changes = slot.drain_changes();
        slot.set_change_tracking(true); // re-arm even if `f` disabled it

        // Change log: annotate each record with the changed object's
        // *global* class while that is still resolvable — a retracted
        // object's local class is already gone from the store, but the
        // pre-batch catalog (not yet maintained below) may still map it.
        for change in &changes {
            let loid = match *change {
                Change::Insert(l) | Change::Retract(l) | Change::Update(l) => l,
            };
            let class = self.resolve_global_class(db, loid);
            let seq = self.log_base + self.changelog.len() as u64;
            self.changelog.push(ChangeRecord {
                seq,
                db,
                change: *change,
                class,
            });
        }
        let mutated = &self.dbs[db.index()];

        // Catalog: incremental when the key map and a trustworthy change
        // log are both present.
        if let (true, Some(keymap)) = (tracked, self.keymap.as_mut()) {
            for change in &changes {
                match *change {
                    Change::Insert(l) => keymap.apply_insert(&mut self.catalog, mutated, l)?,
                    Change::Retract(l) => keymap.apply_retract(&mut self.catalog, l),
                    Change::Update(l) => keymap.apply_update(&mut self.catalog, mutated, l)?,
                }
            }
        } else {
            let db_refs: Vec<&ComponentDb> = self.dbs.iter().collect();
            if self.keymap.is_some() {
                let (catalog, keymap) = identify_isomerism_with_keys(&db_refs, &self.global)?;
                self.catalog = catalog;
                self.keymap = Some(keymap);
            } else {
                self.catalog = identify_isomerism(&db_refs, &self.global)?;
            }
        }

        // Signatures: the change log pinpoints exactly which entries moved.
        if tracked {
            let mutated = &self.dbs[db.index()];
            for change in &changes {
                match *change {
                    Change::Insert(l) | Change::Update(l) => match signature_of(mutated, l) {
                        Some(sig) => {
                            self.signatures.insert(l, sig);
                        }
                        None => {
                            self.signatures.remove(&l);
                        }
                    },
                    Change::Retract(l) => {
                        self.signatures.remove(&l);
                    }
                }
            }
        } else {
            self.signatures = build_signatures(&self.dbs);
        }
        self.generation += 1;
        Ok(out)
    }

    /// The global class of a changed object: via its live local class
    /// when the object still exists, otherwise via the (pre-maintenance)
    /// catalog, which still maps LOids retracted in the current batch.
    fn resolve_global_class(&self, db: DbId, loid: LOid) -> Option<GlobalClassId> {
        if let Some(local) = self.dbs[db.index()].class_of(loid) {
            return self.global.owner_of(db, local).map(|(g, _)| g);
        }
        self.global
            .iter()
            .filter(|(_, c)| c.constituent_for(db).is_some())
            .find(|(g, _)| self.catalog.table(*g).goid_of(loid).is_some())
            .map(|(g, _)| g)
    }

    /// A cursor positioned at the current *end* of the change log: reading
    /// from it observes only changes applied after this call.
    pub fn change_cursor(&self) -> ChangeCursor {
        ChangeCursor {
            next: self.log_base + self.changelog.len() as u64,
        }
    }

    /// The ordered change records at or after `cursor`, as a borrowed
    /// slice — multiple consumers each hold their own cursor over the same
    /// underlying stream without cloning it. After processing, advance
    /// with [`Federation::change_cursor`]. Records trimmed away are gone;
    /// a consumer can detect the gap by comparing the first record's
    /// [`ChangeRecord::seq`] against its cursor position.
    pub fn changes_since(&self, cursor: ChangeCursor) -> &[ChangeRecord] {
        let from = (cursor.next.saturating_sub(self.log_base) as usize).min(self.changelog.len());
        &self.changelog[from..]
    }

    /// Drops records before `cursor`. Call once every consumer has read
    /// past it; the sequence numbering is unaffected.
    pub fn trim_changes(&mut self, cursor: ChangeCursor) {
        let upto = (cursor.next.saturating_sub(self.log_base) as usize).min(self.changelog.len());
        self.changelog.drain(..upto);
        self.log_base += upto as u64;
    }

    /// Number of component databases.
    pub fn num_dbs(&self) -> usize {
        self.dbs.len()
    }

    /// One component database.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn db(&self, id: DbId) -> &ComponentDb {
        &self.dbs[id.index()]
    }

    /// All component databases in id order.
    pub fn dbs(&self) -> &[ComponentDb] {
        &self.dbs
    }

    /// The integrated global schema.
    pub fn global_schema(&self) -> &GlobalSchema {
        &self.global
    }

    /// The GOid mapping tables (replicated at every site).
    pub fn catalog(&self) -> &GoidCatalog {
        &self.catalog
    }

    /// The signature of a local object, if it exists.
    pub fn signature(&self, loid: LOid) -> Option<&ObjectSignature> {
        self.signatures.get(&loid)
    }

    /// Parses an SQL/X query string and binds it against the global
    /// schema.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Query`] for lexical, syntactic, or binding
    /// problems.
    pub fn parse_and_bind(&self, sql: &str) -> Result<BoundQuery, ExecError> {
        let query = parse(sql)?;
        Ok(bind(&query, &self.global)?)
    }

    /// Persists every component database under `dir` (one `db<N>.fedoq`
    /// file per site). Integration metadata is *not* stored: it is
    /// re-derived on load, exactly as a restarted federation would.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Internal`] wrapping filesystem or encoding
    /// failures.
    pub fn save_to_dir(&self, dir: &std::path::Path) -> Result<(), ExecError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| ExecError::Internal(format!("creating {}: {e}", dir.display())))?;
        for db in &self.dbs {
            let path = dir.join(format!("db{}.fedoq", db.id().index()));
            let file = std::fs::File::create(&path)
                .map_err(|e| ExecError::Internal(format!("creating {}: {e}", path.display())))?;
            let mut writer = std::io::BufWriter::new(file);
            fedoq_store::save_db(db, &mut writer)
                .map_err(|e| ExecError::Internal(format!("writing {}: {e}", path.display())))?;
        }
        Ok(())
    }

    /// Loads the databases saved by [`Federation::save_to_dir`] and
    /// re-integrates them under `corr`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Internal`] for filesystem/decoding failures
    /// and [`ExecError::Schema`] if re-integration fails.
    pub fn load_from_dir(
        dir: &std::path::Path,
        corr: &Correspondences,
    ) -> Result<Federation, ExecError> {
        let mut dbs = Vec::new();
        for index in 0.. {
            let path = dir.join(format!("db{index}.fedoq"));
            if !path.exists() {
                break;
            }
            let file = std::fs::File::open(&path)
                .map_err(|e| ExecError::Internal(format!("opening {}: {e}", path.display())))?;
            let mut reader = std::io::BufReader::new(file);
            let db = fedoq_store::load_db(&mut reader)
                .map_err(|e| ExecError::Internal(format!("reading {}: {e}", path.display())))?;
            dbs.push(db);
        }
        if dbs.is_empty() {
            return Err(ExecError::Internal(format!(
                "no db<N>.fedoq files under {}",
                dir.display()
            )));
        }
        Federation::new(dbs, corr)
    }
}

impl fmt::Display for Federation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "federation of {} databases, {} global classes, {} entities",
            self.dbs.len(),
            self.global.len(),
            self.catalog.total_entities()
        )
    }
}

/// Builds each object's signature from its non-null attribute values plus
/// null markers (see `fedoq_object::signature` for why nulls need
/// markers).
fn build_signatures(dbs: &[ComponentDb]) -> HashMap<LOid, ObjectSignature> {
    let mut out = HashMap::new();
    for db in dbs {
        for (class_id, _) in db.schema().iter() {
            for object in db.extent(class_id).iter() {
                if let Some(sig) = signature_of(db, object.loid()) {
                    out.insert(object.loid(), sig);
                }
            }
        }
    }
    out
}

/// The signature of one live object, or `None` if it no longer exists.
fn signature_of(db: &ComponentDb, loid: LOid) -> Option<ObjectSignature> {
    let object = db.object(loid)?;
    let class = db.schema().class(object.class());
    let mut sig = ObjectSignature::new();
    for (attr, value) in class.attrs().iter().zip(object.values()) {
        if value.is_null() {
            sig.insert_null(attr.name());
        } else {
            sig.insert(attr.name(), value);
        }
    }
    Some(sig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedoq_object::Value;
    use fedoq_store::{AttrType, ClassDef, ComponentSchema};

    fn two_db_fed() -> Federation {
        let s0 = ComponentSchema::new(vec![ClassDef::new("Student")
            .attr("s-no", AttrType::int())
            .attr("age", AttrType::int())
            .key(["s-no"])])
        .unwrap();
        let s1 = ComponentSchema::new(vec![ClassDef::new("Student")
            .attr("s-no", AttrType::int())
            .attr("sex", AttrType::text())
            .key(["s-no"])])
        .unwrap();
        let mut db0 = ComponentDb::new(DbId::new(0), "DB0", s0);
        let mut db1 = ComponentDb::new(DbId::new(1), "DB1", s1);
        db0.insert_named(
            "Student",
            &[("s-no", Value::Int(1)), ("age", Value::Int(31))],
        )
        .unwrap();
        db1.insert_named(
            "Student",
            &[("s-no", Value::Int(1)), ("sex", Value::text("m"))],
        )
        .unwrap();
        db1.insert_named("Student", &[("s-no", Value::Int(2))])
            .unwrap();
        Federation::new(vec![db0, db1], &Correspondences::new()).unwrap()
    }

    #[test]
    fn construction_wires_everything() {
        let fed = two_db_fed();
        assert_eq!(fed.num_dbs(), 2);
        assert_eq!(fed.global_schema().len(), 1);
        // Entity 1 is isomeric across both dbs; entity 2 is a singleton.
        let class = fed.global_schema().class_id("Student").unwrap();
        assert_eq!(fed.catalog().table(class).len(), 2);
        assert!(fed.to_string().contains("2 databases"));
    }

    #[test]
    fn db_ids_must_match_positions() {
        let s = ComponentSchema::new(vec![ClassDef::new("C")]).unwrap();
        let db_wrong = ComponentDb::new(DbId::new(5), "DB5", s);
        let err = Federation::new(vec![db_wrong], &Correspondences::new()).unwrap_err();
        assert!(matches!(err, ExecError::Internal(_)));
    }

    #[test]
    fn signatures_cover_all_objects() {
        let fed = two_db_fed();
        for db in fed.dbs() {
            for (class_id, _) in db.schema().iter() {
                for o in db.extent(class_id).iter() {
                    assert!(fed.signature(o.loid()).is_some());
                }
            }
        }
    }

    #[test]
    fn signature_contents_reflect_values_and_nulls() {
        let fed = two_db_fed();
        let db1 = fed.db(DbId::new(1));
        let student2 = db1
            .extent_by_name("Student")
            .unwrap()
            .iter()
            .find(|o| o.value(0) == &Value::Int(2))
            .unwrap();
        let sig = fed.signature(student2.loid()).unwrap();
        assert!(sig.may_contain("s-no", &Value::Int(2)));
        assert!(sig.may_be_null("sex"));
        assert!(!sig.may_contain("s-no", &Value::Int(99)));
    }

    #[test]
    fn mutate_rebuilds_catalog_and_bumps_generation() {
        let mut fed = two_db_fed();
        assert_eq!(fed.generation(), 0);
        let class = fed.global_schema().class_id("Student").unwrap();
        assert_eq!(fed.catalog().table(class).len(), 2);

        // Insert a new isomeric copy of entity 2 in DB0: the catalog must
        // pick it up, and every new object must gain a signature.
        let loid = fed
            .mutate(DbId::new(0), |db| {
                db.insert_named(
                    "Student",
                    &[("s-no", Value::Int(2)), ("age", Value::Int(44))],
                )
            })
            .unwrap();
        assert_eq!(fed.generation(), 1);
        assert_eq!(fed.catalog().table(class).len(), 2);
        assert!(fed.signature(loid).is_some());

        // A failing closure surfaces the store error without bumping.
        let err = fed.mutate(DbId::new(1), |db| {
            db.insert_named("Nope", &[("s-no", Value::Int(9))])
        });
        assert!(err.is_err());
        assert_eq!(fed.generation(), 1);

        // Retract it again: the entity collapses back to its DB1 copies.
        fed.mutate(DbId::new(0), |db| db.retract(loid)).unwrap();
        assert_eq!(fed.generation(), 2);
        assert!(fed.signature(loid).is_none());
    }

    #[test]
    fn incremental_mutation_agrees_with_fresh_integration() {
        let mut fed = two_db_fed();
        let class = fed.global_schema().class_id("Student").unwrap();
        // A mixed batch: join an entity, found one, update a key, retract.
        let joined = fed
            .mutate(DbId::new(0), |db| {
                let joined = db.insert_named(
                    "Student",
                    &[("s-no", Value::Int(2)), ("age", Value::Int(40))],
                )?;
                let away = db.insert_named("Student", &[("s-no", Value::Int(7))])?;
                db.retract(away)?;
                Ok(joined)
            })
            .unwrap();
        fed.mutate(DbId::new(0), |db| {
            db.object_mut(joined)
                .expect("object just inserted")
                .set(0, Value::Int(9));
            Ok(())
        })
        .unwrap();

        // An independently integrated federation over the same store data
        // must group entities identically (GOid numbering may differ).
        let rebuilt = Federation::new(fed.dbs().to_vec(), &Correspondences::new()).unwrap();
        let group_of = |fed: &Federation, l: LOid| -> Vec<LOid> {
            let g = fed.catalog().table(class).goid_of(l).unwrap();
            let mut ls = fed.catalog().table(class).loids_of(g).to_vec();
            ls.sort();
            ls
        };
        assert_eq!(
            fed.catalog().table(class).len(),
            rebuilt.catalog().table(class).len()
        );
        for db in fed.dbs() {
            for l in db.extent_by_name("Student").unwrap().loids() {
                assert_eq!(group_of(&fed, l), group_of(&rebuilt, l));
                assert!(fed.signature(l).is_some());
            }
        }
        // The updated object's signature reflects the new key.
        assert!(fed
            .signature(joined)
            .unwrap()
            .may_contain("s-no", &Value::Int(9)));
    }

    #[test]
    fn change_log_is_ordered_class_annotated_and_trimmable() {
        let mut fed = two_db_fed();
        let class = fed.global_schema().class_id("Student").unwrap();
        let mut cursor = fed.change_cursor();
        assert!(fed.changes_since(cursor).is_empty());

        // One insert, then a batch of insert + same-batch retract.
        let joined = fed
            .mutate(DbId::new(0), |db| {
                db.insert_named(
                    "Student",
                    &[("s-no", Value::Int(3)), ("age", Value::Int(20))],
                )
            })
            .unwrap();
        let records = fed.changes_since(cursor);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].seq(), 0);
        assert_eq!(records[0].db(), DbId::new(0));
        assert_eq!(records[0].loid(), joined);
        assert!(matches!(records[0].change(), Change::Insert(_)));
        assert_eq!(records[0].class(), Some(class));
        cursor = fed.change_cursor();

        // A retract of a pre-existing object resolves its class via the
        // catalog even though the store has already forgotten it.
        fed.mutate(DbId::new(0), |db| db.retract(joined).map(|_| ()))
            .unwrap();
        let records = fed.changes_since(cursor);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].seq(), 1);
        assert!(matches!(records[0].change(), Change::Retract(_)));
        assert_eq!(records[0].class(), Some(class));

        // Two consumers observe the same stream; trimming below the
        // slower cursor preserves sequence numbering.
        let slow = cursor;
        assert_eq!(fed.changes_since(slow).len(), 1);
        fed.trim_changes(slow);
        assert_eq!(fed.changes_since(slow).len(), 1);
        assert_eq!(fed.changes_since(slow)[0].seq(), 1);
        let done = fed.change_cursor();
        fed.trim_changes(done);
        assert!(fed.changes_since(slow).is_empty());
        assert_eq!(done.position(), 2);
    }

    #[test]
    fn parse_and_bind_round_trip() {
        let fed = two_db_fed();
        let q = fed
            .parse_and_bind("SELECT X.s-no FROM Student X WHERE X.age > 30")
            .unwrap();
        assert_eq!(q.predicates().len(), 1);
        assert!(fed.parse_and_bind("SELECT X.y FROM Nope X").is_err());
    }
}
