//! The centralized approach (CA): phase order O → I → P.
//!
//! Every object of every involved local root and local branch class is
//! projected on the query's attributes and shipped to the global
//! processing site, which materializes the global classes by outerjoining
//! the constituents over GOids (phases O and I) and then evaluates the
//! predicates on the integrated objects (phase P).

use crate::cache::{query_fingerprint, CacheKey, CacheValue, LookupCache};
use crate::error::ExecError;
use crate::federation::Federation;
use crate::materialize::CentralExtents;
use crate::pipeline::PipelineConfig;
use crate::result::{MaybeRow, QueryAnswer, ResultRow};
use crate::strategy::ExecutionStrategy;
use fedoq_object::{DbId, GOid, Truth};
use fedoq_query::BoundQuery;
use fedoq_sim::{Phase, Simulation, Site, SystemParams};
use fedoq_store::{map_chunks, worker_shares};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The centralized strategy (the paper's algorithm **CA**).
///
/// See the crate-level example.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Centralized;

impl ExecutionStrategy for Centralized {
    fn name(&self) -> &'static str {
        "CA"
    }

    fn execute(
        &self,
        fed: &Federation,
        query: &BoundQuery,
        sim: &mut Simulation,
    ) -> Result<QueryAnswer, ExecError> {
        centralized_execute_with(fed, query, sim, PipelineConfig::sequential(), None)
    }

    fn execute_with(
        &self,
        fed: &Federation,
        query: &BoundQuery,
        sim: &mut Simulation,
        pipeline: PipelineConfig,
        cache: Option<&RefCell<LookupCache>>,
    ) -> Result<QueryAnswer, ExecError> {
        centralized_execute_with(fed, query, sim, pipeline, cache)
    }
}

/// CA under an explicit pipeline: the ship phase (steps CA_G1/CA_C1)
/// followed by the global-site share.
///
/// With the cache enabled, each projected-extent shipment is remembered
/// under `(site, plan position, query)`; a repeat of the same query under
/// an unchanged federation generation finds every shipment warm and skips
/// the query broadcast, the disk reads, and the wire transfer entirely —
/// the global site still holds the extents it was shipped last time.
///
/// # Errors
///
/// As for [`Centralized`]'s `execute`.
pub fn centralized_execute_with(
    fed: &Federation,
    query: &BoundQuery,
    sim: &mut Simulation,
    pipeline: PipelineConfig,
    cache: Option<&RefCell<LookupCache>>,
) -> Result<QueryAnswer, ExecError> {
    let cache = if pipeline.cache { cache } else { None };
    // --- Step CA_G1 / CA_C1: request and ship the projected extents.
    let params = *sim.params();
    let plan = ship_plan(fed, query, &params);

    let mut cold = vec![true; plan.shipments.len()];
    if let Some(cache) = cache {
        let fingerprint = query_fingerprint(query);
        let mut cache = cache.borrow_mut();
        for (index, &(db, bytes)) in plan.shipments.iter().enumerate() {
            let key = CacheKey::Shipment {
                db,
                index,
                query: fingerprint,
            };
            if cache.get(&key) == Some(CacheValue::Shipment(bytes)) {
                cold[index] = false;
            } else {
                cache.put(key, CacheValue::Shipment(bytes));
            }
        }
    }

    // Only sites still owing a shipment receive the query. Without a
    // cache every shipment is cold and this is exactly the full site
    // list, preserving the legacy cost profile bit for bit.
    let contact: Vec<DbId> = if cache.is_some() {
        plan.sites
            .iter()
            .copied()
            .filter(|&db| {
                plan.shipments
                    .iter()
                    .zip(&cold)
                    .any(|(&(owner, _), &is_cold)| owner == db && is_cold)
            })
            .collect()
    } else {
        plan.sites.clone()
    };
    let requests: Vec<_> = contact
        .iter()
        .map(|&db| {
            let token = sim.send(
                Site::Global,
                Site::Db(db),
                2 * params.attr_bytes,
                Phase::Ship,
            );
            (db, token)
        })
        .collect();
    for &(db, token) in &requests {
        sim.recv(Site::Db(db), token);
    }

    let mut shipments = Vec::new();
    for (index, &(db, bytes)) in plan.shipments.iter().enumerate() {
        if !cold[index] {
            continue;
        }
        sim.disk(Site::Db(db), bytes, Phase::Ship);
        shipments.push((Site::Db(db), Site::Global, bytes, Phase::Ship));
    }
    let tokens = sim.send_batch(shipments);
    sim.recv_all(Site::Global, tokens);

    // --- Steps CA_G2 / CA_G3 at the global site.
    centralized_answer_cached(fed, query, sim, pipeline, cache)
}

/// CA's shipping plan: which sites receive the query and how many bytes of
/// projected extent each involved constituent ships to the global site.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShipPlan {
    /// Sites hosting any involved constituent (they receive the query),
    /// ascending.
    pub sites: Vec<DbId>,
    /// `(hosting site, projected extent bytes)` per involved constituent,
    /// in deterministic (class, constituent) order.
    pub shipments: Vec<(DbId, u64)>,
}

/// Computes CA's step CA_C1 without touching a simulation: every involved
/// constituent extent, projected on the query's attributes, sized in bytes.
pub fn ship_plan(fed: &Federation, query: &BoundQuery, params: &SystemParams) -> ShipPlan {
    let schema = fed.global_schema();
    let mut involved = query.involved_slots();
    involved.entry(query.range()).or_default();
    let sites: BTreeSet<DbId> = involved
        .keys()
        .flat_map(|&c| schema.class(c).hosting_dbs())
        .collect();
    // `involved_slots` hands back a HashMap; order it before walking so
    // the shipment list really is in (class, constituent) order — the
    // shipment cache keys entries by position in this list.
    let involved: BTreeMap<_, _> = involved.into_iter().collect();
    let mut shipments = Vec::new();
    for (&class_id, slots) in &involved {
        for constituent in schema.class(class_id).constituents() {
            let db = constituent.db();
            let present = slots
                .iter()
                .filter(|&&g| !constituent.is_missing(g))
                .count();
            let count = fed.db(db).extent(constituent.class()).len() as u64;
            shipments.push((db, count * params.object_bytes(present)));
        }
    }
    ShipPlan {
        sites: sites.into_iter().collect(),
        shipments,
    }
}

/// Runs CA's global-site share — materialize the global classes (phases O
/// and I) and evaluate the predicates on them (phase P) — charging the
/// global site's clock in `sim`. This is the unit of work the distributed
/// global actor performs once every shipment has arrived.
pub fn centralized_answer(
    fed: &Federation,
    query: &BoundQuery,
    sim: &mut Simulation,
) -> Result<QueryAnswer, ExecError> {
    centralized_answer_with(fed, query, sim, PipelineConfig::sequential())
}

/// [`centralized_answer`] under an explicit pipeline: the sorted roots are
/// split into chunks that parallel workers evaluate independently, and
/// the per-chunk partials are merged back in chunk order — the answer is
/// byte-identical to the sequential walk. The simulation charges every
/// probe either way; a parallel configuration merely overlaps the chunk
/// costs on the global site's clock, advancing it by the critical path.
///
/// # Errors
///
/// As for [`centralized_answer`].
pub fn centralized_answer_with(
    fed: &Federation,
    query: &BoundQuery,
    sim: &mut Simulation,
    pipeline: PipelineConfig,
) -> Result<QueryAnswer, ExecError> {
    centralized_answer_cached(fed, query, sim, pipeline, None)
}

/// [`centralized_answer_with`] with access to the shared lookup cache.
///
/// With the cache enabled, the built [`CentralExtents`] (materialized
/// extents, sorted roots, and — under `pipeline.index` — the root
/// equality indexes) is remembered under the query's fingerprint: a warm
/// repeat skips phases O and I entirely, the global site still holding
/// the integrated extents from the previous run. With `pipeline.index`,
/// phase P scans only the equality-index candidates instead of every
/// root; the skipped roots would be eliminated by a definite `False`, so
/// the answer stays byte-identical.
pub(crate) fn centralized_answer_cached(
    fed: &Federation,
    query: &BoundQuery,
    sim: &mut Simulation,
    pipeline: PipelineConfig,
    cache: Option<&RefCell<LookupCache>>,
) -> Result<QueryAnswer, ExecError> {
    let cache = if pipeline.cache { cache } else { None };
    let mut involved = query.involved_slots();
    // The range class is always involved: its extent seeds the rows even
    // when neither targets nor predicates read a root attribute.
    involved.entry(query.range()).or_default();

    // --- Step CA_G2: materialize the global classes (phases O and I) —
    // or reuse the warm extents from the previous run of this query.
    let fingerprint = cache.map(|_| query_fingerprint(query));
    let warm = match (cache, fingerprint) {
        (Some(cache), Some(fp)) => cache.borrow_mut().materialized(fp, pipeline.index),
        _ => None,
    };
    let central = match warm {
        Some(central) => central,
        None => {
            let (central, cost, index_probes) =
                CentralExtents::build(fed, query, &involved, pipeline.index)?;
            sim.cpu(Site::Global, cost.o_comparisons, Phase::O);
            sim.cpu(Site::Global, cost.i_comparisons + index_probes, Phase::I);
            let central = Arc::new(central);
            if let (Some(cache), Some(fp)) = (cache, fingerprint) {
                cache
                    .borrow_mut()
                    .put_materialized(fp, pipeline.index, central.clone());
            }
            central
        }
    };
    let materialized = &central.mat;

    // --- Step CA_G3: evaluate the predicates (phase P), over the index
    // candidates when an equality predicate has a built slot index.
    let mut index_probes = 0u64;
    let candidates = if pipeline.index {
        central.candidates(query, &mut index_probes)
    } else {
        None
    };
    if index_probes > 0 {
        sim.cpu(Site::Global, index_probes, Phase::P);
    }
    let roots: &[GOid] = candidates.as_deref().unwrap_or(&central.roots);

    let partials = map_chunks(roots, pipeline.threads, pipeline.chunk, |_, chunk| {
        let mut certain = Vec::new();
        let mut maybe = Vec::new();
        let mut probes = 0u64;
        for &goid in chunk {
            let mut eliminated = false;
            let mut unsolved = Vec::new();
            for pred in query.predicates() {
                let value = materialized.walk(goid, pred.path(), &mut probes);
                probes += 1;
                match value.compare(pred.op(), pred.literal()) {
                    Truth::True => {}
                    Truth::False => {
                        eliminated = true;
                        break;
                    }
                    Truth::Unknown => unsolved.push(pred.id()),
                }
            }
            if eliminated {
                continue;
            }
            let values = query
                .targets()
                .iter()
                .map(|t| materialized.walk(goid, t, &mut probes))
                .collect();
            let row = ResultRow::new(goid, values);
            if unsolved.is_empty() {
                certain.push(row);
            } else {
                maybe.push(MaybeRow::new(row, unsolved));
            }
        }
        (certain, maybe, probes)
    });

    let mut certain = Vec::new();
    let mut maybe = Vec::new();
    let mut chunk_probes = Vec::with_capacity(partials.len());
    for (chunk_certain, chunk_maybe, probes) in partials {
        certain.extend(chunk_certain);
        maybe.extend(chunk_maybe);
        chunk_probes.push(probes);
    }
    if pipeline.is_parallel() {
        let shares = worker_shares(&chunk_probes, pipeline.threads);
        sim.cpu_parallel(Site::Global, &shares, Phase::P);
    } else {
        sim.cpu(Site::Global, chunk_probes.iter().sum(), Phase::P);
    }
    Ok(QueryAnswer::new(certain, maybe))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::run_strategy;
    use fedoq_object::Value;
    use fedoq_schema::Correspondences;
    use fedoq_sim::SystemParams;
    use fedoq_store::{AttrType, ClassDef, ComponentDb, ComponentSchema};

    /// DB0: Student(s-no, age) — no sex. DB1: Student(s-no, sex) — no age.
    fn fed() -> Federation {
        let s0 = ComponentSchema::new(vec![ClassDef::new("Student")
            .attr("s-no", AttrType::int())
            .attr("age", AttrType::int())
            .key(["s-no"])])
        .unwrap();
        let s1 = ComponentSchema::new(vec![ClassDef::new("Student")
            .attr("s-no", AttrType::int())
            .attr("sex", AttrType::text())
            .key(["s-no"])])
        .unwrap();
        let mut db0 = ComponentDb::new(DbId::new(0), "DB0", s0);
        let mut db1 = ComponentDb::new(DbId::new(1), "DB1", s1);
        // Entity 1: both copies; age known.
        db0.insert_named(
            "Student",
            &[("s-no", Value::Int(1)), ("age", Value::Int(31))],
        )
        .unwrap();
        db1.insert_named(
            "Student",
            &[("s-no", Value::Int(1)), ("sex", Value::text("m"))],
        )
        .unwrap();
        // Entity 2: only in DB1; age unknown everywhere.
        db1.insert_named(
            "Student",
            &[("s-no", Value::Int(2)), ("sex", Value::text("f"))],
        )
        .unwrap();
        // Entity 3: only in DB0; too young.
        db0.insert_named(
            "Student",
            &[("s-no", Value::Int(3)), ("age", Value::Int(20))],
        )
        .unwrap();
        Federation::new(vec![db0, db1], &Correspondences::new()).unwrap()
    }

    #[test]
    fn certain_maybe_and_eliminated() {
        let f = fed();
        let q = f
            .parse_and_bind("SELECT X.s-no FROM Student X WHERE X.age >= 30")
            .unwrap();
        let (answer, metrics) =
            run_strategy(&Centralized, &f, &q, SystemParams::paper_default()).unwrap();
        assert_eq!(answer.certain().len(), 1);
        assert_eq!(answer.certain()[0].values(), &[Value::Int(1)]);
        assert_eq!(answer.maybe().len(), 1);
        assert_eq!(answer.maybe()[0].row().values(), &[Value::Int(2)]);
        assert!(metrics.total_execution_us > 0.0);
        assert!(metrics.response_us > 0.0);
        assert!(metrics.bytes_transferred > 0);
    }

    #[test]
    fn maybe_turned_certain_by_isomeric_copy() {
        // Queried on `sex` (missing in DB0): entity 1's DB0 copy would be a
        // maybe result, but its DB1 copy supplies sex = 'm'.
        let f = fed();
        let q = f
            .parse_and_bind("SELECT X.s-no FROM Student X WHERE X.sex = 'm'")
            .unwrap();
        let (answer, _) =
            run_strategy(&Centralized, &f, &q, SystemParams::paper_default()).unwrap();
        assert_eq!(answer.certain().len(), 1);
        assert_eq!(answer.certain()[0].values(), &[Value::Int(1)]);
        // Entity 2: sex = 'f' => eliminated. Entity 3: sex unknown => maybe.
        assert_eq!(answer.maybe().len(), 1);
        assert_eq!(answer.maybe()[0].row().values(), &[Value::Int(3)]);
    }

    #[test]
    fn no_predicates_returns_all_entities_certain() {
        let f = fed();
        let q = f.parse_and_bind("SELECT X.s-no FROM Student X").unwrap();
        let (answer, _) =
            run_strategy(&Centralized, &f, &q, SystemParams::paper_default()).unwrap();
        assert_eq!(answer.certain().len(), 3);
        assert!(answer.maybe().is_empty());
    }

    #[test]
    fn warm_cache_skips_materialization_and_index_narrows_phase_p() {
        use crate::strategy::run_strategy_with_pipeline;
        let f = fed();
        let q = f
            .parse_and_bind("SELECT X.s-no FROM Student X WHERE X.sex = 'm'")
            .unwrap();
        let params = SystemParams::paper_default();
        let (baseline, _) = run_strategy(&Centralized, &f, &q, params).unwrap();

        let pipeline = PipelineConfig::sequential().with_cache().with_index();
        let cache = std::cell::RefCell::new(crate::cache::LookupCache::default());
        let (cold, cold_metrics) =
            run_strategy_with_pipeline(&Centralized, &f, &q, params, pipeline, Some(&cache))
                .unwrap();
        let (warm, warm_metrics) =
            run_strategy_with_pipeline(&Centralized, &f, &q, params, pipeline, Some(&cache))
                .unwrap();
        // The cached + indexed runs answer byte-identically to the
        // legacy sequential execution.
        assert_eq!(cold, baseline);
        assert_eq!(warm, baseline);
        // The warm run reuses the materialized extents (phases O and I
        // skipped) and the shipments (ship phase skipped): strictly
        // cheaper than the cold run, and the cache really was hit.
        assert!(warm_metrics.total_execution_us < cold_metrics.total_execution_us);
        assert!(cache.borrow().stats().hits > 0);
    }

    #[test]
    fn float_literals_never_take_the_index_path() {
        use crate::strategy::run_strategy_with_pipeline;
        // A float-typed attribute: the equality index cannot serve it
        // (floats are not indexable), so the indexed run must fall back
        // to the full scan — and still answer identically.
        let s0 = ComponentSchema::new(vec![ClassDef::new("Student")
            .attr("s-no", AttrType::int())
            .attr("gpa", AttrType::float())
            .key(["s-no"])])
        .unwrap();
        let mut db0 = ComponentDb::new(DbId::new(0), "DB0", s0);
        for (sno, gpa) in [(1, Some(3.5)), (2, Some(2.0)), (3, None)] {
            db0.insert_named(
                "Student",
                &[
                    ("s-no", Value::Int(sno)),
                    ("gpa", gpa.map_or(Value::Null, Value::Float)),
                ],
            )
            .unwrap();
        }
        let f = Federation::new(vec![db0], &Correspondences::new()).unwrap();
        let q = f
            .parse_and_bind("SELECT X.s-no FROM Student X WHERE X.gpa = 3.5")
            .unwrap();
        let params = SystemParams::paper_default();
        let (baseline, _) = run_strategy(&Centralized, &f, &q, params).unwrap();
        let pipeline = PipelineConfig::sequential().with_index();
        let (indexed, _) =
            run_strategy_with_pipeline(&Centralized, &f, &q, params, pipeline, None).unwrap();
        assert_eq!(indexed, baseline);
        assert_eq!(baseline.certain().len(), 1);
        assert_eq!(baseline.maybe().len(), 1); // the null-gpa student
    }

    #[test]
    fn response_time_includes_serialized_shipping() {
        let f = fed();
        let q = f
            .parse_and_bind("SELECT X.s-no FROM Student X WHERE X.age >= 30")
            .unwrap();
        let (_, m) = run_strategy(&Centralized, &f, &q, SystemParams::paper_default()).unwrap();
        // All bytes cross the single shared link, so response >= transfer
        // time of all data, and total >= response.
        let wire_us = m.bytes_transferred as f64 * 8.0;
        assert!(m.response_us >= wire_us);
        assert!(m.total_execution_us >= m.response_us);
    }
}
