//! The global site's merge state for localized execution.
//!
//! BL, PL, and the per-site hybrid all end the same way: every hosting
//! site's `LocalEval` reply is folded into one accumulator, the merged
//! rows are certified once, and maybe rows touched by a failure are
//! re-tagged [`Provenance::Degraded`]. [`LocalizedMerge`] is that
//! accumulator, extracted so the actor runtime (`fedoq-net`) and the
//! concurrent scheduler (`fedoq-sched`) certify through the *same* code —
//! which is what makes a scheduled query's answer byte-identical to a
//! serial run of the same plan.
//!
//! The accumulator is also where replan soundness is enforced
//! structurally: a site merges **at most once**. A mid-flight replan that
//! re-dispatches a site whose reply is already merged would certify the
//! same verdicts twice; [`LocalizedMerge::record_site`] refuses the
//! second merge (and `fedoq-check`'s FQ307 lint rejects such replans
//! statically, before they run).

use crate::certify::{certify, CheckReplies};
use crate::federation::Federation;
use crate::localized::{CheckVerdict, LocalRow, TargetReplies};
use crate::result::{Provenance, QueryAnswer};
use fedoq_object::{DbId, GOid, LOid, Value};
use fedoq_query::{BoundQuery, PredId};
use fedoq_sim::Simulation;
use std::collections::{BTreeSet, HashSet};

/// Accumulates per-site `LocalEval` results and certifies them once.
///
/// Sites are recorded either as a success ([`record_site`]) or as a loss
/// ([`record_site_loss`]); each site merges at most once, whichever
/// outcome lands first. [`finish`] performs certification and the
/// degraded re-tag and consumes the accumulator, so double-certification
/// is unrepresentable.
///
/// [`record_site`]: LocalizedMerge::record_site
/// [`record_site_loss`]: LocalizedMerge::record_site_loss
/// [`finish`]: LocalizedMerge::finish
#[derive(Debug, Default)]
pub struct LocalizedMerge {
    site_rows: Vec<(DbId, Vec<LocalRow>)>,
    replies: CheckReplies,
    target_replies: TargetReplies,
    failed_checks: HashSet<(LOid, PredId)>,
    degraded: BTreeSet<DbId>,
    queried_dbs: Vec<DbId>,
    merged: BTreeSet<DbId>,
}

impl LocalizedMerge {
    /// An empty accumulator.
    pub fn new() -> LocalizedMerge {
        LocalizedMerge::default()
    }

    /// `true` iff `site`'s outcome (success or loss) is already merged.
    pub fn is_merged(&self, site: DbId) -> bool {
        self.merged.contains(&site)
    }

    /// The sites merged so far, ascending.
    pub fn merged_sites(&self) -> Vec<DbId> {
        self.merged.iter().copied().collect()
    }

    /// Folds one site's successful `LocalEval` reply in.
    ///
    /// Returns `false` — and merges nothing — when the site was already
    /// recorded: a late duplicate (e.g. the original reply of a
    /// replanned-away dispatch) must not contribute verdicts twice.
    #[allow(clippy::too_many_arguments)]
    pub fn record_site(
        &mut self,
        site: DbId,
        rows: Vec<LocalRow>,
        verdicts: Vec<CheckVerdict>,
        target_values: Vec<((LOid, usize), Value)>,
        failed_checks: Vec<(LOid, PredId)>,
        degraded_peers: Vec<DbId>,
    ) -> bool {
        if !self.merged.insert(site) {
            return false;
        }
        self.queried_dbs.push(site);
        for v in verdicts {
            self.replies.record(v.item, v.pred, v.verdict);
        }
        for (key, value) in target_values {
            self.target_replies.entry(key).or_default().push(value);
        }
        self.failed_checks.extend(failed_checks);
        self.degraded.extend(degraded_peers);
        self.site_rows.push((site, rows));
        true
    }

    /// Records a site whose whole `LocalEval` failed: no absence
    /// elimination against it, every entity with a copy there degrades.
    ///
    /// Returns `false` when the site was already recorded.
    pub fn record_site_loss(&mut self, site: DbId) -> bool {
        if !self.merged.insert(site) {
            return false;
        }
        self.degraded.insert(site);
        true
    }

    /// The sites marked degraded so far, ascending.
    pub fn degraded_sites(&self) -> Vec<DbId> {
        self.degraded.iter().copied().collect()
    }

    /// Certifies the merged results and re-tags maybe rows touched by a
    /// failure, consuming the accumulator.
    ///
    /// Returns the answer and the degraded sites (ascending). Certain
    /// rows are never re-tagged: isomeric copies are consistent, so data
    /// already certified cannot be contradicted by whatever a dead site
    /// holds.
    pub fn finish(
        mut self,
        fed: &Federation,
        query: &BoundQuery,
        sim: &mut Simulation,
    ) -> (QueryAnswer, Vec<DbId>) {
        // Canonicalise merge order. Sites may have been recorded in reply
        // *completion* order (the concurrent scheduler merges whichever
        // site answers first); certification groups rows in `site_rows`
        // order, so sort both site-ordered inputs ascending to make the
        // answer independent of arrival order. The serial orchestrator
        // already merges ascending, so this is a no-op there.
        self.site_rows.sort_by_key(|(site, _)| *site);
        self.queried_dbs.sort_unstable();

        // Entities whose certification is incomplete: a row with an
        // unsolved item whose assistant lookup went unanswered.
        let mut degraded_goids: HashSet<GOid> = HashSet::new();
        for (_, rows) in &self.site_rows {
            for row in rows {
                let hit = row.unsolved.iter().any(|entry| {
                    entry
                        .item
                        .is_some_and(|item| self.failed_checks.contains(&(item, entry.pred)))
                });
                if hit {
                    degraded_goids.insert(row.goid);
                }
            }
        }

        let answer = certify(
            fed,
            query,
            self.site_rows,
            &self.replies,
            &self.target_replies,
            &self.queried_dbs,
            sim,
        );

        let table = fed.catalog().table(query.range());
        let maybe = answer
            .maybe()
            .iter()
            .map(|m| {
                let touched = degraded_goids.contains(&m.goid())
                    || table
                        .loids_of(m.goid())
                        .iter()
                        .any(|l| self.degraded.contains(&l.db()));
                if touched {
                    m.clone().with_provenance(Provenance::Degraded)
                } else {
                    m.clone()
                }
            })
            .collect();
        let answer = QueryAnswer::new(answer.certain().to_vec(), maybe);
        (answer, self.degraded.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_site_merges_at_most_once() {
        let mut merge = LocalizedMerge::new();
        let site = DbId::new(1);
        assert!(merge.record_site(site, vec![], vec![], vec![], vec![], vec![]));
        assert!(!merge.record_site(site, vec![], vec![], vec![], vec![], vec![]));
        assert!(!merge.record_site_loss(site));
        assert!(merge.is_merged(site));
        assert_eq!(merge.merged_sites(), vec![site]);
        // The duplicate success after the first merge did not mark the
        // site degraded.
        assert!(merge.degraded_sites().is_empty());
    }

    #[test]
    fn a_lost_site_is_degraded_and_merges_once() {
        let mut merge = LocalizedMerge::new();
        let site = DbId::new(2);
        assert!(merge.record_site_loss(site));
        assert!(!merge.record_site(site, vec![], vec![], vec![], vec![], vec![]));
        assert_eq!(merge.degraded_sites(), vec![site]);
    }
}
