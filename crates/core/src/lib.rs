//! FedOQ core: query execution strategies for missing data in distributed
//! heterogeneous object databases.
//!
//! This crate implements the contribution of Koh & Chen (ICDCS 1996): three
//! strategies for answering global conjunctive queries whose predicates
//! touch *missing data* (missing attributes and null values), returning
//! **certain** results alongside **maybe** results, and using *object
//! isomerism* to certify local maybe results into certain ones:
//!
//! * [`Centralized`] (**CA**, phase order O → I → P) ships every involved
//!   object to the global site, outerjoins constituent classes over GOids,
//!   and evaluates predicates on the materialized global classes;
//! * [`BasicLocalized`] (**BL**, P → O → I) evaluates local predicates at
//!   each site first, looks up assistant objects only for the surviving
//!   maybe results, and certifies at the global site;
//! * [`ParallelLocalized`] (**PL**, O → P → I) issues assistant checks for
//!   all candidate objects *before* local evaluation so remote checking
//!   overlaps local work.
//!
//! Both localized strategies optionally use replicated **object
//! signatures** to prune assistant checks without changing answers (the
//! paper's proposed extension).
//!
//! All strategies execute for real over a [`Federation`] of in-memory
//! component databases while narrating their work to a
//! [`fedoq_sim::Simulation`], which produces the paper's two measures:
//! total execution time and response time.
//!
//! # Example
//!
//! ```
//! use fedoq_core::{Centralized, ExecutionStrategy, Federation};
//! use fedoq_object::{DbId, Value};
//! use fedoq_schema::Correspondences;
//! use fedoq_sim::{Simulation, SystemParams};
//! use fedoq_store::{AttrType, ClassDef, ComponentDb, ComponentSchema};
//!
//! // Two one-class databases; `age` exists only in DB0.
//! let s0 = ComponentSchema::new(vec![ClassDef::new("Student")
//!     .attr("s-no", AttrType::int()).attr("age", AttrType::int()).key(["s-no"])])?;
//! let s1 = ComponentSchema::new(vec![ClassDef::new("Student")
//!     .attr("s-no", AttrType::int()).key(["s-no"])])?;
//! let mut db0 = ComponentDb::new(DbId::new(0), "DB0", s0);
//! let mut db1 = ComponentDb::new(DbId::new(1), "DB1", s1);
//! db0.insert_named("Student", &[("s-no", Value::Int(1)), ("age", Value::Int(31))])?;
//! db1.insert_named("Student", &[("s-no", Value::Int(1))])?; // isomeric copy
//! db1.insert_named("Student", &[("s-no", Value::Int(2))])?; // age unknown anywhere
//!
//! let fed = Federation::new(vec![db0, db1], &Correspondences::new())?;
//! let query = fed.parse_and_bind("SELECT X.s-no FROM Student X WHERE X.age >= 30")?;
//! let mut sim = Simulation::new(SystemParams::paper_default(), fed.num_dbs());
//! let answer = Centralized.execute(&fed, &query, &mut sim)?;
//! assert_eq!(answer.certain().len(), 1); // student 1: age 31 via its isomeric copy
//! assert_eq!(answer.maybe().len(), 1);   // student 2: age missing everywhere
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// Library code must surface errors as values, never panic on them:
// test modules, which may unwrap freely, are exempt via cfg_attr.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod cache;
pub mod centralized;
pub mod certify;
pub mod condition;
pub mod disjunctive;
pub mod error;
pub mod explain;
pub mod federation;
pub mod handlers;
pub mod localized;
pub mod materialize;
pub mod merge;
pub mod oracle;
pub mod pipeline;
pub mod result;
pub mod strategy;

pub use cache::{query_fingerprint, CacheStats, LookupCache};
pub use centralized::Centralized;
pub use condition::{annotate_conditions, Condition, ConditionAtom, ConditionedAnswer, Missing};
pub use disjunctive::run_disjunctive;
pub use error::ExecError;
pub use explain::{explain, explain_with_pipeline};
pub use federation::{ChangeCursor, ChangeRecord, Federation};
pub use localized::{BasicLocalized, HybridLocalized, ParallelLocalized};
pub use merge::LocalizedMerge;
pub use oracle::{oracle_answer, oracle_disjunctive};
pub use pipeline::PipelineConfig;
pub use result::{MaybeRow, Provenance, QueryAnswer, ResultRow};
pub use strategy::{
    collect_catalog, refresh_catalog, run_adaptive, run_strategy, run_strategy_with_network,
    run_strategy_with_pipeline, AdaptiveOutcome, ExecutionStrategy,
};
