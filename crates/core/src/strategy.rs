//! The execution-strategy interface and the adaptive planner loop.

use crate::cache::{query_fingerprint, LookupCache};
use crate::centralized::Centralized;
use crate::error::ExecError;
use crate::federation::Federation;
use crate::localized::{BasicLocalized, HybridLocalized, ParallelLocalized};
use crate::pipeline::PipelineConfig;
use crate::result::QueryAnswer;
use fedoq_plan::{choose, PipelineKnobs, PlanChoice, PlanKind, StatsCatalog};
use fedoq_query::BoundQuery;
use fedoq_sim::{NetworkModel, QueryMetrics, Resource, Simulation, SystemParams};
use std::cell::RefCell;

/// A query execution strategy for global queries over missing data.
///
/// Implementations execute the query for real over the federation's data
/// while charging every comparison, disk byte, and network byte to the
/// [`Simulation`] — the answer is exact, and the metrics reflect the work
/// the strategy actually performed.
pub trait ExecutionStrategy {
    /// Short name used in experiment output (`"CA"`, `"BL"`, `"PL"`, …).
    fn name(&self) -> &'static str;

    /// Executes `query` over `fed`, narrating costs to `sim`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] when the federation violates an invariant the
    /// strategy relies on (e.g. a constituent class disappearing between
    /// binding and execution). Well-formed federations never error.
    fn execute(
        &self,
        fed: &Federation,
        query: &BoundQuery,
        sim: &mut Simulation,
    ) -> Result<QueryAnswer, ExecError>;

    /// Executes `query` under an explicit [`PipelineConfig`] with an
    /// optional shared [`LookupCache`].
    ///
    /// The pipeline tunes *how* the strategy runs — chunked parallel
    /// scans, probe batching, cached lookups — never the answer: for any
    /// configuration the result must equal `execute`'s. The default
    /// implementation ignores the tuning and runs sequentially, which is
    /// always correct; CA/BL/PL override it.
    ///
    /// Callers owning a persistent cache must
    /// [`sync_generation`](LookupCache::sync_generation) it against
    /// [`Federation::generation`] first (the [`run_strategy_with_pipeline`]
    /// wrapper does).
    ///
    /// # Errors
    ///
    /// As for [`execute`](ExecutionStrategy::execute).
    fn execute_with(
        &self,
        fed: &Federation,
        query: &BoundQuery,
        sim: &mut Simulation,
        pipeline: PipelineConfig,
        cache: Option<&RefCell<LookupCache>>,
    ) -> Result<QueryAnswer, ExecError> {
        let _ = (pipeline, cache);
        self.execute(fed, query, sim)
    }
}

/// Convenience wrapper: runs `strategy` in a fresh simulation and returns
/// the answer with its metrics.
///
/// # Errors
///
/// Propagates the strategy's [`ExecError`].
///
/// # Example
///
/// ```no_run
/// use fedoq_core::{run_strategy, Centralized, Federation};
/// use fedoq_sim::SystemParams;
/// # fn get_fed() -> Federation { unimplemented!() }
/// let fed = get_fed();
/// let query = fed.parse_and_bind("SELECT X.name FROM Student X WHERE X.age > 30")?;
/// let (answer, metrics) = run_strategy(&Centralized, &fed, &query, SystemParams::paper_default())?;
/// println!("{answer}: {metrics}");
/// # Ok::<(), fedoq_core::ExecError>(())
/// ```
pub fn run_strategy<S: ExecutionStrategy + ?Sized>(
    strategy: &S,
    fed: &Federation,
    query: &BoundQuery,
    params: SystemParams,
) -> Result<(QueryAnswer, QueryMetrics), ExecError> {
    run_strategy_with_network(strategy, fed, query, params, NetworkModel::SharedBus)
}

/// Like [`run_strategy`] with an explicit network arbitration model —
/// used by the network-model ablation (the paper assumes a shared
/// medium; point-to-point links change where contention bites).
///
/// # Errors
///
/// Propagates the strategy's [`ExecError`].
pub fn run_strategy_with_network<S: ExecutionStrategy + ?Sized>(
    strategy: &S,
    fed: &Federation,
    query: &BoundQuery,
    params: SystemParams,
    network: NetworkModel,
) -> Result<(QueryAnswer, QueryMetrics), ExecError> {
    let mut sim = Simulation::with_network(params, fed.num_dbs(), network);
    let answer = strategy.execute(fed, query, &mut sim)?;
    let metrics = sim.metrics();
    Ok((answer, metrics))
}

/// Like [`run_strategy`] with an explicit [`PipelineConfig`] and an
/// optional shared [`LookupCache`]. The cache is generation-synced
/// against the federation before execution, so a query following a store
/// mutation never observes stale entries; pass the same `RefCell` across
/// calls to measure warm-cache behavior.
///
/// # Errors
///
/// Propagates the strategy's [`ExecError`].
pub fn run_strategy_with_pipeline<S: ExecutionStrategy + ?Sized>(
    strategy: &S,
    fed: &Federation,
    query: &BoundQuery,
    params: SystemParams,
    pipeline: PipelineConfig,
    cache: Option<&RefCell<LookupCache>>,
) -> Result<(QueryAnswer, QueryMetrics), ExecError> {
    if let Some(cache) = cache {
        cache.borrow_mut().sync_generation(fed.generation());
    }
    let mut sim = Simulation::with_network(params, fed.num_dbs(), NetworkModel::SharedBus);
    let answer = strategy.execute_with(fed, query, &mut sim, pipeline, cache)?;
    let metrics = sim.metrics();
    Ok((answer, metrics))
}

/// Scans `fed` into a fresh [`StatsCatalog`] stamped with the
/// federation's current mutation generation.
pub fn collect_catalog(fed: &Federation, params: SystemParams) -> StatsCatalog {
    StatsCatalog::collect(
        fed.dbs(),
        fed.global_schema(),
        fed.catalog(),
        fed.generation(),
        params,
    )
}

/// Re-scans a stale catalog in place, keeping its accumulated transport
/// and response-time observations. A no-op when the catalog already
/// matches [`Federation::generation`].
pub fn refresh_catalog(catalog: &mut StatsCatalog, fed: &Federation) {
    if catalog.is_stale(fed.generation()) {
        catalog.rescan(
            fed.dbs(),
            fed.global_schema(),
            fed.catalog(),
            fed.generation(),
        );
    }
}

/// What [`run_adaptive`] did: the ranked choice, the plan it executed,
/// and the execution's answer and measured metrics.
#[derive(Debug, Clone)]
pub struct AdaptiveOutcome {
    /// The query answer (identical to every fixed strategy's
    /// classification — planning never changes results).
    pub answer: QueryAnswer,
    /// Measured metrics of the executed plan.
    pub metrics: QueryMetrics,
    /// The full ranking the planner produced, cheapest first.
    pub choice: PlanChoice,
    /// The plan that actually ran (`choice.best().kind`).
    pub executed: PlanKind,
}

/// Translates the pipeline configuration into the cost model's tuning
/// knobs, reading expected cache warmth from the shared cache's observed
/// hit rate (a cold or absent cache prices as warmth 0).
fn plan_knobs(pipeline: PipelineConfig, cache: Option<&RefCell<LookupCache>>) -> PipelineKnobs {
    let warmth = match (pipeline.cache, cache) {
        (true, Some(cache)) => cache.borrow().stats().hit_rate(),
        _ => 0.0,
    };
    PipelineKnobs {
        threads: pipeline.threads.max(1) as f64,
        warmth,
        batch: pipeline.batch as f64,
    }
}

/// The adaptive executor: plan → run → observe.
///
/// Prices CA, BL, PL, and the per-site hybrid against the statistics in
/// `catalog` (auto-refreshing it first if the federation has mutated
/// since the last scan), executes the cheapest blended plan through the
/// normal pipeline machinery, and folds the measured response time and
/// transport costs back into the catalog so the next run of the same
/// query ranks with real observations. Repeated workloads therefore
/// converge on the true winner even where the model misestimates.
///
/// # Errors
///
/// Propagates the executed strategy's [`ExecError`].
pub fn run_adaptive(
    fed: &Federation,
    query: &BoundQuery,
    catalog: &mut StatsCatalog,
    pipeline: PipelineConfig,
    cache: Option<&RefCell<LookupCache>>,
) -> Result<AdaptiveOutcome, ExecError> {
    refresh_catalog(catalog, fed);
    let fingerprint = query_fingerprint(query);
    let knobs = plan_knobs(pipeline, cache);
    let choice = choose(
        catalog,
        fed.global_schema(),
        query,
        &knobs,
        fingerprint,
        true,
    );
    let best = choice.best();
    let executed = best.kind;
    let strategy: Box<dyn ExecutionStrategy> = match executed {
        PlanKind::Centralized => Box::new(Centralized),
        PlanKind::BasicLocalized => Box::new(BasicLocalized::new()),
        PlanKind::ParallelLocalized => Box::new(ParallelLocalized::new()),
        PlanKind::Hybrid => Box::new(HybridLocalized::new(
            best.modes.iter().filter(|m| m.parallel).map(|m| m.db),
        )),
    };
    if let Some(cache) = cache {
        cache.borrow_mut().sync_generation(fed.generation());
    }
    let params = *catalog.params();
    let mut sim = Simulation::with_network(params, fed.num_dbs(), NetworkModel::SharedBus);
    let answer = strategy.execute_with(fed, query, &mut sim, pipeline, cache)?;
    let metrics = sim.metrics();

    // Feedback: the measured response time for this (query, plan), and
    // the link's observed price per byte from the simulation ledger.
    catalog.observe_response(fingerprint, executed.label(), metrics.response_us);
    let net_busy = sim.ledger().total_for_resource(Resource::Net).as_micros();
    catalog.observe_net(metrics.bytes_transferred, net_busy);

    Ok(AdaptiveOutcome {
        answer,
        metrics,
        choice,
        executed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedoq_object::{DbId, Value};
    use fedoq_schema::Correspondences;
    use fedoq_store::{AttrType, ClassDef, ComponentDb, ComponentSchema};

    fn fed() -> Federation {
        let s0 = ComponentSchema::new(vec![ClassDef::new("Student")
            .attr("s-no", AttrType::int())
            .attr("age", AttrType::int())
            .key(["s-no"])])
        .unwrap();
        let s1 = ComponentSchema::new(vec![ClassDef::new("Student")
            .attr("s-no", AttrType::int())
            .key(["s-no"])])
        .unwrap();
        let mut db0 = ComponentDb::new(DbId::new(0), "DB0", s0);
        let mut db1 = ComponentDb::new(DbId::new(1), "DB1", s1);
        for i in 0..20 {
            db0.insert_named(
                "Student",
                &[("s-no", Value::Int(i)), ("age", Value::Int(20 + (i % 10)))],
            )
            .unwrap();
            db1.insert_named("Student", &[("s-no", Value::Int(i))])
                .unwrap();
        }
        Federation::new(vec![db0, db1], &Correspondences::new()).unwrap()
    }

    #[test]
    fn adaptive_matches_fixed_strategies_and_learns() {
        let f = fed();
        let query = f
            .parse_and_bind("SELECT X.s-no FROM Student X WHERE X.age >= 25")
            .unwrap();
        let mut catalog = collect_catalog(&f, SystemParams::paper_default());
        let first =
            run_adaptive(&f, &query, &mut catalog, PipelineConfig::sequential(), None).unwrap();
        // The adaptive answer classifies like every fixed strategy's.
        let (bl, _) = run_strategy(
            &BasicLocalized::new(),
            &f,
            &query,
            SystemParams::paper_default(),
        )
        .unwrap();
        assert!(first.answer.same_classification(&bl));
        assert_eq!(first.executed, first.choice.best().kind);
        // The run fed an observation back for the executed plan.
        assert_eq!(catalog.observed_len(), 1);
        let second =
            run_adaptive(&f, &query, &mut catalog, PipelineConfig::sequential(), None).unwrap();
        let again = second
            .choice
            .plan(second.executed)
            .or_else(|| Some(second.choice.best()))
            .unwrap();
        assert!(again.observed_us.is_some() || second.executed != first.executed);
    }

    #[test]
    fn adaptive_refreshes_a_stale_catalog() {
        let mut f = fed();
        let query = f
            .parse_and_bind("SELECT X.s-no FROM Student X WHERE X.age >= 25")
            .unwrap();
        let mut catalog = collect_catalog(&f, SystemParams::paper_default());
        f.mutate(DbId::new(0), |db| {
            db.insert_named(
                "Student",
                &[("s-no", Value::Int(99)), ("age", Value::Int(40))],
            )
            .map(|_| ())
        })
        .unwrap();
        assert!(catalog.is_stale(f.generation()));
        run_adaptive(&f, &query, &mut catalog, PipelineConfig::sequential(), None).unwrap();
        assert!(!catalog.is_stale(f.generation()));
    }
}
