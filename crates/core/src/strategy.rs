//! The execution-strategy interface.

use crate::cache::LookupCache;
use crate::error::ExecError;
use crate::federation::Federation;
use crate::pipeline::PipelineConfig;
use crate::result::QueryAnswer;
use fedoq_query::BoundQuery;
use fedoq_sim::{NetworkModel, QueryMetrics, Simulation, SystemParams};
use std::cell::RefCell;

/// A query execution strategy for global queries over missing data.
///
/// Implementations execute the query for real over the federation's data
/// while charging every comparison, disk byte, and network byte to the
/// [`Simulation`] — the answer is exact, and the metrics reflect the work
/// the strategy actually performed.
pub trait ExecutionStrategy {
    /// Short name used in experiment output (`"CA"`, `"BL"`, `"PL"`, …).
    fn name(&self) -> &'static str;

    /// Executes `query` over `fed`, narrating costs to `sim`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] when the federation violates an invariant the
    /// strategy relies on (e.g. a constituent class disappearing between
    /// binding and execution). Well-formed federations never error.
    fn execute(
        &self,
        fed: &Federation,
        query: &BoundQuery,
        sim: &mut Simulation,
    ) -> Result<QueryAnswer, ExecError>;

    /// Executes `query` under an explicit [`PipelineConfig`] with an
    /// optional shared [`LookupCache`].
    ///
    /// The pipeline tunes *how* the strategy runs — chunked parallel
    /// scans, probe batching, cached lookups — never the answer: for any
    /// configuration the result must equal `execute`'s. The default
    /// implementation ignores the tuning and runs sequentially, which is
    /// always correct; CA/BL/PL override it.
    ///
    /// Callers owning a persistent cache must
    /// [`sync_generation`](LookupCache::sync_generation) it against
    /// [`Federation::generation`] first (the [`run_strategy_with_pipeline`]
    /// wrapper does).
    ///
    /// # Errors
    ///
    /// As for [`execute`](ExecutionStrategy::execute).
    fn execute_with(
        &self,
        fed: &Federation,
        query: &BoundQuery,
        sim: &mut Simulation,
        pipeline: PipelineConfig,
        cache: Option<&RefCell<LookupCache>>,
    ) -> Result<QueryAnswer, ExecError> {
        let _ = (pipeline, cache);
        self.execute(fed, query, sim)
    }
}

/// Convenience wrapper: runs `strategy` in a fresh simulation and returns
/// the answer with its metrics.
///
/// # Errors
///
/// Propagates the strategy's [`ExecError`].
///
/// # Example
///
/// ```no_run
/// use fedoq_core::{run_strategy, Centralized, Federation};
/// use fedoq_sim::SystemParams;
/// # fn get_fed() -> Federation { unimplemented!() }
/// let fed = get_fed();
/// let query = fed.parse_and_bind("SELECT X.name FROM Student X WHERE X.age > 30")?;
/// let (answer, metrics) = run_strategy(&Centralized, &fed, &query, SystemParams::paper_default())?;
/// println!("{answer}: {metrics}");
/// # Ok::<(), fedoq_core::ExecError>(())
/// ```
pub fn run_strategy<S: ExecutionStrategy + ?Sized>(
    strategy: &S,
    fed: &Federation,
    query: &BoundQuery,
    params: SystemParams,
) -> Result<(QueryAnswer, QueryMetrics), ExecError> {
    run_strategy_with_network(strategy, fed, query, params, NetworkModel::SharedBus)
}

/// Like [`run_strategy`] with an explicit network arbitration model —
/// used by the network-model ablation (the paper assumes a shared
/// medium; point-to-point links change where contention bites).
///
/// # Errors
///
/// Propagates the strategy's [`ExecError`].
pub fn run_strategy_with_network<S: ExecutionStrategy + ?Sized>(
    strategy: &S,
    fed: &Federation,
    query: &BoundQuery,
    params: SystemParams,
    network: NetworkModel,
) -> Result<(QueryAnswer, QueryMetrics), ExecError> {
    let mut sim = Simulation::with_network(params, fed.num_dbs(), network);
    let answer = strategy.execute(fed, query, &mut sim)?;
    let metrics = sim.metrics();
    Ok((answer, metrics))
}

/// Like [`run_strategy`] with an explicit [`PipelineConfig`] and an
/// optional shared [`LookupCache`]. The cache is generation-synced
/// against the federation before execution, so a query following a store
/// mutation never observes stale entries; pass the same `RefCell` across
/// calls to measure warm-cache behavior.
///
/// # Errors
///
/// Propagates the strategy's [`ExecError`].
pub fn run_strategy_with_pipeline<S: ExecutionStrategy + ?Sized>(
    strategy: &S,
    fed: &Federation,
    query: &BoundQuery,
    params: SystemParams,
    pipeline: PipelineConfig,
    cache: Option<&RefCell<LookupCache>>,
) -> Result<(QueryAnswer, QueryMetrics), ExecError> {
    if let Some(cache) = cache {
        cache.borrow_mut().sync_generation(fed.generation());
    }
    let mut sim = Simulation::with_network(params, fed.num_dbs(), NetworkModel::SharedBus);
    let answer = strategy.execute_with(fed, query, &mut sim, pipeline, cache)?;
    let metrics = sim.metrics();
    Ok((answer, metrics))
}
