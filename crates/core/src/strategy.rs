//! The execution-strategy interface.

use crate::error::ExecError;
use crate::federation::Federation;
use crate::result::QueryAnswer;
use fedoq_query::BoundQuery;
use fedoq_sim::{NetworkModel, QueryMetrics, Simulation, SystemParams};

/// A query execution strategy for global queries over missing data.
///
/// Implementations execute the query for real over the federation's data
/// while charging every comparison, disk byte, and network byte to the
/// [`Simulation`] — the answer is exact, and the metrics reflect the work
/// the strategy actually performed.
pub trait ExecutionStrategy {
    /// Short name used in experiment output (`"CA"`, `"BL"`, `"PL"`, …).
    fn name(&self) -> &'static str;

    /// Executes `query` over `fed`, narrating costs to `sim`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] when the federation violates an invariant the
    /// strategy relies on (e.g. a constituent class disappearing between
    /// binding and execution). Well-formed federations never error.
    fn execute(
        &self,
        fed: &Federation,
        query: &BoundQuery,
        sim: &mut Simulation,
    ) -> Result<QueryAnswer, ExecError>;
}

/// Convenience wrapper: runs `strategy` in a fresh simulation and returns
/// the answer with its metrics.
///
/// # Errors
///
/// Propagates the strategy's [`ExecError`].
///
/// # Example
///
/// ```no_run
/// use fedoq_core::{run_strategy, Centralized, Federation};
/// use fedoq_sim::SystemParams;
/// # fn get_fed() -> Federation { unimplemented!() }
/// let fed = get_fed();
/// let query = fed.parse_and_bind("SELECT X.name FROM Student X WHERE X.age > 30")?;
/// let (answer, metrics) = run_strategy(&Centralized, &fed, &query, SystemParams::paper_default())?;
/// println!("{answer}: {metrics}");
/// # Ok::<(), fedoq_core::ExecError>(())
/// ```
pub fn run_strategy<S: ExecutionStrategy + ?Sized>(
    strategy: &S,
    fed: &Federation,
    query: &BoundQuery,
    params: SystemParams,
) -> Result<(QueryAnswer, QueryMetrics), ExecError> {
    run_strategy_with_network(strategy, fed, query, params, NetworkModel::SharedBus)
}

/// Like [`run_strategy`] with an explicit network arbitration model —
/// used by the network-model ablation (the paper assumes a shared
/// medium; point-to-point links change where contention bites).
///
/// # Errors
///
/// Propagates the strategy's [`ExecError`].
pub fn run_strategy_with_network<S: ExecutionStrategy + ?Sized>(
    strategy: &S,
    fed: &Federation,
    query: &BoundQuery,
    params: SystemParams,
    network: NetworkModel,
) -> Result<(QueryAnswer, QueryMetrics), ExecError> {
    let mut sim = Simulation::with_network(params, fed.num_dbs(), network);
    let answer = strategy.execute(fed, query, &mut sim)?;
    let metrics = sim.metrics();
    Ok((answer, metrics))
}
