//! Execution-pipeline tuning: chunked parallel scans, probe batching,
//! and lookup caching.
//!
//! A [`PipelineConfig`] travels alongside a strategy and controls *how*
//! it executes, never *what* it computes: every combination of threads,
//! batch size, and cache produces byte-identical answers (the
//! differential suite in `tests/parallel_differential.rs` pins this).
//! The default configuration reproduces the historical sequential
//! behavior exactly, including its simulated cost metrics.

/// Tuning knobs of the parallel batched execution pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PipelineConfig {
    /// Worker threads for chunked extent scans; `1` scans sequentially on
    /// the caller's thread.
    pub threads: usize,
    /// Objects per scan chunk (clamped to at least 1).
    pub chunk: usize,
    /// GOid probes coalesced per site round-trip. `0` keeps the legacy
    /// wire layout (everything for one peer in a single message); `1`
    /// sends one probe per message — the paper's original
    /// one-`AssistantLookup`-per-maybe model; `K > 1` sends fragments of
    /// up to `K` probes.
    pub batch: usize,
    /// Consult (and fill) the shared [`LookupCache`] for assistant
    /// verdicts, target values, GOid-mapping siblings, and shipped
    /// extents.
    ///
    /// [`LookupCache`]: crate::cache::LookupCache
    pub cache: bool,
    /// Use maintained secondary indexes to seed candidate sets for
    /// single-attribute equality predicates instead of scanning whole
    /// extents. Answers stay byte-identical to the sequential scan: the
    /// index path only skips objects whose indexed value is known
    /// non-null and non-matching — objects the scan would eliminate with
    /// a definite `False` anyway. Predicates the index cannot serve
    /// (float literals, path traversals, non-equality operators) fall
    /// back to the full scan.
    pub index: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            threads: 1,
            chunk: 256,
            batch: 0,
            cache: false,
            index: false,
        }
    }
}

impl PipelineConfig {
    /// The sequential pipeline: single thread, legacy message coalescing,
    /// no cache. Identical to `PipelineConfig::default()`.
    pub fn sequential() -> PipelineConfig {
        PipelineConfig::default()
    }

    /// A parallel configuration over `threads` workers (chunk size and
    /// batching left at their defaults).
    pub fn parallel(threads: usize) -> PipelineConfig {
        PipelineConfig {
            threads: threads.max(1),
            ..PipelineConfig::default()
        }
    }

    /// Sets the probe batch size (chainable).
    pub fn with_batch(mut self, batch: usize) -> PipelineConfig {
        self.batch = batch;
        self
    }

    /// Enables the lookup cache (chainable).
    pub fn with_cache(mut self) -> PipelineConfig {
        self.cache = true;
        self
    }

    /// Enables index-seeded candidate scans (chainable).
    pub fn with_index(mut self) -> PipelineConfig {
        self.index = true;
        self
    }

    /// `true` when chunked scans run on more than one worker.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Number of wire fragments a batch of `n` probes splits into under
    /// this configuration (0 probes need no message at all).
    pub fn fragments(&self, n: usize) -> usize {
        if n == 0 {
            0
        } else if self.batch == 0 {
            1
        } else {
            n.div_ceil(self.batch)
        }
    }

    /// Splits `items` into the wire fragments [`fragments`] counts.
    ///
    /// [`fragments`]: PipelineConfig::fragments
    pub fn split<'a, T>(&self, items: &'a [T]) -> Vec<&'a [T]> {
        if items.is_empty() {
            return Vec::new();
        }
        let size = if self.batch == 0 {
            items.len()
        } else {
            self.batch
        };
        items.chunks(size).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_sequential_legacy_shape() {
        let d = PipelineConfig::default();
        assert_eq!(d, PipelineConfig::sequential());
        assert!(!d.is_parallel());
        assert_eq!(d.fragments(0), 0);
        assert_eq!(d.fragments(1), 1);
        assert_eq!(d.fragments(500), 1);
        assert_eq!(d.split(&[1, 2, 3]), vec![&[1, 2, 3][..]]);
    }

    #[test]
    fn batching_fragments_probe_sets() {
        let k4 = PipelineConfig::parallel(8).with_batch(4);
        assert!(k4.is_parallel());
        assert_eq!(k4.fragments(0), 0);
        assert_eq!(k4.fragments(4), 1);
        assert_eq!(k4.fragments(5), 2);
        assert_eq!(k4.fragments(64), 16);
        let items: Vec<u32> = (0..10).collect();
        let frags = k4.split(&items);
        assert_eq!(frags.len(), 3);
        assert_eq!(frags[2], &[8, 9]);
        // Per-probe messages at K = 1 — the paper's original model.
        let k1 = PipelineConfig::sequential().with_batch(1);
        assert_eq!(k1.fragments(7), 7);
    }

    #[test]
    fn builders_compose() {
        let p = PipelineConfig::parallel(0)
            .with_batch(64)
            .with_cache()
            .with_index();
        assert_eq!(p.threads, 1); // clamped
        assert_eq!(p.batch, 64);
        assert!(p.cache);
        assert!(p.index);
    }
}
