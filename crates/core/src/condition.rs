//! Provenance-carrying maybe results: conditional-table-style conditions.
//!
//! A maybe result says "no predicate is false, at least one is unknown" —
//! but not *why*. Following Grahne's conditional tables, this module
//! attaches to every maybe row a [`Condition`]: the set of
//! (site, object, attribute) facts the row is contingent on. Each
//! [`ConditionAtom`] names one isomeric copy whose contribution to the
//! merged attribute value is missing — either the constituent class lacks
//! the attribute at that site ([`Missing::Attr`]) or the stored value is
//! null ([`Missing::Null`]).
//!
//! Conditions are what make *incremental* reclassification possible: a
//! standing query need only re-evaluate a maybe row when a logged change
//! (or a site-reachability transition) could flip one of its atoms. The
//! annotation is derived from the same merge semantics as
//! [`crate::oracle`], so it agrees with the condition-free classification
//! by construction — and the `live_differential` suite checks that it
//! does.

use crate::federation::Federation;
use crate::result::{Provenance, QueryAnswer};
use fedoq_object::{DbId, GOid, GlobalClassId, LOid, Value};
use fedoq_query::{BoundPath, BoundQuery};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Why one copy contributes nothing to a merged attribute value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Missing {
    /// The constituent class at that site lacks the attribute entirely.
    Attr,
    /// The attribute exists at that site but the stored value is null
    /// (or references an object with no global identity).
    Null,
}

impl fmt::Display for Missing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Missing::Attr => f.write_str("missing"),
            Missing::Null => f.write_str("null"),
        }
    }
}

/// One atomic dependency of a maybe row: global attribute `slot` of
/// `class` is unknown at copy `loid` on site `db` because of `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConditionAtom {
    db: DbId,
    loid: LOid,
    class: GlobalClassId,
    slot: usize,
    kind: Missing,
}

impl ConditionAtom {
    /// Creates an atom (used by tests and the FQ308 fixtures).
    pub fn new(
        db: DbId,
        loid: LOid,
        class: GlobalClassId,
        slot: usize,
        kind: Missing,
    ) -> ConditionAtom {
        ConditionAtom {
            db,
            loid,
            class,
            slot,
            kind,
        }
    }

    /// The site holding the copy.
    pub fn db(&self) -> DbId {
        self.db
    }

    /// The copy's local identity.
    pub fn loid(&self) -> LOid {
        self.loid
    }

    /// The global class of the copy.
    pub fn class(&self) -> GlobalClassId {
        self.class
    }

    /// The global attribute slot whose value is unknown.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Why the copy contributes nothing.
    pub fn kind(&self) -> Missing {
        self.kind
    }

    /// Human-readable rendering against the federation's schema, e.g.
    /// `DB1.Student[l42].speciality null`.
    pub fn describe(&self, fed: &Federation) -> String {
        let class = fed.global_schema().class(self.class);
        format!(
            "{}.{}[{}].{} {}",
            fed.db(self.db).name(),
            class.name(),
            self.loid,
            class.attr(self.slot).name(),
            self.kind,
        )
    }
}

impl fmt::Display for ConditionAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "d{}/{}/c{}.a{}:{}",
            self.db.index(),
            self.loid,
            self.class.index(),
            self.slot,
            self.kind
        )
    }
}

/// The condition of one maybe row: the conjunction of missing facts it is
/// contingent on. Resolving *any* atom (a null filled in, an attribute
/// gaining a copy that carries it, a retraction) can flip the row, so the
/// reactor re-evaluates on any change touching the condition's classes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Condition {
    atoms: BTreeSet<ConditionAtom>,
}

impl Condition {
    /// Builds a condition from atoms.
    pub fn from_atoms<I: IntoIterator<Item = ConditionAtom>>(atoms: I) -> Condition {
        Condition {
            atoms: atoms.into_iter().collect(),
        }
    }

    /// The atoms, in canonical order.
    pub fn atoms(&self) -> impl Iterator<Item = &ConditionAtom> + '_ {
        self.atoms.iter()
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// `true` iff no missing fact could be named (e.g. a degraded
    /// distributed answer whose maybe status reflects unreachability, not
    /// data). Consumers must treat such rows as contingent on everything.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// The global classes the condition touches.
    pub fn classes(&self) -> BTreeSet<GlobalClassId> {
        self.atoms.iter().map(ConditionAtom::class).collect()
    }

    /// The sites the condition touches.
    pub fn sites(&self) -> BTreeSet<DbId> {
        self.atoms.iter().map(ConditionAtom::db).collect()
    }

    /// `true` iff some atom lives on `db`.
    pub fn touches_site(&self, db: DbId) -> bool {
        self.atoms.iter().any(|a| a.db == db)
    }

    /// `true` iff some atom belongs to `class`.
    pub fn touches_class(&self, class: GlobalClassId) -> bool {
        self.atoms.iter().any(|a| a.class == class)
    }

    /// Human-readable rendering against the federation's schema.
    pub fn describe(&self, fed: &Federation) -> String {
        let parts: Vec<String> = self.atoms.iter().map(|a| a.describe(fed)).collect();
        parts.join(" & ")
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, atom) in self.atoms.iter().enumerate() {
            if i > 0 {
                f.write_str(" & ")?;
            }
            write!(f, "{atom}")?;
        }
        Ok(())
    }
}

/// A query answer with each maybe row's condition attached on the side.
///
/// The underlying [`QueryAnswer`] is untouched — every equality and
/// classification check in the repo keeps working on it — and the
/// conditions ride along keyed by GOid.
#[derive(Debug, Clone, PartialEq)]
pub struct ConditionedAnswer {
    answer: QueryAnswer,
    conditions: BTreeMap<GOid, Condition>,
}

impl ConditionedAnswer {
    /// The plain answer.
    pub fn answer(&self) -> &QueryAnswer {
        &self.answer
    }

    /// Consumes self, returning the plain answer.
    pub fn into_answer(self) -> QueryAnswer {
        self.answer
    }

    /// The condition of one maybe row, if `goid` is a maybe result.
    pub fn condition(&self, goid: GOid) -> Option<&Condition> {
        self.conditions.get(&goid)
    }

    /// All (goid, condition) pairs, ascending by GOid.
    pub fn conditions(&self) -> impl Iterator<Item = (GOid, &Condition)> + '_ {
        self.conditions.iter().map(|(g, c)| (*g, c))
    }

    /// Re-tags provenance from site reachability: a maybe row whose
    /// condition touches a site in `down` becomes
    /// [`Provenance::Degraded`] (its classification could still change
    /// once the site answers again); every other maybe row is
    /// [`Provenance::Full`]. Idempotent, so the live reactor applies it
    /// after every evaluation with the current down set.
    pub fn with_degraded_sites(&self, down: &BTreeSet<DbId>) -> ConditionedAnswer {
        let maybe = self
            .answer
            .maybe()
            .iter()
            .map(|row| {
                let hit = self
                    .conditions
                    .get(&row.goid())
                    .is_some_and(|c| c.sites().iter().any(|s| down.contains(s)));
                let provenance = if hit {
                    Provenance::Degraded
                } else {
                    Provenance::Full
                };
                row.clone().with_provenance(provenance)
            })
            .collect();
        ConditionedAnswer {
            answer: QueryAnswer::new(self.answer.certain().to_vec(), maybe),
            conditions: self.conditions.clone(),
        }
    }
}

/// Attaches a [`Condition`] to every maybe row of `answer`.
///
/// The atoms are derived by re-walking each unsolved predicate's path with
/// the oracle's merge semantics and recording, at the step where the
/// merged value came out null, *which copies* failed to supply it and why.
/// Certain rows get no entry; an eliminated entity is not in the answer at
/// all.
pub fn annotate_conditions(
    fed: &Federation,
    query: &BoundQuery,
    answer: &QueryAnswer,
) -> ConditionedAnswer {
    let mut conditions = BTreeMap::new();
    for row in answer.maybe() {
        let mut atoms = BTreeSet::new();
        for pred in row.unsolved() {
            let path = query.predicate(pred).path();
            walk_atoms(fed, row.goid(), path, &mut atoms);
        }
        conditions.insert(row.goid(), Condition { atoms });
    }
    ConditionedAnswer {
        answer: answer.clone(),
        conditions,
    }
}

/// Walks a bound path exactly like the oracle does and, at the first step
/// whose merged value is null, records the per-copy reasons.
fn walk_atoms(fed: &Federation, root: GOid, path: &BoundPath, atoms: &mut BTreeSet<ConditionAtom>) {
    let mut goid = root;
    let n = path.len();
    for i in 0..n {
        let value = crate::oracle::merged_value(fed, path.class(i), goid, path.slot(i));
        if value.is_null() {
            step_atoms(fed, path.class(i), goid, path.slot(i), atoms);
            return;
        }
        if i + 1 == n {
            return; // non-null terminal: this path was not the problem
        }
        match value {
            Value::GRef(next) => goid = next,
            _ => return, // malformed mid-path value; nothing nameable
        }
    }
}

/// Records one atom per copy of `goid` whose contribution to global
/// attribute `slot` is missing.
fn step_atoms(
    fed: &Federation,
    class: GlobalClassId,
    goid: GOid,
    slot: usize,
    atoms: &mut BTreeSet<ConditionAtom>,
) {
    let global_class = fed.global_schema().class(class);
    for &loid in fed.catalog().table(class).loids_of(goid) {
        let Some(constituent) = global_class.constituent_for(loid.db()) else {
            continue;
        };
        let kind = match constituent.local_slot(slot) {
            None => Missing::Attr,
            // A live copy reaches here only with a null (or a globally
            // dangling reference, equally unusable) value — a usable one
            // would have made the merge non-null.
            Some(_) => match fed.db(loid.db()).object(loid) {
                Some(_) => Missing::Null,
                None => continue,
            },
        };
        atoms.insert(ConditionAtom {
            db: loid.db(),
            loid,
            class,
            slot,
            kind,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::oracle_answer;
    use fedoq_object::DbId;
    use fedoq_schema::Correspondences;
    use fedoq_store::{AttrType, ClassDef, ComponentDb, ComponentSchema};

    /// Two sites: DB0 carries `age`, DB1 carries `sex`. Entity 1 is
    /// isomeric with a null `age`; entity 2 exists only at DB1 (no copy
    /// carries `age` at all).
    fn fed() -> Federation {
        let s0 = ComponentSchema::new(vec![ClassDef::new("Student")
            .attr("s-no", AttrType::int())
            .attr("age", AttrType::int())
            .key(["s-no"])])
        .unwrap();
        let s1 = ComponentSchema::new(vec![ClassDef::new("Student")
            .attr("s-no", AttrType::int())
            .attr("sex", AttrType::text())
            .key(["s-no"])])
        .unwrap();
        let mut db0 = ComponentDb::new(DbId::new(0), "DB0", s0);
        let mut db1 = ComponentDb::new(DbId::new(1), "DB1", s1);
        db0.insert_named("Student", &[("s-no", Value::Int(1)), ("age", Value::Null)])
            .unwrap();
        db1.insert_named(
            "Student",
            &[("s-no", Value::Int(1)), ("sex", Value::text("m"))],
        )
        .unwrap();
        db1.insert_named("Student", &[("s-no", Value::Int(2))])
            .unwrap();
        Federation::new(vec![db0, db1], &Correspondences::new()).unwrap()
    }

    #[test]
    fn maybe_rows_carry_atoms_naming_the_missing_copies() {
        let f = fed();
        let class = f.global_schema().class_id("Student").unwrap();
        let q = f
            .parse_and_bind("SELECT X.s-no FROM Student X WHERE X.age > 30")
            .unwrap();
        let answer = oracle_answer(&f, &q);
        assert_eq!(answer.maybe().len(), 2); // both entities: age unknown
        let conditioned = annotate_conditions(&f, &q, &answer);

        // Agreement with the condition-free classification: exactly the
        // maybe GOids have conditions, and none is empty here.
        let keyed: BTreeSet<GOid> = conditioned.conditions().map(|(g, _)| g).collect();
        assert_eq!(keyed, answer.maybe_goids());

        let slot = f
            .global_schema()
            .class(class)
            .attrs()
            .iter()
            .position(|a| a.name() == "age")
            .unwrap();
        for (_, condition) in conditioned.conditions() {
            assert!(!condition.is_empty());
            assert!(condition.touches_class(class));
            for atom in condition.atoms() {
                assert_eq!(atom.slot(), slot);
            }
        }

        // Entity 1: the DB0 copy has a null age, the DB1 copy lacks the
        // attribute — one atom of each kind.
        let e1 = answer.maybe()[0].goid();
        let c1 = conditioned.condition(e1).unwrap();
        let kinds: Vec<Missing> = c1.atoms().map(ConditionAtom::kind).collect();
        assert!(kinds.contains(&Missing::Null));
        assert!(kinds.contains(&Missing::Attr));
        assert!(c1.touches_site(DbId::new(0)));
        assert!(c1.touches_site(DbId::new(1)));

        // Entity 2: only the attribute-less DB1 copy exists.
        let e2 = answer.maybe()[1].goid();
        let c2 = conditioned.condition(e2).unwrap();
        assert_eq!(c2.len(), 1);
        assert_eq!(c2.atoms().next().unwrap().kind(), Missing::Attr);
        assert!(!c2.touches_site(DbId::new(0)));
    }

    #[test]
    fn certain_rows_have_no_condition_and_rendering_is_stable() {
        let f = fed();
        let q = f
            .parse_and_bind("SELECT X.s-no FROM Student X WHERE X.sex = 'm'")
            .unwrap();
        let answer = oracle_answer(&f, &q);
        assert_eq!(answer.certain().len(), 1);
        assert_eq!(answer.maybe().len(), 1); // entity 2: sex null at DB1
        let conditioned = annotate_conditions(&f, &q, &answer);
        let certain = answer.certain()[0].goid();
        assert!(conditioned.condition(certain).is_none());

        let maybe = answer.maybe()[0].goid();
        let condition = conditioned.condition(maybe).unwrap();
        assert_eq!(condition.atoms().next().unwrap().kind(), Missing::Null);
        let shown = condition.describe(&f);
        assert!(shown.contains("DB1.Student["), "got {shown}");
        assert!(shown.ends_with("sex null"), "got {shown}");
        assert!(!condition.to_string().is_empty());
    }
}
