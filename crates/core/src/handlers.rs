//! Message-level building blocks of the execution strategies.
//!
//! The in-process strategies ([`crate::Centralized`],
//! [`crate::BasicLocalized`], [`crate::ParallelLocalized`]) orchestrate a
//! query as a fixed sequence of waves over a [`fedoq_sim::Simulation`].
//! The distributed runtime (the `fedoq-net` crate) runs the *same
//! computation* as message handlers on per-site actors: a `LocalEval`
//! request maps to [`evaluate_site`], an `AssistantLookup` request to
//! [`answer_check_requests`] / [`answer_target_requests`], a `ShipObjects`
//! request to the [`ship_plan`] shipments, and the final `Certify` step to
//! [`certify`] (localized) or [`centralized_answer`] (CA).
//!
//! Every handler charges the acting site's clock in the simulation it is
//! given; none of them performs messaging. Keeping computation and
//! communication separate is what lets the sync strategies and the actor
//! runtime share one implementation — and is why their certain/maybe
//! answers are bit-identical (see `tests/distributed_differential.rs`).

pub use crate::centralized::{
    centralized_answer, centralized_answer_with, centralized_execute_with, ship_plan, ShipPlan,
};
pub use crate::certify::{certify, CheckReplies};
pub use crate::localized::{
    answer_check_requests, answer_target_requests, evaluate_site, evaluate_site_with,
    reply_message_bytes, request_message_bytes, result_message_bytes, target_reply_message_bytes,
    CheckRequest, CheckVerdict, LocalRow, LocalizedConfig, LocalizedMode, SiteEval, TargetReplies,
    TargetRequest, UnsolvedEntry,
};
pub use crate::merge::LocalizedMerge;
