//! EXPLAIN: a textual account of how a query would execute.
//!
//! [`explain`] describes, without executing anything, what each strategy
//! would do for a bound query: which sites host the range class, how the
//! conjuncts decompose per site (local vs unsolved and where the unsolved
//! items live), what the centralized strategy would ship, and which
//! target projections are local. It is the federated analogue of a
//! relational `EXPLAIN`, used by `fedoq-shell`'s `explain` command.

use crate::federation::Federation;
use crate::pipeline::PipelineConfig;
use fedoq_query::{plan_for_db, BoundQuery};
use std::fmt::Write as _;

/// Renders the execution plan of `query` over `fed` under the default
/// sequential pipeline.
///
/// # Example
///
/// ```no_run
/// use fedoq_core::{explain, Federation};
/// # fn get_fed() -> Federation { unimplemented!() }
/// let fed = get_fed();
/// let query = fed.parse_and_bind("SELECT X.name FROM Student X WHERE X.age > 30")?;
/// println!("{}", explain(&fed, &query));
/// # Ok::<(), fedoq_core::ExecError>(())
/// ```
pub fn explain(fed: &Federation, query: &BoundQuery) -> String {
    explain_with_pipeline(fed, query, PipelineConfig::sequential())
}

/// Like [`explain`] but describing the pipeline the query would actually
/// run under — thread count, scan chunking, probe batching, and lookup
/// caching — so the plan matches an execution through
/// [`run_strategy_with_pipeline`](crate::run_strategy_with_pipeline)
/// with the same configuration.
pub fn explain_with_pipeline(
    fed: &Federation,
    query: &BoundQuery,
    pipeline: PipelineConfig,
) -> String {
    let schema = fed.global_schema();
    let mut out = String::new();

    // Pipeline the plan runs under (tunes how, never what).
    let _ = writeln!(
        out,
        "pipeline: {} thread{} (chunk {}), {}, cache {}",
        pipeline.threads,
        if pipeline.threads == 1 { "" } else { "s" },
        pipeline.chunk,
        match pipeline.batch {
            0 => "coalesced probe messages".to_owned(),
            k => format!("probe batches of {k}"),
        },
        if pipeline.cache { "on" } else { "off" }
    );

    // Header: range class and hosting sites.
    let range = schema.class(query.range());
    let hosts: Vec<String> = range
        .hosting_dbs()
        .map(|db| fed.db(db).name().to_owned())
        .collect();
    let _ = writeln!(
        out,
        "range class {} hosted by {}",
        range.name(),
        hosts.join(", ")
    );

    // Conjuncts.
    if query.predicates().is_empty() {
        let _ = writeln!(out, "no predicates: every entity is a certain result");
    } else {
        let _ = writeln!(out, "conjuncts:");
        for pred in query.predicates() {
            let _ = writeln!(out, "  {}: {}", pred.id(), pred);
        }
    }

    // Centralized shipping estimate.
    let mut involved = query.involved_slots();
    involved.entry(query.range()).or_default();
    let mut ship_objects = 0usize;
    let mut class_names: Vec<&str> = Vec::new();
    for &class_id in involved.keys() {
        let class = schema.class(class_id);
        class_names.push(class.name());
        for constituent in class.constituents() {
            ship_objects += fed.db(constituent.db()).extent(constituent.class()).len();
        }
    }
    class_names.sort_unstable();
    let _ = writeln!(
        out,
        "CA would ship {} classes ({}) — {} objects to the global site",
        involved.len(),
        class_names.join(", "),
        ship_objects
    );

    // Per-site localized plans.
    let _ = writeln!(out, "localized decomposition:");
    for db in fed.dbs() {
        match plan_for_db(query, schema, db.id()) {
            None => {
                let _ = writeln!(
                    out,
                    "  {}: no local query (does not host {})",
                    db.name(),
                    range.name()
                );
            }
            Some(plan) => {
                let locals: Vec<String> = plan.local_preds().map(|id| id.to_string()).collect();
                let _ = writeln!(
                    out,
                    "  {}: local [{}]{}",
                    db.name(),
                    locals.join(", "),
                    if plan.is_fully_local() {
                        " — fully local"
                    } else {
                        ""
                    }
                );
                for truncated in plan.truncated_preds(query) {
                    let item_class = schema.class(truncated.item_class);
                    let _ = writeln!(
                        out,
                        "      {} unsolved here: missing data at {} (prefix {} steps); \
                         assistants of its {} objects will be checked",
                        truncated.pred,
                        item_class.name(),
                        truncated.prefix_len,
                        item_class.name(),
                    );
                }
                for (i, target) in query.targets().iter().enumerate() {
                    if plan.target_prefix_len(i) < target.len() {
                        let _ = writeln!(
                            out,
                            "      target {} not projectable here (prefix {}/{})",
                            target.path(),
                            plan.target_prefix_len(i),
                            target.len()
                        );
                    }
                }
                let _ = writeln!(out, "      {}", plan.describe(query));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedoq_object::{DbId, Value};
    use fedoq_schema::Correspondences;
    use fedoq_store::{AttrType, ClassDef, ComponentDb, ComponentSchema};

    fn fed() -> Federation {
        let s0 = ComponentSchema::new(vec![
            ClassDef::new("Dept")
                .attr("name", AttrType::text())
                .key(["name"]),
            ClassDef::new("Emp")
                .attr("id", AttrType::int())
                .attr("dept", AttrType::complex("Dept"))
                .key(["id"]),
        ])
        .unwrap();
        let s1 = ComponentSchema::new(vec![ClassDef::new("Emp")
            .attr("id", AttrType::int())
            .attr("salary", AttrType::int())
            .key(["id"])])
        .unwrap();
        let mut db0 = ComponentDb::new(DbId::new(0), "HQ", s0);
        let mut db1 = ComponentDb::new(DbId::new(1), "Payroll", s1);
        let d = db0
            .insert_named("Dept", &[("name", Value::text("CS"))])
            .unwrap();
        db0.insert_named("Emp", &[("id", Value::Int(1)), ("dept", Value::Ref(d))])
            .unwrap();
        db1.insert_named("Emp", &[("id", Value::Int(1)), ("salary", Value::Int(90))])
            .unwrap();
        Federation::new(vec![db0, db1], &Correspondences::new()).unwrap()
    }

    #[test]
    fn explain_names_hosts_conjuncts_and_plans() {
        let f = fed();
        let q = f
            .parse_and_bind("SELECT X.id FROM Emp X WHERE X.dept.name = 'CS' AND X.salary > 60")
            .unwrap();
        let plan = explain(&f, &q);
        assert!(
            plan.contains("pipeline: 1 thread (chunk 256), coalesced probe messages, cache off")
        );
        assert!(plan.contains("range class Emp hosted by HQ, Payroll"));
        assert!(plan.contains("p0: dept.name = CS"));
        assert!(plan.contains("p1: salary > 60"));
        // HQ evaluates the dept predicate, salary is unsolved there.
        assert!(plan.contains("HQ: local [p0]"));
        assert!(plan.contains("p1 unsolved here"));
        // Payroll evaluates salary, dept is unsolved there.
        assert!(plan.contains("Payroll: local [p1]"));
        // Shipping estimate covers Emp and Dept.
        assert!(plan.contains("CA would ship 2 classes (Dept, Emp) — 3 objects"));
    }

    #[test]
    fn explain_handles_predicate_free_queries_and_non_hosts() {
        let f = fed();
        let q = f.parse_and_bind("SELECT X.name FROM Dept X").unwrap();
        let plan = explain(&f, &q);
        assert!(plan.contains("no predicates"));
        assert!(plan.contains("Payroll: no local query (does not host Dept)"));
    }

    #[test]
    fn explain_reports_unprojectable_targets() {
        let f = fed();
        let q = f
            .parse_and_bind("SELECT X.salary FROM Emp X WHERE X.id >= 0")
            .unwrap();
        let plan = explain(&f, &q);
        assert!(plan.contains("target salary not projectable here (prefix 0/1)"));
        assert!(plan.contains("fully local"));
    }

    #[test]
    fn explain_reflects_the_tuned_pipeline() {
        let f = fed();
        let q = f
            .parse_and_bind("SELECT X.id FROM Emp X WHERE X.salary > 60")
            .unwrap();
        let tuned = PipelineConfig::parallel(8).with_batch(16).with_cache();
        let plan = explain_with_pipeline(&f, &q, tuned);
        assert!(plan.contains("pipeline: 8 threads (chunk 256), probe batches of 16, cache on"));
    }
}
