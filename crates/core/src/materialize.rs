//! Materialization of global classes at the global processing site.
//!
//! The centralized strategy outerjoins each involved global class's
//! constituents over GOids: isomeric objects merge into one global object,
//! nulls and missing attributes filled from whichever copy has the data,
//! and local references translated into global references — the paper's
//! Figure 6.

use crate::error::ExecError;
use crate::federation::Federation;
use fedoq_object::{CmpOp, GOid, GlobalClassId, Value};
use fedoq_query::{BoundPath, BoundQuery};
use fedoq_store::IndexKey;
use std::collections::{BTreeSet, HashMap};

/// CPU work incurred while materializing, split by the paper's phases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct BuildCost {
    /// Phase O comparisons: GOid-table probes and LOid→GOid translations.
    pub o_comparisons: u64,
    /// Phase I comparisons: outerjoin probes and per-attribute merges.
    pub i_comparisons: u64,
}

/// Materialized global extents, keyed by class then GOid. Values are in
/// global attribute order; uninvolved slots stay null.
#[derive(Debug, Clone, Default)]
pub(crate) struct Materialized {
    per_class: HashMap<GlobalClassId, HashMap<GOid, Vec<Value>>>,
}

impl Materialized {
    /// Builds materialized extents for the involved classes, projecting
    /// each on its involved slots.
    pub(crate) fn build(
        fed: &Federation,
        involved: &HashMap<GlobalClassId, BTreeSet<usize>>,
    ) -> (Materialized, BuildCost) {
        let mut cost = BuildCost::default();
        let mut per_class = HashMap::new();
        for (&class_id, slots) in involved {
            let class = fed.global_schema().class(class_id);
            let arity = class.arity();
            let table = fed.catalog().table(class_id);
            let mut extent: HashMap<GOid, Vec<Value>> = HashMap::new();
            for constituent in class.constituents() {
                let db = fed.db(constituent.db());
                for object in db.extent(constituent.class()).iter() {
                    // Phase O: find the object's global identity.
                    cost.o_comparisons += 1;
                    let Some(goid) = table.goid_of(object.loid()) else {
                        continue;
                    };
                    // Phase I: outerjoin probe into the materialized extent.
                    cost.i_comparisons += 1;
                    let merged = extent
                        .entry(goid)
                        .or_insert_with(|| vec![Value::Null; arity]);
                    for &g in slots {
                        let Some(local) = constituent.local_slot(g) else {
                            continue; // missing attribute here
                        };
                        let mut value = object.value(local).clone();
                        // Phase O: translate local refs to global refs.
                        if let Some(domain) = class.attr(g).ty().domain() {
                            value = translate_ref(fed, domain, value, &mut cost.o_comparisons);
                        }
                        // Phase I: merge — a copy with data fills a null.
                        cost.i_comparisons += 1;
                        if merged[g].is_null() && !value.is_null() {
                            merged[g] = value;
                        }
                    }
                }
            }
            per_class.insert(class_id, extent);
        }
        (Materialized { per_class }, cost)
    }

    /// The materialized extent of one class (empty map if uninvolved).
    pub(crate) fn extent(&self, class: GlobalClassId) -> Option<&HashMap<GOid, Vec<Value>>> {
        self.per_class.get(&class)
    }

    /// The value of one attribute of one global object (null if the class,
    /// object, or slot is absent).
    pub(crate) fn value_at(&self, class: GlobalClassId, goid: GOid, slot: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.per_class
            .get(&class)
            .and_then(|e| e.get(&goid))
            .and_then(|v| v.get(slot))
            .unwrap_or(&NULL)
    }

    /// Walks a bound path from a root entity through global references,
    /// counting one comparison per step probe in `probes`.
    pub(crate) fn walk(&self, root: GOid, path: &BoundPath, probes: &mut u64) -> Value {
        let mut goid = root;
        let n = path.len();
        for i in 0..n {
            *probes += 1;
            let value = self.value_at(path.class(i), goid, path.slot(i));
            if i + 1 == n {
                return value.clone();
            }
            match value {
                Value::GRef(next) => goid = *next,
                _ => return Value::Null, // null or untranslatable blocks the walk
            }
        }
        unreachable!("paths are non-empty")
    }
}

/// An equality index over one slot of a materialized root extent.
///
/// Roots whose value is not indexable — nulls, floats, lists, global
/// references — land in the `loose` bucket: equality against them can be
/// `True` or `Unknown` (never provably `False` from the index alone), so
/// they stay candidates for every probe.
#[derive(Debug, Clone, Default)]
pub(crate) struct SlotIndex {
    map: HashMap<IndexKey, Vec<GOid>>,
    loose: Vec<GOid>,
}

impl SlotIndex {
    /// Builds the index in one pass over the (sorted) root list, so each
    /// per-key group and the loose bucket come out sorted.
    fn build(mat: &Materialized, class: GlobalClassId, slot: usize, roots: &[GOid]) -> SlotIndex {
        let mut index = SlotIndex::default();
        for &goid in roots {
            match IndexKey::from_value(mat.value_at(class, goid, slot)) {
                Some(key) => index.map.entry(key).or_default().push(goid),
                None => index.loose.push(goid),
            }
        }
        index
    }

    /// Candidate roots for `slot = key`: the exact matches plus the loose
    /// bucket, merged in sorted root order. Every root outside this set
    /// holds a known indexable value different from the key, so the full
    /// scan would eliminate it with a definite `False`.
    fn candidates(&self, key: &IndexKey) -> Vec<GOid> {
        let matches = self.map.get(key).map_or(&[][..], Vec::as_slice);
        let mut out = Vec::with_capacity(matches.len() + self.loose.len());
        let (mut a, mut b) = (0, 0);
        while a < matches.len() && b < self.loose.len() {
            if matches[a] < self.loose[b] {
                out.push(matches[a]);
                a += 1;
            } else {
                out.push(self.loose[b]);
                b += 1;
            }
        }
        out.extend_from_slice(&matches[a..]);
        out.extend_from_slice(&self.loose[b..]);
        out
    }
}

/// The global site's reusable CA state for one query: the materialized
/// extents, the sorted root list, and (when built with indexing) per-slot
/// equality indexes over the root extent. Cached warm under the query's
/// fingerprint so a repeat run skips phases O and I entirely and phase P
/// touches only index candidates.
#[derive(Debug, Clone)]
pub(crate) struct CentralExtents {
    /// The materialized global extents.
    pub mat: Materialized,
    /// The query's range class.
    pub range: GlobalClassId,
    /// Sorted GOids of the materialized range extent — CA's row order.
    pub roots: Vec<GOid>,
    eq: HashMap<usize, SlotIndex>,
}

impl CentralExtents {
    /// Materializes the involved classes and, with `with_index`, builds an
    /// equality index for every root slot a bare single-step equality
    /// predicate of `query` probes. Returns the build cost plus the index
    /// construction probes (one per root per indexed slot).
    pub(crate) fn build(
        fed: &Federation,
        query: &BoundQuery,
        involved: &HashMap<GlobalClassId, BTreeSet<usize>>,
        with_index: bool,
    ) -> Result<(CentralExtents, BuildCost, u64), ExecError> {
        let (mat, cost) = Materialized::build(fed, involved);
        let range = query.range();
        let extent = mat
            .extent(range)
            .ok_or_else(|| ExecError::Internal("range class not materialized".into()))?;
        let mut roots: Vec<GOid> = extent.keys().copied().collect();
        roots.sort();
        let mut eq = HashMap::new();
        let mut index_probes = 0u64;
        if with_index {
            for pred in query.predicates() {
                if pred.op() != CmpOp::Eq || pred.path().len() != 1 {
                    continue;
                }
                if pred.path().class(0) != range || IndexKey::from_value(pred.literal()).is_none() {
                    continue;
                }
                let slot = pred.path().slot(0);
                if eq.contains_key(&slot) {
                    continue;
                }
                index_probes += roots.len() as u64;
                eq.insert(slot, SlotIndex::build(&mat, range, slot, &roots));
            }
        }
        Ok((
            CentralExtents {
                mat,
                range,
                roots,
                eq,
            },
            cost,
            index_probes,
        ))
    }

    /// Index-narrowed candidate roots for `query` (sorted), charging one
    /// probe per consulted index; `None` when no equality predicate has a
    /// built slot index — the caller scans every root.
    pub(crate) fn candidates(&self, query: &BoundQuery, probes: &mut u64) -> Option<Vec<GOid>> {
        for pred in query.predicates() {
            if pred.op() != CmpOp::Eq
                || pred.path().len() != 1
                || pred.path().class(0) != self.range
            {
                continue;
            }
            let Some(index) = self.eq.get(&pred.path().slot(0)) else {
                continue;
            };
            let Some(key) = IndexKey::from_value(pred.literal()) else {
                continue;
            };
            *probes += 1; // index hash probe
            return Some(index.candidates(&key));
        }
        None
    }
}

/// Translates `Ref(loid)` into `GRef(goid)` through the domain class's
/// GOid table; anything else passes through.
fn translate_ref(fed: &Federation, domain: GlobalClassId, value: Value, probes: &mut u64) -> Value {
    match value {
        Value::Ref(loid) => {
            *probes += 1;
            match fed.catalog().table(domain).goid_of(loid) {
                Some(g) => Value::GRef(g),
                None => Value::Null,
            }
        }
        Value::List(items) => Value::List(
            items
                .into_iter()
                .map(|v| translate_ref(fed, domain, v, probes))
                .collect(),
        ),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedoq_object::{DbId, Value};
    use fedoq_schema::Correspondences;
    use fedoq_store::{AttrType, ClassDef, ComponentDb, ComponentSchema};

    /// DB0: Student(s-no, age, advisor->Teacher), Teacher(name).
    /// DB1: Student(s-no, sex), no Teacher.
    fn fed() -> Federation {
        let s0 = ComponentSchema::new(vec![
            ClassDef::new("Teacher")
                .attr("name", AttrType::text())
                .key(["name"]),
            ClassDef::new("Student")
                .attr("s-no", AttrType::int())
                .attr("age", AttrType::int())
                .attr("advisor", AttrType::complex("Teacher"))
                .key(["s-no"]),
        ])
        .unwrap();
        let s1 = ComponentSchema::new(vec![ClassDef::new("Student")
            .attr("s-no", AttrType::int())
            .attr("sex", AttrType::text())
            .key(["s-no"])])
        .unwrap();
        let mut db0 = ComponentDb::new(DbId::new(0), "DB0", s0);
        let mut db1 = ComponentDb::new(DbId::new(1), "DB1", s1);
        let t = db0
            .insert_named("Teacher", &[("name", Value::text("Kelly"))])
            .unwrap();
        db0.insert_named(
            "Student",
            &[
                ("s-no", Value::Int(1)),
                ("age", Value::Int(31)),
                ("advisor", Value::Ref(t)),
            ],
        )
        .unwrap();
        db1.insert_named(
            "Student",
            &[("s-no", Value::Int(1)), ("sex", Value::text("m"))],
        )
        .unwrap();
        db1.insert_named(
            "Student",
            &[("s-no", Value::Int(2)), ("sex", Value::text("f"))],
        )
        .unwrap();
        Federation::new(vec![db0, db1], &Correspondences::new()).unwrap()
    }

    fn all_slots(fed: &Federation) -> HashMap<GlobalClassId, BTreeSet<usize>> {
        fed.global_schema()
            .iter()
            .map(|(id, c)| (id, (0..c.arity()).collect()))
            .collect()
    }

    #[test]
    fn isomeric_objects_merge_with_null_filling() {
        let f = fed();
        let (m, cost) = Materialized::build(&f, &all_slots(&f));
        let student = f.global_schema().class_id("Student").unwrap();
        let extent = m.extent(student).unwrap();
        assert_eq!(extent.len(), 2); // two entities, not three rows
        let class = f.global_schema().class_by_name("Student").unwrap();
        let age = class.attr_index("age").unwrap();
        let sex = class.attr_index("sex").unwrap();
        // Entity 1 merged age (from DB0) and sex (from DB1).
        let table = f.catalog().table(student);
        let e1 = table
            .iter()
            .find(|(_, ls)| ls.len() == 2)
            .map(|(g, _)| g)
            .unwrap();
        assert_eq!(m.value_at(student, e1, age), &Value::Int(31));
        assert_eq!(m.value_at(student, e1, sex), &Value::text("m"));
        assert!(cost.o_comparisons > 0 && cost.i_comparisons > 0);
    }

    #[test]
    fn local_refs_translate_to_global_refs() {
        let f = fed();
        let (m, _) = Materialized::build(&f, &all_slots(&f));
        let student = f.global_schema().class_id("Student").unwrap();
        let teacher = f.global_schema().class_id("Teacher").unwrap();
        let class = f.global_schema().class_by_name("Student").unwrap();
        let advisor = class.attr_index("advisor").unwrap();
        let table = f.catalog().table(student);
        let e1 = table
            .iter()
            .find(|(_, ls)| ls.len() == 2)
            .map(|(g, _)| g)
            .unwrap();
        match m.value_at(student, e1, advisor) {
            Value::GRef(g) => {
                let name_slot = f
                    .global_schema()
                    .class_by_name("Teacher")
                    .unwrap()
                    .attr_index("name")
                    .unwrap();
                assert_eq!(m.value_at(teacher, *g, name_slot), &Value::text("Kelly"));
            }
            other => panic!("expected GRef, got {other:?}"),
        }
    }

    #[test]
    fn walk_follows_grefs_and_counts_probes() {
        let f = fed();
        let (m, _) = Materialized::build(&f, &all_slots(&f));
        let q = f
            .parse_and_bind("SELECT X.advisor.name FROM Student X WHERE X.s-no = 1")
            .unwrap();
        let student = f.global_schema().class_id("Student").unwrap();
        let table = f.catalog().table(student);
        let e1 = table
            .iter()
            .find(|(_, ls)| ls.len() == 2)
            .map(|(g, _)| g)
            .unwrap();
        let mut probes = 0;
        let v = m.walk(e1, &q.targets()[0], &mut probes);
        assert_eq!(v, Value::text("Kelly"));
        assert_eq!(probes, 2);
        // Entity 2 has no advisor anywhere: the walk yields null.
        let e2 = table
            .iter()
            .find(|(_, ls)| ls.len() == 1)
            .map(|(g, _)| g)
            .unwrap();
        let v = m.walk(e2, &q.targets()[0], &mut probes);
        assert!(v.is_null());
    }

    #[test]
    fn uninvolved_slots_stay_null() {
        let f = fed();
        let student = f.global_schema().class_id("Student").unwrap();
        let class = f.global_schema().class_by_name("Student").unwrap();
        let sno = class.attr_index("s-no").unwrap();
        let age = class.attr_index("age").unwrap();
        let only_sno: HashMap<_, _> = [(student, BTreeSet::from([sno]))].into_iter().collect();
        let (m, _) = Materialized::build(&f, &only_sno);
        let table = f.catalog().table(student);
        for (g, _) in table.iter() {
            assert!(m.value_at(student, g, age).is_null());
            assert!(!m.value_at(student, g, sno).is_null());
        }
    }
}
