//! A shared LRU cache for GOid-mapping and assistant-attribute lookups.
//!
//! The localized strategies keep re-deriving the same facts: the sibling
//! set of an item in the GOid mapping tables, an assistant's verdict on
//! an unsolved predicate, a target value fetched from an isomeric copy,
//! and — for CA — the projected extents already shipped to the global
//! site. All of these are pure functions of the federation's *data*, so
//! they stay valid until a store mutates.
//!
//! Invalidation is generation-based: [`Federation::generation`] bumps on
//! every mutation, and [`LookupCache::sync_generation`] drops the whole
//! cache when the observed generation moves. There is no per-entry
//! dependency tracking — a mutation anywhere flushes everything — which
//! is crude but impossible to get wrong: a stale verdict can silently
//! misclassify a maybe answer (the FQ101 situation), so the protocol
//! errs on the side of recomputation.
//!
//! [`Federation::generation`]: crate::federation::Federation::generation

use crate::materialize::CentralExtents;
use fedoq_object::{DbId, LOid, Truth, Value};
use fedoq_query::BoundQuery;
use std::collections::HashMap;
use std::sync::Arc;

/// Key of one cached lookup. Query-dependent namespaces carry a query
/// fingerprint (see [`query_fingerprint`]) so distinct queries never
/// collide; data-only namespaces (siblings) are shared across queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheKey {
    /// An assistant's verdict on the remainder of predicate `pred`
    /// starting at step `start` — the payload of one check probe.
    Verdict {
        /// The assistant object that was checked.
        assistant: LOid,
        /// Conjunct index within the fingerprinted query.
        pred: usize,
        /// Step index where the checked remainder begins.
        start: usize,
        /// Fingerprint of the query the predicate belongs to.
        query: u64,
    },
    /// A target value fetched from an assistant (target completion).
    Target {
        /// The assistant object that was read.
        assistant: LOid,
        /// Select-list position of the target.
        target: usize,
        /// Step index where the unprojectable remainder begins.
        start: usize,
        /// Fingerprint of the query the target belongs to.
        query: u64,
    },
    /// The presence-filtered assistant set of one unsolved item: the
    /// GOid-mapping lookup, filtered to sites whose constituent holds the
    /// first missing attribute (`slot`).
    Siblings {
        /// Global class of the item (index form).
        class: u32,
        /// First unsolved global attribute slot.
        slot: usize,
        /// The item whose isomeric copies are wanted.
        item: LOid,
    },
    /// One projected-extent shipment CA already delivered to the global
    /// site (value: its byte size). A warm entry lets a repeated query
    /// skip the re-ship entirely.
    Shipment {
        /// The site that shipped.
        db: DbId,
        /// Position within the ship plan.
        index: usize,
        /// Fingerprint of the shipped-for query.
        query: u64,
    },
}

/// Value of one cached lookup, variant-matched to its [`CacheKey`].
#[derive(Debug, Clone, PartialEq)]
pub enum CacheValue {
    /// A check verdict.
    Verdict(Truth),
    /// A fetched target value.
    Target(Value),
    /// A presence-filtered assistant set.
    Siblings(Vec<LOid>),
    /// Shipped bytes of one CA shipment.
    Shipment(u64),
}

/// Hit/miss/eviction/invalidation counters, monotone over the cache's
/// lifetime (surviving generation flushes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered from the cache.
    pub hits: u64,
    /// Probes that fell through to recomputation.
    pub misses: u64,
    /// Entries dropped by the LRU capacity bound.
    pub evictions: u64,
    /// Entries dropped by generation invalidation.
    pub invalidations: u64,
}

impl CacheStats {
    /// Fraction of probes answered from the cache (0 when never probed).
    pub fn hit_rate(&self) -> f64 {
        let probes = self.hits + self.misses;
        if probes == 0 {
            0.0
        } else {
            self.hits as f64 / probes as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    value: CacheValue,
    last_use: u64,
}

/// One warm CA materialization (shared, since rebuilding it is the very
/// cost being avoided).
#[derive(Debug, Clone)]
struct MatEntry {
    value: Arc<CentralExtents>,
    last_use: u64,
}

/// Warm materializations kept per cache — they are orders of magnitude
/// larger than ordinary entries, so they get their own small bound.
const MATERIALIZED_CAPACITY: usize = 8;

/// The shared lookup cache: a bounded map with least-recently-used
/// eviction and whole-cache generation invalidation.
#[derive(Debug, Clone)]
pub struct LookupCache {
    capacity: usize,
    generation: u64,
    tick: u64,
    map: HashMap<CacheKey, Entry>,
    /// Warm CA materializations, keyed by `(query fingerprint, indexed)`.
    materialized: HashMap<(u64, bool), MatEntry>,
    stats: CacheStats,
}

impl Default for LookupCache {
    fn default() -> Self {
        LookupCache::with_capacity(65_536)
    }
}

impl LookupCache {
    /// An empty cache holding at most `capacity` entries.
    pub fn with_capacity(capacity: usize) -> LookupCache {
        LookupCache {
            capacity: capacity.max(1),
            generation: 0,
            tick: 0,
            map: HashMap::new(),
            materialized: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Aligns the cache with the federation's mutation generation,
    /// flushing every entry (and counting them as invalidations) when the
    /// generation moved since the last sync.
    pub fn sync_generation(&mut self, generation: u64) {
        if generation != self.generation {
            self.stats.invalidations += (self.map.len() + self.materialized.len()) as u64;
            self.map.clear();
            self.materialized.clear();
            self.generation = generation;
        }
    }

    /// The generation the current contents were computed under.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Looks `key` up, counting a hit or miss and refreshing recency.
    pub fn get(&mut self, key: &CacheKey) -> Option<CacheValue> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(entry) => {
                entry.last_use = self.tick;
                self.stats.hits += 1;
                Some(entry.value.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts `key -> value`, evicting the least-recently-used entry
    /// when the capacity bound is hit.
    pub fn put(&mut self, key: CacheKey, value: CacheValue) {
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| *k)
            {
                self.map.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.map.insert(
            key,
            Entry {
                value,
                last_use: self.tick,
            },
        );
    }

    /// Looks up the warm CA materialization of one `(query, indexed)`
    /// pair, counting a hit or miss and refreshing recency.
    pub(crate) fn materialized(
        &mut self,
        query: u64,
        indexed: bool,
    ) -> Option<Arc<CentralExtents>> {
        self.tick += 1;
        match self.materialized.get_mut(&(query, indexed)) {
            Some(entry) => {
                entry.last_use = self.tick;
                self.stats.hits += 1;
                Some(entry.value.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Remembers a freshly built CA materialization, evicting the
    /// least-recently-used one past the (small) materialization bound.
    pub(crate) fn put_materialized(
        &mut self,
        query: u64,
        indexed: bool,
        value: Arc<CentralExtents>,
    ) {
        self.tick += 1;
        let key = (query, indexed);
        if self.materialized.len() >= MATERIALIZED_CAPACITY && !self.materialized.contains_key(&key)
        {
            if let Some(victim) = self
                .materialized
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| *k)
            {
                self.materialized.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.materialized.insert(
            key,
            MatEntry {
                value,
                last_use: self.tick,
            },
        );
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` iff the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum entry count.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The lifetime counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drops every entry and resets the counters (the cache keeps its
    /// capacity and generation) — the shell's `cachestats reset`.
    pub fn reset(&mut self) {
        self.map.clear();
        self.materialized.clear();
        self.stats = CacheStats::default();
    }
}

/// A deterministic fingerprint of a bound query (FNV-1a over its debug
/// rendering), namespacing query-dependent cache entries. Stable within a
/// process run, which is the cache's lifetime.
pub fn query_fingerprint(query: &BoundQuery) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in format!("{query:?}").bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vkey(serial: u64) -> CacheKey {
        CacheKey::Verdict {
            assistant: LOid::new(DbId::new(0), serial),
            pred: 0,
            start: 1,
            query: 7,
        }
    }

    #[test]
    fn hits_misses_and_recency() {
        let mut cache = LookupCache::with_capacity(8);
        assert!(cache.get(&vkey(1)).is_none());
        cache.put(vkey(1), CacheValue::Verdict(Truth::True));
        assert_eq!(cache.get(&vkey(1)), Some(CacheValue::Verdict(Truth::True)));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.hit_rate(), 0.5);
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let mut cache = LookupCache::with_capacity(2);
        cache.put(vkey(1), CacheValue::Verdict(Truth::True));
        cache.put(vkey(2), CacheValue::Verdict(Truth::False));
        let _ = cache.get(&vkey(1)); // 2 is now coldest
        cache.put(vkey(3), CacheValue::Verdict(Truth::Unknown));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get(&vkey(2)).is_none());
        assert!(cache.get(&vkey(1)).is_some());
        // Re-putting an existing key never evicts.
        cache.put(vkey(1), CacheValue::Verdict(Truth::True));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn generation_sync_flushes_once_per_move() {
        let mut cache = LookupCache::default();
        cache.put(vkey(1), CacheValue::Shipment(128));
        cache.sync_generation(0); // unchanged: no flush
        assert_eq!(cache.len(), 1);
        cache.sync_generation(1);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.generation(), 1);
        cache.sync_generation(1);
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn reset_clears_entries_and_counters() {
        let mut cache = LookupCache::with_capacity(4);
        cache.put(vkey(1), CacheValue::Verdict(Truth::True));
        let _ = cache.get(&vkey(1));
        cache.reset();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
        assert_eq!(cache.capacity(), 4);
    }

    #[test]
    fn empty_hit_rate_is_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
