//! Error type for federation construction and strategy execution.

use fedoq_query::QueryError;
use fedoq_schema::SchemaError;
use fedoq_store::StoreError;
use std::fmt;

/// Errors raised while building a [`crate::Federation`] or executing a
/// strategy.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExecError {
    /// Schema integration or isomerism identification failed.
    Schema(SchemaError),
    /// A component database rejected an operation.
    Store(StoreError),
    /// Parsing or binding the query failed.
    Query(QueryError),
    /// The federation violated an invariant the strategies rely on.
    Internal(String),
    /// A site required by the strategy stayed unreachable past the retry
    /// budget and the strategy cannot degrade gracefully (CA needs every
    /// involved extent shipped before it can evaluate anything).
    Unreachable(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Schema(e) => write!(f, "schema integration failed: {e}"),
            ExecError::Store(e) => write!(f, "component database error: {e}"),
            ExecError::Query(e) => write!(f, "query error: {e}"),
            ExecError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
            ExecError::Unreachable(msg) => write!(f, "site unreachable: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Schema(e) => Some(e),
            ExecError::Store(e) => Some(e),
            ExecError::Query(e) => Some(e),
            ExecError::Internal(_) | ExecError::Unreachable(_) => None,
        }
    }
}

impl From<SchemaError> for ExecError {
    fn from(e: SchemaError) -> Self {
        ExecError::Schema(e)
    }
}

impl From<StoreError> for ExecError {
    fn from(e: StoreError) -> Self {
        ExecError::Store(e)
    }
}

impl From<QueryError> for ExecError {
    fn from(e: QueryError) -> Self {
        ExecError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sources() {
        let e = ExecError::from(QueryError::EmptyQuery);
        assert!(e.to_string().contains("query error"));
        assert!(std::error::Error::source(&e).is_some());
        let e = ExecError::Internal("x".into());
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn is_send_sync() {
        fn check<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        check(ExecError::Internal("x".into()));
    }
}
