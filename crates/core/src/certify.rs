//! Certification: turning local maybe results into certain results.
//!
//! The global site integrates the per-site local results by GOid and
//! applies the paper's certification rule:
//!
//! > An unsolved object can be turned into a solved object if its
//! > assistant objects jointly satisfy all the unsolved predicates on it.
//! > The object is eliminated when any of its assistant objects violates
//! > an unsolved predicate.
//!
//! Three signals certify or eliminate an entity:
//!
//! 1. **Cross-site merging** — an isomeric copy's local result already
//!    carries a `True` verdict for a predicate unsolved here;
//! 2. **Absence elimination** — a queried site hosts an isomeric copy of
//!    the entity inside its local root class, but that copy is not in the
//!    site's local results: some local predicate was false there, and the
//!    query is conjunctive, so the entity is eliminated (the paper's
//!    elimination of `s1`);
//! 3. **Check replies** — assistant objects of the *unsolved items*
//!    (nested branch objects holding the missing data) answered the
//!    remaining predicate `True` (solve) or `False` (eliminate).

use crate::federation::Federation;
use crate::localized::{LocalRow, TargetReplies, UnsolvedEntry};
use crate::result::{MaybeRow, QueryAnswer, ResultRow};
use fedoq_object::{DbId, GOid, LOid, Truth, Value};
use fedoq_query::{BoundQuery, PredId};
use fedoq_sim::{Phase, Simulation, Site};
use std::collections::HashMap;

/// Accumulated verdicts from assistant checks, keyed by the unsolved item
/// and the predicate checked.
#[derive(Debug, Clone, Default)]
pub struct CheckReplies {
    verdicts: HashMap<(LOid, PredId), Vec<Truth>>,
}

impl CheckReplies {
    /// An empty reply store.
    pub fn new() -> CheckReplies {
        CheckReplies::default()
    }

    /// Records one assistant's verdict for `(item, pred)`.
    pub fn record(&mut self, item: LOid, pred: PredId, verdict: Truth) {
        self.verdicts.entry((item, pred)).or_default().push(verdict);
    }

    /// All verdicts recorded for `(item, pred)`.
    pub fn verdicts(&self, item: LOid, pred: PredId) -> &[Truth] {
        self.verdicts.get(&(item, pred)).map_or(&[], Vec::as_slice)
    }

    /// Number of recorded verdicts (for tests and metrics).
    pub fn len(&self) -> usize {
        self.verdicts.values().map(Vec::len).sum()
    }

    /// `true` iff no verdict has been recorded.
    pub fn is_empty(&self) -> bool {
        self.verdicts.is_empty()
    }
}

/// Certifies the merged local results at the global site (phase I) and
/// assembles the final answer.
pub fn certify(
    fed: &Federation,
    query: &BoundQuery,
    site_rows: Vec<(DbId, Vec<LocalRow>)>,
    replies: &CheckReplies,
    target_replies: &TargetReplies,
    queried_dbs: &[DbId],
    sim: &mut Simulation,
) -> QueryAnswer {
    let mut comparisons = 0u64;
    let table = fed.catalog().table(query.range());

    // Group the local rows by entity. Rows within a group are ordered by
    // (site, local oid) so target merging is deterministic.
    let mut groups: HashMap<GOid, Vec<(DbId, LocalRow)>> = HashMap::new();
    for (db, rows) in site_rows {
        for row in rows {
            comparisons += 1; // hash probe into the merge table
            groups.entry(row.goid).or_default().push((db, row));
        }
    }
    for group in groups.values_mut() {
        group.sort_by_key(|(db, row)| (*db, row.root_loid));
    }

    let mut entities: Vec<GOid> = groups.keys().copied().collect();
    entities.sort();

    let mut certain = Vec::new();
    let mut maybe = Vec::new();
    'entities: for goid in entities {
        let group = &groups[&goid];

        // Absence elimination: every queried site hosting an isomeric copy
        // must have returned it.
        for &loid in table.loids_of(goid) {
            comparisons += 1;
            if queried_dbs.contains(&loid.db()) && !group.iter().any(|(db, _)| *db == loid.db()) {
                continue 'entities;
            }
        }

        // Merge per-predicate verdicts across the sites' rows.
        let mut verdicts = vec![Truth::Unknown; query.predicates().len()];
        for (_, row) in group {
            for (i, v) in row.verdicts.iter().enumerate() {
                comparisons += 1;
                if v.is_true() {
                    verdicts[i] = Truth::True;
                }
            }
        }

        // Apply the certification rule to each unsolved item.
        for (_, row) in group {
            for UnsolvedEntry { pred, item } in &row.unsolved {
                let Some(item_loid) = item else {
                    continue; // root-level: cross-site merging covers it
                };
                for verdict in replies.verdicts(*item_loid, *pred) {
                    comparisons += 1;
                    match verdict {
                        Truth::True => verdicts[pred.index()] = Truth::True,
                        Truth::False => continue 'entities, // violation
                        Truth::Unknown => {}
                    }
                }
            }
        }

        // Merge the targets: first non-null projection across the rows,
        // then (target completion) values fetched from assistants.
        let n_targets = query.targets().len();
        let mut targets = vec![Value::Null; n_targets];
        for (_, row) in group {
            for (slot, value) in row.targets.iter().enumerate() {
                comparisons += 1;
                if targets[slot].is_null() && !value.is_null() {
                    targets[slot] = value.clone();
                }
            }
        }
        for (_, row) in group {
            for (slot, item) in row.target_items.iter().enumerate() {
                let Some((item_loid, _)) = item else { continue };
                if !targets[slot].is_null() {
                    continue;
                }
                if let Some(values) = target_replies.get(&(*item_loid, slot)) {
                    for value in values {
                        comparisons += 1;
                        if !value.is_null() {
                            targets[slot] = value.clone();
                            break;
                        }
                    }
                }
            }
        }

        let unsolved: Vec<PredId> = verdicts
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_true())
            .map(|(i, _)| PredId::new(i))
            .collect();
        let row = ResultRow::new(goid, targets);
        if unsolved.is_empty() {
            certain.push(row);
        } else {
            maybe.push(MaybeRow::new(row, unsolved));
        }
    }

    sim.cpu(Site::Global, comparisons, Phase::I);
    QueryAnswer::new(certain, maybe)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replies_accumulate_per_item_and_pred() {
        let mut r = CheckReplies::new();
        let item = LOid::new(DbId::new(0), 1);
        r.record(item, PredId::new(0), Truth::True);
        r.record(item, PredId::new(0), Truth::Unknown);
        r.record(item, PredId::new(1), Truth::False);
        assert_eq!(
            r.verdicts(item, PredId::new(0)),
            &[Truth::True, Truth::Unknown]
        );
        assert_eq!(r.verdicts(item, PredId::new(1)), &[Truth::False]);
        assert!(r
            .verdicts(LOid::new(DbId::new(1), 1), PredId::new(0))
            .is_empty());
        assert_eq!(r.len(), 3);
    }
}
