//! Query answers: certain results and maybe results.
//!
//! Following Codd's maybe semantics, an answer partitions the surviving
//! root entities into **certain** results (every predicate true) and
//! **maybe** results (no predicate false, at least one unknown because of
//! missing data). Each maybe result records *which* conjuncts stayed
//! unsolved — the informative answer the paper aims for.

use fedoq_object::{GOid, Value};
use fedoq_query::PredId;
use std::collections::BTreeSet;
use std::fmt;

/// One result tuple: the root entity and its projected target values.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultRow {
    goid: GOid,
    values: Vec<Value>,
}

impl ResultRow {
    /// Creates a result row.
    pub fn new(goid: GOid, values: Vec<Value>) -> ResultRow {
        ResultRow { goid, values }
    }

    /// The root entity's global identifier.
    pub fn goid(&self) -> GOid {
        self.goid
    }

    /// The target values in select-list order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }
}

impl fmt::Display for ResultRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.goid)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

/// How a maybe result came to be a maybe result.
///
/// Under normal execution every assistant object is consulted, so a maybe
/// result means the data is missing *everywhere* ([`Provenance::Full`]).
/// Under degraded distributed execution (an assistant or component site
/// unreachable past the retry budget), a maybe result may merely mean the
/// protocol could not finish: the row is a sound approximation that a
/// retry after recovery could still certify or eliminate
/// ([`Provenance::Degraded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Provenance {
    /// Every reachable copy was consulted; the classification is final.
    #[default]
    Full,
    /// One or more sites were unreachable; the classification is a sound
    /// approximation (never a wrong certain result, but this row might be
    /// certified or eliminated once the missing sites recover).
    Degraded,
}

/// A maybe result: a row plus the conjuncts left unsolved by missing data.
#[derive(Debug, Clone, PartialEq)]
pub struct MaybeRow {
    row: ResultRow,
    unsolved: BTreeSet<PredId>,
    provenance: Provenance,
}

impl MaybeRow {
    /// Creates a maybe row.
    ///
    /// # Panics
    ///
    /// Panics if `unsolved` is empty — a row with nothing unsolved is a
    /// certain result, not a maybe result.
    pub fn new<I: IntoIterator<Item = PredId>>(row: ResultRow, unsolved: I) -> MaybeRow {
        let unsolved: BTreeSet<PredId> = unsolved.into_iter().collect();
        assert!(
            !unsolved.is_empty(),
            "a maybe result must have an unsolved predicate"
        );
        MaybeRow {
            row,
            unsolved,
            provenance: Provenance::Full,
        }
    }

    /// The same row with its provenance replaced (chainable).
    pub fn with_provenance(mut self, provenance: Provenance) -> MaybeRow {
        self.provenance = provenance;
        self
    }

    /// How this maybe result was produced.
    pub fn provenance(&self) -> Provenance {
        self.provenance
    }

    /// `true` iff this row was produced by a degraded (partially
    /// unreachable) execution.
    pub fn is_degraded(&self) -> bool {
        self.provenance == Provenance::Degraded
    }

    /// The underlying row.
    pub fn row(&self) -> &ResultRow {
        &self.row
    }

    /// The root entity's global identifier.
    pub fn goid(&self) -> GOid {
        self.row.goid()
    }

    /// The unsolved conjuncts, ascending.
    pub fn unsolved(&self) -> impl Iterator<Item = PredId> + '_ {
        self.unsolved.iter().copied()
    }

    /// `true` iff `pred` is unsolved for this row.
    pub fn is_unsolved(&self, pred: PredId) -> bool {
        self.unsolved.contains(&pred)
    }
}

impl fmt::Display for MaybeRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} maybe[", self.row)?;
        for (i, p) in self.unsolved.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{p}")?;
        }
        f.write_str("]")?;
        if self.is_degraded() {
            f.write_str(" (degraded)")?;
        }
        Ok(())
    }
}

/// The full answer to one global query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryAnswer {
    certain: Vec<ResultRow>,
    maybe: Vec<MaybeRow>,
}

impl QueryAnswer {
    /// Assembles an answer, normalizing row order by GOid so equal answers
    /// compare equal regardless of production order.
    pub fn new(mut certain: Vec<ResultRow>, mut maybe: Vec<MaybeRow>) -> QueryAnswer {
        certain.sort_by_key(ResultRow::goid);
        maybe.sort_by_key(MaybeRow::goid);
        QueryAnswer { certain, maybe }
    }

    /// The certain results, ascending by GOid.
    pub fn certain(&self) -> &[ResultRow] {
        &self.certain
    }

    /// The maybe results, ascending by GOid.
    pub fn maybe(&self) -> &[MaybeRow] {
        &self.maybe
    }

    /// Total number of returned rows.
    pub fn len(&self) -> usize {
        self.certain.len() + self.maybe.len()
    }

    /// `true` iff nothing was returned.
    pub fn is_empty(&self) -> bool {
        self.certain.is_empty() && self.maybe.is_empty()
    }

    /// GOids of the certain results.
    pub fn certain_goids(&self) -> BTreeSet<GOid> {
        self.certain.iter().map(ResultRow::goid).collect()
    }

    /// GOids of the maybe results.
    pub fn maybe_goids(&self) -> BTreeSet<GOid> {
        self.maybe.iter().map(MaybeRow::goid).collect()
    }

    /// `true` iff any maybe result carries a [`Provenance::Degraded`] tag
    /// (some site was unreachable while the answer was assembled).
    pub fn is_degraded(&self) -> bool {
        self.maybe.iter().any(MaybeRow::is_degraded)
    }

    /// `true` iff both answers return the same entities with the same
    /// certainty and the same unsolved conjunct sets (target values are not
    /// compared — localized strategies project only locally available
    /// attributes; see DESIGN.md).
    pub fn same_classification(&self, other: &QueryAnswer) -> bool {
        self.certain_goids() == other.certain_goids()
            && self.maybe.len() == other.maybe.len()
            && self
                .maybe
                .iter()
                .zip(&other.maybe)
                .all(|(a, b)| a.goid() == b.goid() && a.unsolved == b.unsolved)
    }
}

impl fmt::Display for QueryAnswer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} certain, {} maybe",
            self.certain.len(),
            self.maybe.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(g: u64, v: i64) -> ResultRow {
        ResultRow::new(GOid::new(g), vec![Value::Int(v)])
    }

    #[test]
    fn answers_normalize_order() {
        let a = QueryAnswer::new(
            vec![row(2, 2), row(1, 1)],
            vec![MaybeRow::new(row(4, 4), [PredId::new(0)])],
        );
        let b = QueryAnswer::new(
            vec![row(1, 1), row(2, 2)],
            vec![MaybeRow::new(row(4, 4), [PredId::new(0)])],
        );
        assert_eq!(a, b);
        assert_eq!(a.certain()[0].goid(), GOid::new(1));
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn classification_comparison() {
        let a = QueryAnswer::new(
            vec![row(1, 1)],
            vec![MaybeRow::new(row(2, 2), [PredId::new(0)])],
        );
        // Same entities/unsolved sets, different target values.
        let b = QueryAnswer::new(
            vec![ResultRow::new(GOid::new(1), vec![Value::Null])],
            vec![MaybeRow::new(
                ResultRow::new(GOid::new(2), vec![]),
                [PredId::new(0)],
            )],
        );
        assert!(a.same_classification(&b));
        // Different unsolved set.
        let c = QueryAnswer::new(
            vec![row(1, 1)],
            vec![MaybeRow::new(row(2, 2), [PredId::new(1)])],
        );
        assert!(!a.same_classification(&c));
        // Maybe entity promoted to certain.
        let d = QueryAnswer::new(vec![row(1, 1), row(2, 2)], vec![]);
        assert!(!a.same_classification(&d));
    }

    #[test]
    fn goid_sets() {
        let a = QueryAnswer::new(
            vec![row(3, 0)],
            vec![MaybeRow::new(row(5, 0), [PredId::new(2)])],
        );
        assert!(a.certain_goids().contains(&GOid::new(3)));
        assert!(a.maybe_goids().contains(&GOid::new(5)));
    }

    #[test]
    #[should_panic(expected = "unsolved predicate")]
    fn maybe_row_requires_unsolved() {
        let _ = MaybeRow::new(row(1, 1), []);
    }

    #[test]
    fn maybe_row_accessors_and_display() {
        let m = MaybeRow::new(row(7, 9), [PredId::new(1), PredId::new(0)]);
        assert_eq!(
            m.unsolved().collect::<Vec<_>>(),
            vec![PredId::new(0), PredId::new(1)]
        );
        assert!(m.is_unsolved(PredId::new(0)));
        assert!(!m.is_unsolved(PredId::new(2)));
        assert_eq!(m.to_string(), "g7(9) maybe[p0,p1]");
    }

    #[test]
    fn provenance_defaults_full_and_tags_degraded() {
        let m = MaybeRow::new(row(3, 3), [PredId::new(0)]);
        assert_eq!(m.provenance(), Provenance::Full);
        assert!(!m.is_degraded());
        let d = m.clone().with_provenance(Provenance::Degraded);
        assert!(d.is_degraded());
        assert_eq!(d.to_string(), "g3(3) maybe[p0] (degraded)");
        // Provenance participates in equality but not in classification.
        assert_ne!(m, d);
        let a = QueryAnswer::new(vec![], vec![m]);
        let b = QueryAnswer::new(vec![], vec![d]);
        assert!(a.same_classification(&b));
        assert!(!a.is_degraded());
        assert!(b.is_degraded());
    }

    #[test]
    fn display_summary() {
        let a = QueryAnswer::new(vec![row(1, 1)], vec![]);
        assert_eq!(a.to_string(), "1 certain, 0 maybe");
        assert_eq!(a.certain()[0].to_string(), "g1(1)");
    }
}
