//! Query substrate for FedOQ.
//!
//! Global queries are written against the integrated global schema in the
//! SQL/X-flavoured subset the paper uses (single range class, path
//! expressions, conjunctive predicates):
//!
//! ```sql
//! SELECT X.name, X.advisor.name
//! FROM Student X
//! WHERE X.address.city = 'Taipei'
//!   AND X.advisor.speciality = 'database'
//!   AND X.advisor.department.name = 'CS'
//! ```
//!
//! The pipeline is [`parse()`] → [`bind()`] (resolve paths against the global
//! schema) → [`decompose`] (per-site classification of each predicate as
//! *local* or *statically unsolved*, yielding the localized strategies'
//! local queries).
//!
//! # Example
//!
//! ```
//! use fedoq_query::{parse, Query};
//! use fedoq_object::CmpOp;
//!
//! let q = parse("SELECT X.name FROM Student X WHERE X.age >= 30")?;
//! assert_eq!(q.range_class(), "Student");
//! assert_eq!(q.predicates().len(), 1);
//! assert_eq!(q.predicates()[0].op(), CmpOp::Ge);
//! # Ok::<(), fedoq_query::QueryError>(())
//! ```

pub mod ast;
pub mod bind;
pub mod decompose;
pub mod dnf;
pub mod error;
pub mod lex;
pub mod parse;

pub use ast::{Predicate, Query};
pub use bind::{bind, BoundPath, BoundPredicate, BoundQuery, PredId};
pub use decompose::{plan_for_db, PredDisposition, SitePlan, TruncatedPred};
pub use dnf::{parse_dnf, DnfQuery};
pub use error::QueryError;
pub use parse::parse;
