//! Per-site query decomposition.
//!
//! For each component database hosting a constituent of the range class,
//! the localized strategies build a *local query* (the paper's Q1′/Q1″):
//!
//! * predicates whose whole path is locally navigable are **local
//!   predicates** — the site can evaluate them;
//! * predicates blocked by a missing attribute are **statically unsolved**
//!   there: they are removed from the local query, and the longest locally
//!   navigable prefix is projected instead so the *unsolved items* (the
//!   nested objects holding the missing data) can be certified later.

use crate::bind::{BoundPath, BoundQuery, PredId};
use fedoq_object::{ClassId, DbId, GlobalClassId};
use fedoq_schema::GlobalSchema;
use std::fmt;

/// How one predicate executes at one site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredDisposition {
    /// The whole path is locally navigable: a *local predicate*.
    Local,
    /// A missing attribute blocks the path after `prefix_len` navigable
    /// steps (possibly zero). The predicate is *unsolved* at this site.
    Truncated {
        /// Number of leading steps the site can navigate (all complex).
        prefix_len: usize,
    },
}

impl PredDisposition {
    /// `true` iff the predicate is a local predicate here.
    pub fn is_local(self) -> bool {
        matches!(self, PredDisposition::Local)
    }
}

/// A statically unsolved predicate at one site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruncatedPred {
    /// Which conjunct.
    pub pred: PredId,
    /// Locally navigable prefix length (0 = the range class itself holds
    /// the missing attribute).
    pub prefix_len: usize,
    /// Global class holding the missing attribute (the unsolved items'
    /// class).
    pub item_class: GlobalClassId,
}

/// The local-query plan for one component database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SitePlan {
    db: DbId,
    root_constituent: ClassId,
    dispositions: Vec<PredDisposition>,
    target_prefix_lens: Vec<usize>,
}

impl SitePlan {
    /// The site this plan is for.
    pub fn db(&self) -> DbId {
        self.db
    }

    /// The local root class (this site's constituent of the range class).
    pub fn root_constituent(&self) -> ClassId {
        self.root_constituent
    }

    /// Disposition of predicate `id` at this site.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn disposition(&self, id: PredId) -> PredDisposition {
        self.dispositions[id.index()]
    }

    /// Ids of the local predicates, in conjunct order.
    pub fn local_preds(&self) -> impl Iterator<Item = PredId> + '_ {
        self.dispositions
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_local())
            .map(|(i, _)| PredId::new(i))
    }

    /// The statically unsolved predicates, in conjunct order.
    pub fn truncated_preds<'a>(
        &'a self,
        bound: &'a BoundQuery,
    ) -> impl Iterator<Item = TruncatedPred> + 'a {
        self.dispositions
            .iter()
            .enumerate()
            .filter_map(move |(i, d)| match d {
                PredDisposition::Local => None,
                PredDisposition::Truncated { prefix_len } => {
                    let path = bound.predicates()[i].path();
                    Some(TruncatedPred {
                        pred: PredId::new(i),
                        prefix_len: *prefix_len,
                        item_class: path.class(*prefix_len),
                    })
                }
            })
    }

    /// `true` iff every predicate is local here (no missing attributes on
    /// the query's paths at this site).
    pub fn is_fully_local(&self) -> bool {
        self.dispositions.iter().all(|d| d.is_local())
    }

    /// Locally projectable prefix length of target `i` (equals the
    /// target's path length when fully projectable).
    pub fn target_prefix_len(&self, i: usize) -> usize {
        self.target_prefix_lens[i]
    }

    /// Renders the local query in the paper's Q1′ style, for display.
    pub fn describe(&self, bound: &BoundQuery) -> String {
        let src = bound.source();
        let var = src.var();
        let mut out = format!("Select {var}.Oid");
        for t in src.targets() {
            out.push_str(&format!(", {var}.{t}"));
        }
        out.push_str(&format!(" From {}@{} {var}", src.range_class(), self.db));
        let locals: Vec<String> = self
            .local_preds()
            .map(|id| {
                let p = &src.predicates()[id.index()];
                format!("{var}.{p}")
            })
            .collect();
        if !locals.is_empty() {
            out.push_str(" Where ");
            out.push_str(&locals.join(" and "));
        }
        out
    }
}

impl fmt::Display for SitePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let locals = self.dispositions.iter().filter(|d| d.is_local()).count();
        write!(
            f,
            "plan@{}: {}/{} predicates local",
            self.db,
            locals,
            self.dispositions.len()
        )
    }
}

/// Builds the local-query plan of `db` for `bound`, or `None` when `db`
/// hosts no constituent of the range class (it receives no local query).
pub fn plan_for_db(bound: &BoundQuery, schema: &GlobalSchema, db: DbId) -> Option<SitePlan> {
    let range = schema.class(bound.range());
    let root_constituent = range.constituent_for(db)?.class();
    let dispositions = bound
        .predicates()
        .iter()
        .map(|p| classify(p.path(), schema, db))
        .collect();
    let target_prefix_lens = bound
        .targets()
        .iter()
        .map(|t| navigable_prefix(t, schema, db))
        .collect();
    Some(SitePlan {
        db,
        root_constituent,
        dispositions,
        target_prefix_lens,
    })
}

fn classify(path: &BoundPath, schema: &GlobalSchema, db: DbId) -> PredDisposition {
    let prefix = navigable_prefix(path, schema, db);
    if prefix == path.len() {
        PredDisposition::Local
    } else {
        PredDisposition::Truncated { prefix_len: prefix }
    }
}

/// Number of leading steps of `path` that `db` can navigate: the step's
/// class must have a constituent at `db` that defines the step's
/// attribute.
fn navigable_prefix(path: &BoundPath, schema: &GlobalSchema, db: DbId) -> usize {
    for (i, (class, slot)) in path.steps().enumerate() {
        let present = schema
            .class(class)
            .constituent_for(db)
            .is_some_and(|c| !c.is_missing(slot));
        if !present {
            return i;
        }
    }
    path.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::bind;
    use crate::parse::parse;
    use fedoq_schema::{integrate, Correspondences};
    use fedoq_store::{AttrType, ClassDef, ComponentSchema};

    /// DB0 mirrors the paper's DB1 (no address, no speciality); DB1 mirrors
    /// the paper's DB2 (no department on Teacher, no age on Student).
    fn setting() -> (GlobalSchema, BoundQuery) {
        let db0 = ComponentSchema::new(vec![
            ClassDef::new("Department").attr("name", AttrType::text()),
            ClassDef::new("Teacher")
                .attr("name", AttrType::text())
                .attr("department", AttrType::complex("Department")),
            ClassDef::new("Student")
                .attr("s-no", AttrType::int())
                .attr("name", AttrType::text())
                .attr("age", AttrType::int())
                .attr("advisor", AttrType::complex("Teacher")),
        ])
        .unwrap();
        let db1 = ComponentSchema::new(vec![
            ClassDef::new("Address").attr("city", AttrType::text()),
            ClassDef::new("Teacher")
                .attr("name", AttrType::text())
                .attr("speciality", AttrType::text()),
            ClassDef::new("Student")
                .attr("s-no", AttrType::int())
                .attr("name", AttrType::text())
                .attr("address", AttrType::complex("Address"))
                .attr("advisor", AttrType::complex("Teacher")),
        ])
        .unwrap();
        let schema = integrate(
            &[(DbId::new(0), &db0), (DbId::new(1), &db1)],
            &Correspondences::new(),
        )
        .unwrap();
        let q = parse(
            "Select X.name, X.advisor.name From Student X \
             Where X.address.city = 'Taipei' and X.advisor.speciality = 'database' \
             and X.advisor.department.name = 'CS'",
        )
        .unwrap();
        let bound = bind(&q, &schema).unwrap();
        (schema, bound)
    }

    #[test]
    fn db0_keeps_department_predicate_only() {
        let (schema, bound) = setting();
        let plan = plan_for_db(&bound, &schema, DbId::new(0)).unwrap();
        // address.city: address missing at root => prefix 0.
        assert_eq!(
            plan.disposition(PredId::new(0)),
            PredDisposition::Truncated { prefix_len: 0 }
        );
        // advisor.speciality: advisor navigable, speciality missing => prefix 1.
        assert_eq!(
            plan.disposition(PredId::new(1)),
            PredDisposition::Truncated { prefix_len: 1 }
        );
        // advisor.department.name: fully navigable.
        assert_eq!(plan.disposition(PredId::new(2)), PredDisposition::Local);
        assert_eq!(plan.local_preds().collect::<Vec<_>>(), vec![PredId::new(2)]);
        assert!(!plan.is_fully_local());

        let truncated: Vec<TruncatedPred> = plan.truncated_preds(&bound).collect();
        assert_eq!(truncated.len(), 2);
        assert_eq!(truncated[0].item_class, schema.class_id("Student").unwrap());
        assert_eq!(truncated[1].item_class, schema.class_id("Teacher").unwrap());
    }

    #[test]
    fn db1_keeps_city_and_speciality() {
        let (schema, bound) = setting();
        let plan = plan_for_db(&bound, &schema, DbId::new(1)).unwrap();
        assert_eq!(plan.disposition(PredId::new(0)), PredDisposition::Local);
        assert_eq!(plan.disposition(PredId::new(1)), PredDisposition::Local);
        assert_eq!(
            plan.disposition(PredId::new(2)),
            PredDisposition::Truncated { prefix_len: 1 }
        );
        let truncated: Vec<TruncatedPred> = plan.truncated_preds(&bound).collect();
        assert_eq!(truncated[0].item_class, schema.class_id("Teacher").unwrap());
    }

    #[test]
    fn no_root_constituent_means_no_plan() {
        let (schema, bound) = setting();
        assert!(plan_for_db(&bound, &schema, DbId::new(7)).is_none());
    }

    #[test]
    fn targets_project_navigable_prefixes() {
        let (schema, bound) = setting();
        let plan0 = plan_for_db(&bound, &schema, DbId::new(0)).unwrap();
        // X.name fully projectable, X.advisor.name fully projectable.
        assert_eq!(plan0.target_prefix_len(0), 1);
        assert_eq!(plan0.target_prefix_len(1), 2);
    }

    #[test]
    fn describe_renders_paper_style_local_query() {
        let (schema, bound) = setting();
        let plan0 = plan_for_db(&bound, &schema, DbId::new(0)).unwrap();
        let text = plan0.describe(&bound);
        assert_eq!(
            text,
            "Select X.Oid, X.name, X.advisor.name From Student@DB0 X \
             Where X.advisor.department.name = 'CS'"
        );
        let plan1 = plan_for_db(&bound, &schema, DbId::new(1)).unwrap();
        let text = plan1.describe(&bound);
        assert!(text.contains("X.address.city = 'Taipei'"));
        assert!(text.contains("X.advisor.speciality = 'database'"));
        assert!(!text.contains("department"));
    }

    #[test]
    fn fully_local_plan() {
        let (schema, bound) = setting();
        // A query touching only universally-present attributes.
        let q = parse("SELECT X.name FROM Student X WHERE X.s-no >= 0").unwrap();
        let b = bind(&q, &schema).unwrap();
        let plan = plan_for_db(&b, &schema, DbId::new(0)).unwrap();
        assert!(plan.is_fully_local());
        assert_eq!(plan.truncated_preds(&b).count(), 0);
        let _ = bound; // silence unused warning helpers
    }

    #[test]
    fn display_summary() {
        let (schema, bound) = setting();
        let plan = plan_for_db(&bound, &schema, DbId::new(0)).unwrap();
        assert_eq!(plan.to_string(), "plan@DB0: 1/3 predicates local");
    }
}
