//! Tokenizer for the SQL/X query subset.

use crate::error::QueryError;
use std::fmt;

/// One lexical token with its starting byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Byte offset in the input where the token starts.
    pub position: usize,
    /// The token payload.
    pub kind: TokenKind,
}

/// The kinds of tokens the query language uses.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keywords are recognized case-insensitively and normalized upper-case.
    Keyword(&'static str),
    /// An identifier (class, variable, or attribute name; may contain `-`
    /// after the first character, as in the paper's `s-no`).
    Ident(String),
    /// A single- or double-quoted string literal.
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "`{k}`"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Str(s) => write!(f, "string '{s}'"),
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::Float(v) => write!(f, "float {v}"),
            TokenKind::Dot => f.write_str("`.`"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::Eq => f.write_str("`=`"),
            TokenKind::Ne => f.write_str("`!=`"),
            TokenKind::Lt => f.write_str("`<`"),
            TokenKind::Le => f.write_str("`<=`"),
            TokenKind::Gt => f.write_str("`>`"),
            TokenKind::Ge => f.write_str("`>=`"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

const KEYWORDS: [&str; 7] = ["SELECT", "FROM", "WHERE", "AND", "OR", "TRUE", "FALSE"];

/// Tokenizes a query string.
///
/// # Errors
///
/// Returns [`QueryError::UnexpectedChar`], [`QueryError::UnterminatedString`],
/// or [`QueryError::BadNumber`] with byte positions.
pub fn tokenize(input: &str) -> Result<Vec<Token>, QueryError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let start = i;
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '.' => {
                tokens.push(Token {
                    position: start,
                    kind: TokenKind::Dot,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    position: start,
                    kind: TokenKind::Comma,
                });
                i += 1;
            }
            '=' => {
                tokens.push(Token {
                    position: start,
                    kind: TokenKind::Eq,
                });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        position: start,
                        kind: TokenKind::Ne,
                    });
                    i += 2;
                } else {
                    return Err(QueryError::UnexpectedChar {
                        position: start,
                        ch: '!',
                    });
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    tokens.push(Token {
                        position: start,
                        kind: TokenKind::Le,
                    });
                    i += 2;
                }
                Some(&b'>') => {
                    tokens.push(Token {
                        position: start,
                        kind: TokenKind::Ne,
                    });
                    i += 2;
                }
                _ => {
                    tokens.push(Token {
                        position: start,
                        kind: TokenKind::Lt,
                    });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token {
                        position: start,
                        kind: TokenKind::Ge,
                    });
                    i += 2;
                } else {
                    tokens.push(Token {
                        position: start,
                        kind: TokenKind::Gt,
                    });
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                // Collect raw bytes so multi-byte UTF-8 passes through
                // intact; the input is a valid &str, so any byte run
                // delimited by ASCII quotes is valid UTF-8.
                let mut out: Vec<u8> = Vec::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(QueryError::UnterminatedString { position: start }),
                        Some(&b) if b as char == quote => {
                            // Doubled quote is an escaped quote.
                            if bytes.get(i + 1) == Some(&(quote as u8)) {
                                out.push(quote as u8);
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            out.push(b);
                            i += 1;
                        }
                    }
                }
                let text = String::from_utf8(out).expect("substring of valid UTF-8");
                tokens.push(Token {
                    position: start,
                    kind: TokenKind::Str(text),
                });
            }
            '0'..='9' | '-' if c != '-' || matches!(bytes.get(i + 1), Some(b'0'..=b'9')) => {
                i += 1;
                let mut is_float = false;
                while i < bytes.len() {
                    match bytes[i] {
                        b'0'..=b'9' => i += 1,
                        b'.' if !is_float && matches!(bytes.get(i + 1), Some(b'0'..=b'9')) => {
                            is_float = true;
                            i += 1;
                        }
                        _ => break,
                    }
                }
                let text = &input[start..i];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| QueryError::BadNumber {
                        position: start,
                        text: text.to_owned(),
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| QueryError::BadNumber {
                        position: start,
                        text: text.to_owned(),
                    })?)
                };
                tokens.push(Token {
                    position: start,
                    kind,
                });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                i += 1;
                while i < bytes.len()
                    && matches!(bytes[i], b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'-')
                {
                    i += 1;
                }
                let word = &input[start..i];
                let upper = word.to_ascii_uppercase();
                let kind = match KEYWORDS.iter().find(|k| **k == upper) {
                    Some(k) => TokenKind::Keyword(k),
                    None => TokenKind::Ident(word.to_owned()),
                };
                tokens.push(Token {
                    position: start,
                    kind,
                });
            }
            other => {
                return Err(QueryError::UnexpectedChar {
                    position: start,
                    ch: other,
                })
            }
        }
    }
    tokens.push(Token {
        position: input.len(),
        kind: TokenKind::Eof,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            kinds("select FROM where AnD oR"),
            vec![
                TokenKind::Keyword("SELECT"),
                TokenKind::Keyword("FROM"),
                TokenKind::Keyword("WHERE"),
                TokenKind::Keyword("AND"),
                TokenKind::Keyword("OR"),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn identifiers_allow_hyphens_like_s_no() {
        assert_eq!(
            kinds("X.s-no"),
            vec![
                TokenKind::Ident("X".into()),
                TokenKind::Dot,
                TokenKind::Ident("s-no".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= != <> < <= > >="),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_literals_both_quote_styles() {
        assert_eq!(
            kinds("'Taipei' \"CS\""),
            vec![
                TokenKind::Str("Taipei".into()),
                TokenKind::Str("CS".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn doubled_quote_escapes() {
        assert_eq!(
            kinds("'O''Brien'"),
            vec![TokenKind::Str("O'Brien".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn numbers_int_float_negative() {
        assert_eq!(
            kinds("42 3.5 -7 -0.25"),
            vec![
                TokenKind::Int(42),
                TokenKind::Float(3.5),
                TokenKind::Int(-7),
                TokenKind::Float(-0.25),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_errors_with_position() {
        let err = tokenize("WHERE 'oops").unwrap_err();
        assert_eq!(err, QueryError::UnterminatedString { position: 6 });
    }

    #[test]
    fn unexpected_char_errors() {
        let err = tokenize("a ; b").unwrap_err();
        assert_eq!(
            err,
            QueryError::UnexpectedChar {
                position: 2,
                ch: ';'
            }
        );
        // A bare `!` (not `!=`) is also an error.
        let err = tokenize("a ! b").unwrap_err();
        assert!(matches!(err, QueryError::UnexpectedChar { ch: '!', .. }));
    }

    #[test]
    fn positions_are_byte_offsets() {
        let toks = tokenize("SELECT X").unwrap();
        assert_eq!(toks[0].position, 0);
        assert_eq!(toks[1].position, 7);
        assert_eq!(toks[2].position, 8); // EOF
    }

    #[test]
    fn true_false_are_keywords() {
        assert_eq!(
            kinds("true FALSE"),
            vec![
                TokenKind::Keyword("TRUE"),
                TokenKind::Keyword("FALSE"),
                TokenKind::Eof
            ]
        );
    }
}
