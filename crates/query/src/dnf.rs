//! Disjunctive queries — the paper's future-work extension.
//!
//! The paper assumes conjunctive predicates and notes that "the proposed
//! algorithms will be extended in the future to process the global
//! queries containing predicates in disjunctive form". FedOQ supports
//! disjunctive normal form: `WHERE conj OR conj OR …` where each `conj`
//! is a conjunction (`AND` binds tighter than `OR`, no parentheses).
//!
//! A DNF query executes as the union of its conjunctive branches: under
//! Kleene semantics an entity is **certain** if any branch holds
//! certainly, **eliminated** if every branch is false, and **maybe**
//! otherwise — exactly the merge `fedoq_core::run_disjunctive` performs.

use crate::ast::{Predicate, Query};
use crate::error::QueryError;
use crate::lex::{tokenize, TokenKind};
use fedoq_object::Path;
use std::fmt;

/// A query in disjunctive normal form: shared range and targets, one
/// predicate list per disjunct.
#[derive(Debug, Clone, PartialEq)]
pub struct DnfQuery {
    range_class: String,
    var: String,
    targets: Vec<Path>,
    disjuncts: Vec<Vec<Predicate>>,
}

impl DnfQuery {
    /// Wraps a conjunctive query as a single-branch DNF query.
    pub fn from_conjunctive(query: Query) -> DnfQuery {
        DnfQuery {
            range_class: query.range_class().to_owned(),
            var: query.var().to_owned(),
            targets: query.targets().to_vec(),
            disjuncts: vec![query.predicates().to_vec()],
        }
    }

    /// The global range class.
    pub fn range_class(&self) -> &str {
        &self.range_class
    }

    /// The range variable.
    pub fn var(&self) -> &str {
        &self.var
    }

    /// The shared target paths.
    pub fn targets(&self) -> &[Path] {
        &self.targets
    }

    /// The disjuncts (each a conjunction).
    pub fn disjuncts(&self) -> &[Vec<Predicate>] {
        &self.disjuncts
    }

    /// Number of disjuncts.
    pub fn num_branches(&self) -> usize {
        self.disjuncts.len()
    }

    /// The `i`-th branch as a standalone conjunctive [`Query`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn branch(&self, i: usize) -> Query {
        let mut q = Query::with_var(self.range_class.clone(), self.var.clone());
        for t in &self.targets {
            let joined = t.steps().collect::<Vec<_>>().join(".");
            q = q.target(&joined);
        }
        for p in &self.disjuncts[i] {
            q = q.predicate(p.clone());
        }
        q
    }

    /// All branches as conjunctive queries.
    pub fn branches(&self) -> Vec<Query> {
        (0..self.disjuncts.len()).map(|i| self.branch(i)).collect()
    }

    /// Global conjunct numbering: the offset of branch `i`'s first
    /// predicate when all branches' predicates are concatenated. Merged
    /// answers report unsolved conjuncts in this numbering.
    pub fn branch_offset(&self, i: usize) -> usize {
        self.disjuncts[..i].iter().map(Vec::len).sum()
    }
}

impl fmt::Display for DnfQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.targets.is_empty() {
            write!(f, "{}", self.var)?;
        }
        for (i, t) in self.targets.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}.{}", self.var, t)?;
        }
        write!(f, " FROM {} {}", self.range_class, self.var)?;
        for (b, conj) in self.disjuncts.iter().enumerate() {
            f.write_str(if b == 0 { " WHERE " } else { " OR " })?;
            for (i, p) in conj.iter().enumerate() {
                if i > 0 {
                    f.write_str(" AND ")?;
                }
                write!(f, "{}.{}", self.var, render_pred(p))?;
            }
        }
        Ok(())
    }
}

fn render_pred(p: &Predicate) -> String {
    use fedoq_object::Value;
    let lit = match p.literal() {
        Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
        other => other.to_string(),
    };
    format!("{} {} {lit}", p.path(), p.op())
}

/// Parses a DNF query. Where [`crate::parse()`] accepts only conjunctions,
/// this grammar adds `OR` between them:
///
/// ```text
/// query := SELECT targets FROM Ident Ident [WHERE conj (OR conj)*]
/// ```
///
/// # Errors
///
/// Same conditions as [`crate::parse()`].
///
/// # Example
///
/// ```
/// use fedoq_query::parse_dnf;
///
/// let q = parse_dnf(
///     "SELECT X.name FROM Student X \
///      WHERE X.age < 25 OR X.age > 60 AND X.sex = 'male'")?;
/// assert_eq!(q.num_branches(), 2);
/// assert_eq!(q.disjuncts()[0].len(), 1);
/// assert_eq!(q.disjuncts()[1].len(), 2); // AND binds tighter than OR
/// # Ok::<(), fedoq_query::QueryError>(())
/// ```
pub fn parse_dnf(input: &str) -> Result<DnfQuery, QueryError> {
    // Split the WHERE clause on top-level OR tokens, then reuse the
    // conjunctive parser per branch.
    let tokens = tokenize(input)?;
    let mut or_positions = Vec::new();
    let mut where_pos = None;
    for t in &tokens {
        match t.kind {
            TokenKind::Keyword("WHERE") if where_pos.is_none() => where_pos = Some(t.position),
            TokenKind::Keyword("OR") => or_positions.push(t.position),
            _ => {}
        }
    }
    let Some(where_pos) = where_pos else {
        if let Some(&p) = or_positions.first() {
            return Err(QueryError::Unexpected {
                position: p,
                expected: "WHERE before OR",
                found: "`OR`".into(),
            });
        }
        return Ok(DnfQuery::from_conjunctive(crate::parse(input)?));
    };
    if or_positions.is_empty() {
        return Ok(DnfQuery::from_conjunctive(crate::parse(input)?));
    }

    let head = &input[..where_pos]; // "SELECT ... FROM C X "
    let mut branches = Vec::new();
    let mut start = where_pos + "WHERE".len();
    for &or_pos in &or_positions {
        branches.push(&input[start..or_pos]);
        start = or_pos + 2; // skip "OR" (the keyword is always 2 bytes)
    }
    branches.push(&input[start..]);

    let mut parsed: Option<DnfQuery> = None;
    for branch in branches {
        let sql = format!("{head} WHERE {branch}");
        let q = crate::parse(&sql)?;
        match &mut parsed {
            None => parsed = Some(DnfQuery::from_conjunctive(q)),
            Some(dnf) => {
                debug_assert_eq!(q.range_class(), dnf.range_class);
                dnf.disjuncts.push(q.predicates().to_vec());
            }
        }
    }
    Ok(parsed.expect("at least one branch"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedoq_object::{CmpOp, Value};

    #[test]
    fn conjunctive_input_is_single_branch() {
        let q = parse_dnf("SELECT X.name FROM Student X WHERE X.age > 30").unwrap();
        assert_eq!(q.num_branches(), 1);
        assert_eq!(q.disjuncts()[0].len(), 1);
        let q = parse_dnf("SELECT X.name FROM Student X").unwrap();
        assert_eq!(q.num_branches(), 1);
        assert!(q.disjuncts()[0].is_empty());
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let q = parse_dnf(
            "SELECT X.name FROM S X WHERE X.a = 1 AND X.b = 2 OR X.c = 3 OR X.d = 4 AND X.e = 5",
        )
        .unwrap();
        assert_eq!(q.num_branches(), 3);
        assert_eq!(q.disjuncts()[0].len(), 2);
        assert_eq!(q.disjuncts()[1].len(), 1);
        assert_eq!(q.disjuncts()[2].len(), 2);
        assert_eq!(q.branch_offset(0), 0);
        assert_eq!(q.branch_offset(1), 2);
        assert_eq!(q.branch_offset(2), 3);
    }

    #[test]
    fn branches_share_targets_and_range() {
        let q = parse_dnf(
            "SELECT X.name, X.advisor.name FROM Student X WHERE X.age < 25 OR X.age > 60",
        )
        .unwrap();
        let branches = q.branches();
        assert_eq!(branches.len(), 2);
        for b in &branches {
            assert_eq!(b.range_class(), "Student");
            assert_eq!(b.targets().len(), 2);
        }
        assert_eq!(branches[0].predicates()[0].op(), CmpOp::Lt);
        assert_eq!(branches[1].predicates()[0].op(), CmpOp::Gt);
    }

    #[test]
    fn or_inside_a_string_literal_is_not_a_disjunction() {
        let q = parse_dnf("SELECT X.name FROM S X WHERE X.city = 'OR gate'").unwrap();
        assert_eq!(q.num_branches(), 1);
        assert_eq!(q.disjuncts()[0][0].literal(), &Value::text("OR gate"));
    }

    #[test]
    fn or_without_where_is_rejected() {
        let err = parse_dnf("SELECT X.name OR FROM S X").unwrap_err();
        assert!(matches!(err, QueryError::Unexpected { .. }));
    }

    #[test]
    fn display_round_trips() {
        let text = "SELECT X.name FROM S X WHERE X.a = 1 AND X.b = 2 OR X.c = 'x'";
        let q = parse_dnf(text).unwrap();
        assert_eq!(q.to_string(), text);
        assert_eq!(parse_dnf(&q.to_string()).unwrap(), q);
    }

    #[test]
    fn from_conjunctive_wraps() {
        let conj = crate::parse("SELECT X.a FROM C X WHERE X.b = 1").unwrap();
        let dnf = DnfQuery::from_conjunctive(conj.clone());
        assert_eq!(dnf.num_branches(), 1);
        assert_eq!(dnf.branch(0), conj);
    }
}
