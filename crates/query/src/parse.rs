//! Recursive-descent parser for the SQL/X query subset.

use crate::ast::{Predicate, Query};
use crate::error::QueryError;
use crate::lex::{tokenize, Token, TokenKind};
use fedoq_object::{CmpOp, Path, Value};

/// Parses a global query:
///
/// ```text
/// query  := SELECT targets FROM Ident Ident [WHERE pred (AND pred)*]
/// targets:= path ("," path)*
/// path   := Var "." Ident ("." Ident)*
/// pred   := path op literal
/// op     := = | != | <> | < | <= | > | >=
/// literal:= string | int | float | TRUE | FALSE
/// ```
///
/// # Errors
///
/// Returns a [`QueryError`] describing the first lexical or syntactic
/// problem, or [`QueryError::UnknownVariable`] when a path does not start
/// with the range variable.
///
/// # Example
///
/// ```
/// use fedoq_query::parse;
///
/// let q = parse(
///     "SELECT X.name, X.advisor.name FROM Student X \
///      WHERE X.address.city = 'Taipei' AND X.advisor.speciality = 'database'",
/// )?;
/// assert_eq!(q.targets().len(), 2);
/// assert_eq!(q.predicates().len(), 2);
/// # Ok::<(), fedoq_query::QueryError>(())
/// ```
pub fn parse(input: &str) -> Result<Query, QueryError> {
    let tokens = tokenize(input)?;
    Parser { tokens, pos: 0 }.query()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn unexpected(&self, expected: &'static str) -> QueryError {
        let t = self.peek();
        QueryError::Unexpected {
            position: t.position,
            expected,
            found: t.kind.to_string(),
        }
    }

    fn expect_keyword(&mut self, kw: &'static str) -> Result<(), QueryError> {
        match &self.peek().kind {
            TokenKind::Keyword(k) if *k == kw => {
                self.advance();
                Ok(())
            }
            _ => Err(self.unexpected(kw)),
        }
    }

    fn expect_ident(&mut self, what: &'static str) -> Result<String, QueryError> {
        match &self.peek().kind {
            TokenKind::Ident(_) => match self.advance().kind {
                TokenKind::Ident(s) => Ok(s),
                _ => unreachable!(),
            },
            _ => Err(self.unexpected(what)),
        }
    }

    fn query(&mut self) -> Result<Query, QueryError> {
        self.expect_keyword("SELECT")?;
        // Targets are parsed before FROM reveals the variable name, so
        // collect raw (var, path) pairs and validate after.
        let mut raw_targets = Vec::new();
        loop {
            raw_targets.push(self.var_path()?);
            if self.peek().kind == TokenKind::Comma {
                self.advance();
            } else {
                break;
            }
        }
        self.expect_keyword("FROM")?;
        let range_class = self.expect_ident("a range class name")?;
        let var = self.expect_ident("a range variable")?;

        let mut query = Query::with_var(range_class, var.clone());
        for (v, path) in raw_targets {
            if v != var {
                return Err(QueryError::UnknownVariable {
                    variable: v,
                    expected: var,
                });
            }
            query = query.predicate_free_target(path);
        }

        if let TokenKind::Keyword("WHERE") = self.peek().kind {
            self.advance();
            loop {
                let (v, path) = self.var_path()?;
                if v != var {
                    return Err(QueryError::UnknownVariable {
                        variable: v,
                        expected: var,
                    });
                }
                let op = self.cmp_op()?;
                let literal = self.literal()?;
                query = query.predicate(Predicate::new(path, op, literal));
                if let TokenKind::Keyword("AND") = self.peek().kind {
                    self.advance();
                } else {
                    break;
                }
            }
        }

        match self.peek().kind {
            TokenKind::Eof => {}
            _ => return Err(self.unexpected("end of query")),
        }
        if query.targets().is_empty() && query.predicates().is_empty() {
            return Err(QueryError::EmptyQuery);
        }
        Ok(query)
    }

    /// `Var . attr (. attr)*` — returns the variable and the path.
    fn var_path(&mut self) -> Result<(String, Path), QueryError> {
        let var = self.expect_ident("a path starting with the range variable")?;
        if self.peek().kind != TokenKind::Dot {
            return Err(self.unexpected("`.`"));
        }
        self.advance();
        let mut steps = vec![self.expect_ident("an attribute name")?];
        while self.peek().kind == TokenKind::Dot {
            self.advance();
            steps.push(self.expect_ident("an attribute name")?);
        }
        Ok((var, Path::new(steps)))
    }

    fn cmp_op(&mut self) -> Result<CmpOp, QueryError> {
        let op = match self.peek().kind {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            _ => return Err(self.unexpected("a comparison operator")),
        };
        self.advance();
        Ok(op)
    }

    fn literal(&mut self) -> Result<Value, QueryError> {
        let v = match &self.peek().kind {
            TokenKind::Str(s) => Value::Text(s.clone()),
            TokenKind::Int(v) => Value::Int(*v),
            TokenKind::Float(v) => Value::Float(*v),
            TokenKind::Keyword("TRUE") => Value::Bool(true),
            TokenKind::Keyword("FALSE") => Value::Bool(false),
            // Unquoted identifiers are accepted as string literals, as in
            // the paper's own `X.advisor.department.name=CS`.
            TokenKind::Ident(s) => Value::Text(s.clone()),
            _ => return Err(self.unexpected("a literal")),
        };
        self.advance();
        Ok(v)
    }
}

impl Query {
    /// Internal: appends a pre-parsed target path (used by the parser,
    /// which validates the variable separately).
    fn predicate_free_target(mut self, path: Path) -> Query {
        // Reconstruct through the public builder without re-parsing.
        let joined = path.steps().collect::<Vec<_>>().join(".");
        self = self.target(&joined);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_q1() {
        let q = parse(
            "Select X.name, X.advisor.name From Student X \
             Where X.address.city=Taipei and X.advisor.speciality=database \
             and X.advisor.department.name=CS",
        )
        .unwrap();
        assert_eq!(q.range_class(), "Student");
        assert_eq!(q.var(), "X");
        assert_eq!(q.targets().len(), 2);
        assert_eq!(q.predicates().len(), 3);
        assert_eq!(q.predicates()[0].path().to_string(), "address.city");
        assert_eq!(q.predicates()[0].literal(), &Value::text("Taipei"));
        assert_eq!(
            q.predicates()[2].path().to_string(),
            "advisor.department.name"
        );
    }

    #[test]
    fn parses_quoted_and_numeric_literals() {
        let q =
            parse("SELECT X.name FROM S X WHERE X.city = 'Taipei' AND X.age >= 30 AND X.gpa < 3.5")
                .unwrap();
        assert_eq!(q.predicates()[0].literal(), &Value::text("Taipei"));
        assert_eq!(q.predicates()[1].op(), CmpOp::Ge);
        assert_eq!(q.predicates()[1].literal(), &Value::Int(30));
        assert_eq!(q.predicates()[2].literal(), &Value::Float(3.5));
    }

    #[test]
    fn parses_boolean_literals() {
        let q = parse("SELECT X.a FROM C X WHERE X.flag = TRUE").unwrap();
        assert_eq!(q.predicates()[0].literal(), &Value::Bool(true));
    }

    #[test]
    fn query_without_where() {
        let q = parse("SELECT X.name FROM Student X").unwrap();
        assert!(q.predicates().is_empty());
        assert_eq!(q.targets().len(), 1);
    }

    #[test]
    fn wrong_variable_is_rejected() {
        let err = parse("SELECT Y.name FROM Student X").unwrap_err();
        assert_eq!(
            err,
            QueryError::UnknownVariable {
                variable: "Y".into(),
                expected: "X".into()
            }
        );
        let err = parse("SELECT X.name FROM Student X WHERE Z.age = 3").unwrap_err();
        assert!(matches!(err, QueryError::UnknownVariable { .. }));
    }

    #[test]
    fn syntax_errors_point_at_tokens() {
        let err = parse("SELECT X.name Student X").unwrap_err();
        assert!(matches!(
            err,
            QueryError::Unexpected {
                expected: "FROM",
                ..
            }
        ));
        let err = parse("SELECT FROM Student X").unwrap_err();
        assert!(matches!(err, QueryError::Unexpected { .. }));
        let err = parse("SELECT X.name FROM Student X WHERE X.age").unwrap_err();
        assert!(matches!(
            err,
            QueryError::Unexpected {
                expected: "a comparison operator",
                ..
            }
        ));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let err = parse("SELECT X.name FROM Student X WHERE X.age = 3 X").unwrap_err();
        assert!(matches!(
            err,
            QueryError::Unexpected {
                expected: "end of query",
                ..
            }
        ));
    }

    #[test]
    fn round_trips_through_display() {
        let text = "SELECT X.name, X.advisor.name FROM Student X \
                    WHERE X.address.city = 'Taipei' AND X.age >= 30";
        let q = parse(text).unwrap();
        assert_eq!(q.to_string(), text);
        // Reparsing the rendering yields the same AST.
        assert_eq!(parse(&q.to_string()).unwrap(), q);
    }

    #[test]
    fn hyphenated_attributes_parse() {
        let q = parse("SELECT X.s-no FROM Student X WHERE X.s-no = 804301").unwrap();
        assert_eq!(q.targets()[0].to_string(), "s-no");
    }
}
