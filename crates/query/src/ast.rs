//! The abstract syntax of global queries.
//!
//! A [`Query`] ranges over one global class with a variable, selects a
//! list of (possibly nested) target paths, and filters with conjunctive
//! predicates — the query class studied by the paper.

use fedoq_object::{CmpOp, Path, Value};
use std::fmt;

/// One conjunct: `path op literal`.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    path: Path,
    op: CmpOp,
    literal: Value,
}

impl Predicate {
    /// Creates a predicate.
    pub fn new(path: Path, op: CmpOp, literal: Value) -> Predicate {
        Predicate { path, op, literal }
    }

    /// The path expression relative to the range variable.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The comparison operator.
    pub fn op(&self) -> CmpOp {
        self.op
    }

    /// The literal compared against.
    pub fn literal(&self) -> &Value {
        &self.literal
    }

    /// `true` iff the path is nested (walks through branch classes).
    pub fn is_nested(&self) -> bool {
        self.path.len() > 1
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {}",
            self.path,
            self.op,
            display_literal(&self.literal)
        )
    }
}

/// A global query: `SELECT targets FROM RangeClass Var WHERE conjuncts`.
///
/// As in unquoted SQL, class/variable/attribute names must not collide
/// with the reserved words (`SELECT`, `FROM`, `WHERE`, `AND`, `OR`,
/// `TRUE`, `FALSE`); such names render to text the parser cannot read
/// back.
///
/// # Example
///
/// ```
/// use fedoq_object::{CmpOp, Value};
/// use fedoq_query::Query;
///
/// let q = Query::new("Student")
///     .target("name")
///     .target("advisor.name")
///     .filter("address.city", CmpOp::Eq, Value::text("Taipei"));
/// assert_eq!(
///     q.to_string(),
///     "SELECT X.name, X.advisor.name FROM Student X WHERE X.address.city = 'Taipei'"
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    range_class: String,
    var: String,
    targets: Vec<Path>,
    predicates: Vec<Predicate>,
}

impl Query {
    /// Creates an empty query over `range_class` with the conventional
    /// variable `X`.
    pub fn new(range_class: impl Into<String>) -> Query {
        Query::with_var(range_class, "X")
    }

    /// Creates an empty query with an explicit range variable.
    pub fn with_var(range_class: impl Into<String>, var: impl Into<String>) -> Query {
        Query {
            range_class: range_class.into(),
            var: var.into(),
            targets: Vec::new(),
            predicates: Vec::new(),
        }
    }

    /// Adds a target path (chainable).
    ///
    /// # Panics
    ///
    /// Panics if `path` is not a valid dotted path.
    pub fn target(mut self, path: &str) -> Query {
        self.targets
            .push(path.parse().expect("invalid target path"));
        self
    }

    /// Adds a conjunct `path op literal` (chainable).
    ///
    /// # Panics
    ///
    /// Panics if `path` is not a valid dotted path.
    pub fn filter(mut self, path: &str, op: CmpOp, literal: Value) -> Query {
        self.predicates.push(Predicate::new(
            path.parse().expect("invalid predicate path"),
            op,
            literal,
        ));
        self
    }

    /// Adds an already-built predicate (chainable).
    pub fn predicate(mut self, pred: Predicate) -> Query {
        self.predicates.push(pred);
        self
    }

    /// The global range class name.
    pub fn range_class(&self) -> &str {
        &self.range_class
    }

    /// The range variable.
    pub fn var(&self) -> &str {
        &self.var
    }

    /// The target paths.
    pub fn targets(&self) -> &[Path] {
        &self.targets
    }

    /// The conjunctive predicates.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.targets.is_empty() {
            write!(f, "{}", self.var)?;
        }
        for (i, t) in self.targets.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{}.{}", self.var, t)?;
        }
        write!(f, " FROM {} {}", self.range_class, self.var)?;
        for (i, p) in self.predicates.iter().enumerate() {
            f.write_str(if i == 0 { " WHERE " } else { " AND " })?;
            write!(
                f,
                "{}.{} {} {}",
                self.var,
                p.path(),
                p.op(),
                display_literal(p.literal())
            )?;
        }
        Ok(())
    }
}

/// Renders a literal in SQL syntax (single-quoted strings).
fn display_literal(v: &Value) -> String {
    match v {
        Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_targets_and_predicates() {
        let q = Query::new("Student")
            .target("name")
            .filter("age", CmpOp::Ge, Value::Int(30))
            .filter("advisor.speciality", CmpOp::Eq, Value::text("database"));
        assert_eq!(q.range_class(), "Student");
        assert_eq!(q.var(), "X");
        assert_eq!(q.targets().len(), 1);
        assert_eq!(q.predicates().len(), 2);
        assert!(!q.predicates()[0].is_nested());
        assert!(q.predicates()[1].is_nested());
    }

    #[test]
    fn display_is_sqlx_like() {
        let q = Query::with_var("Teacher", "T").target("name").filter(
            "department.name",
            CmpOp::Ne,
            Value::text("CS"),
        );
        assert_eq!(
            q.to_string(),
            "SELECT T.name FROM Teacher T WHERE T.department.name != 'CS'"
        );
    }

    #[test]
    fn display_without_targets_selects_variable() {
        let q = Query::new("Student").filter("age", CmpOp::Lt, Value::Int(30));
        assert_eq!(q.to_string(), "SELECT X FROM Student X WHERE X.age < 30");
    }

    #[test]
    fn display_escapes_quotes_in_literals() {
        let q = Query::new("C").filter("name", CmpOp::Eq, Value::text("O'Brien"));
        assert!(q.to_string().contains("'O''Brien'"));
    }

    #[test]
    fn predicate_accessors() {
        let p = Predicate::new("a.b".parse().unwrap(), CmpOp::Le, Value::Int(3));
        assert_eq!(p.path().to_string(), "a.b");
        assert_eq!(p.op(), CmpOp::Le);
        assert_eq!(p.literal(), &Value::Int(3));
        assert_eq!(p.to_string(), "a.b <= 3");
    }
}
