//! Error type for parsing and binding queries.

use std::fmt;

/// Errors raised by the query lexer, parser, and binder.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QueryError {
    /// The lexer met a character it cannot tokenize.
    UnexpectedChar { position: usize, ch: char },
    /// A string literal was not terminated.
    UnterminatedString { position: usize },
    /// A numeric literal did not parse.
    BadNumber { position: usize, text: String },
    /// The parser expected something else at this token.
    Unexpected {
        position: usize,
        expected: &'static str,
        found: String,
    },
    /// A select/where path used a variable other than the range variable.
    UnknownVariable { variable: String, expected: String },
    /// The query's range class is not in the global schema.
    UnknownClass(String),
    /// A path step names an attribute the global class does not have.
    UnknownAttribute { class: String, attr: String },
    /// A path steps through a primitive attribute.
    NotComplex { class: String, attr: String },
    /// A predicate's terminal attribute is complex: objects cannot be
    /// compared with literals.
    ComplexTerminal { class: String, attr: String },
    /// A predicate compares an attribute with a literal of an
    /// incompatible kind (e.g. a text attribute against an integer); the
    /// comparison could never be true.
    LiteralTypeMismatch {
        class: String,
        attr: String,
        literal: String,
    },
    /// The query has no predicates and no targets.
    EmptyQuery,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnexpectedChar { position, ch } => {
                write!(f, "unexpected character {ch:?} at byte {position}")
            }
            QueryError::UnterminatedString { position } => {
                write!(f, "unterminated string literal starting at byte {position}")
            }
            QueryError::BadNumber { position, text } => {
                write!(f, "invalid numeric literal {text:?} at byte {position}")
            }
            QueryError::Unexpected {
                position,
                expected,
                found,
            } => {
                write!(f, "expected {expected} at byte {position}, found {found}")
            }
            QueryError::UnknownVariable { variable, expected } => {
                write!(
                    f,
                    "unknown variable {variable:?}; the range variable is {expected:?}"
                )
            }
            QueryError::UnknownClass(c) => write!(f, "unknown global class {c:?}"),
            QueryError::UnknownAttribute { class, attr } => {
                write!(f, "global class {class:?} has no attribute {attr:?}")
            }
            QueryError::NotComplex { class, attr } => {
                write!(
                    f,
                    "attribute {class}.{attr} is primitive and cannot be navigated"
                )
            }
            QueryError::ComplexTerminal { class, attr } => {
                write!(
                    f,
                    "predicate compares complex attribute {class}.{attr} with a literal"
                )
            }
            QueryError::LiteralTypeMismatch {
                class,
                attr,
                literal,
            } => {
                write!(
                    f,
                    "attribute {class}.{attr} cannot be compared with literal {literal}"
                )
            }
            QueryError::EmptyQuery => write!(f, "query selects nothing and filters nothing"),
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_positions_and_names() {
        let e = QueryError::Unexpected {
            position: 7,
            expected: "FROM",
            found: "`WHERE`".into(),
        };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains("FROM"));
        let e = QueryError::UnknownAttribute {
            class: "Student".into(),
            attr: "phone".into(),
        };
        assert!(e.to_string().contains("phone"));
    }

    #[test]
    fn is_std_error() {
        fn check<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        check(QueryError::EmptyQuery);
    }
}
