//! Binding: resolving a parsed query against the global schema.
//!
//! Binding turns attribute names into global class/slot chains, checks
//! that non-terminal steps are complex, and rejects predicates whose
//! terminal attribute is complex (objects cannot be compared to literals).

use crate::ast::Query;
use crate::error::QueryError;
use fedoq_object::{CmpOp, GlobalClassId, Path, Value, ValueKind};
use fedoq_schema::{GlobalAttrType, GlobalSchema};
use fedoq_store::PrimitiveType;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Identifier of a predicate within one bound query (its conjunct index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredId(usize);

impl PredId {
    /// Creates a predicate id from its conjunct index.
    pub fn new(index: usize) -> PredId {
        PredId(index)
    }

    /// The conjunct index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A path resolved against the global schema: for each step, the global
/// class it reads from and the attribute slot it reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundPath {
    path: Path,
    classes: Vec<GlobalClassId>,
    slots: Vec<usize>,
    terminal_domain: Option<GlobalClassId>,
}

impl BoundPath {
    /// The source path expression.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `false` — bound paths are non-empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The global class step `i` reads from (`class(0)` is the range class).
    pub fn class(&self, i: usize) -> GlobalClassId {
        self.classes[i]
    }

    /// The global attribute slot step `i` reads.
    pub fn slot(&self, i: usize) -> usize {
        self.slots[i]
    }

    /// `true` iff the terminal attribute is complex (allowed for targets
    /// only).
    pub fn terminal_complex(&self) -> bool {
        self.terminal_domain.is_some()
    }

    /// The global domain class of the terminal attribute, if complex.
    pub fn terminal_domain(&self) -> Option<GlobalClassId> {
        self.terminal_domain
    }

    /// `(class, slot)` pairs for every step.
    pub fn steps(&self) -> impl Iterator<Item = (GlobalClassId, usize)> + '_ {
        self.classes.iter().copied().zip(self.slots.iter().copied())
    }
}

/// A bound conjunct.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundPredicate {
    id: PredId,
    path: BoundPath,
    op: CmpOp,
    literal: Value,
}

impl BoundPredicate {
    /// The predicate's id (conjunct index).
    pub fn id(&self) -> PredId {
        self.id
    }

    /// The bound path.
    pub fn path(&self) -> &BoundPath {
        &self.path
    }

    /// The comparison operator.
    pub fn op(&self) -> CmpOp {
        self.op
    }

    /// The literal.
    pub fn literal(&self) -> &Value {
        &self.literal
    }
}

impl fmt::Display for BoundPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.path.path(), self.op, self.literal)
    }
}

/// A query resolved against the global schema.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundQuery {
    source: Query,
    range: GlobalClassId,
    targets: Vec<BoundPath>,
    predicates: Vec<BoundPredicate>,
}

impl BoundQuery {
    /// The original query.
    pub fn source(&self) -> &Query {
        &self.source
    }

    /// The global range class.
    pub fn range(&self) -> GlobalClassId {
        self.range
    }

    /// The bound target paths.
    pub fn targets(&self) -> &[BoundPath] {
        &self.targets
    }

    /// The bound predicates in conjunct order.
    pub fn predicates(&self) -> &[BoundPredicate] {
        &self.predicates
    }

    /// The predicate with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn predicate(&self, id: PredId) -> &BoundPredicate {
        &self.predicates[id.index()]
    }

    /// All global classes the query touches (range first, then branch
    /// classes in first-use order).
    pub fn involved_classes(&self) -> Vec<GlobalClassId> {
        let mut out = vec![self.range];
        let mut push = |c: GlobalClassId| {
            if !out.contains(&c) {
                out.push(c);
            }
        };
        for p in &self.predicates {
            for (class, _) in p.path().steps() {
                push(class);
            }
            if let Some(domain) = p.path().terminal_domain() {
                push(domain);
            }
        }
        for t in &self.targets {
            for (class, _) in t.steps() {
                push(class);
            }
            if let Some(domain) = t.terminal_domain() {
                push(domain);
            }
        }
        out
    }

    /// The set of global classes the query touches, deduplicated — the
    /// subscription *footprint* the live reactor's dependency index is
    /// keyed on: a logged change can only affect this query's answer if
    /// its class is in (or unresolvable against) this set.
    pub fn class_footprint(&self) -> BTreeSet<GlobalClassId> {
        self.involved_classes().into_iter().collect()
    }

    /// Per global class, the attribute slots the query reads — the
    /// projection the centralized strategy ships. Complex slots used for
    /// navigation are included.
    pub fn involved_slots(&self) -> HashMap<GlobalClassId, BTreeSet<usize>> {
        let mut out: HashMap<GlobalClassId, BTreeSet<usize>> = HashMap::new();
        for path in self
            .targets
            .iter()
            .chain(self.predicates.iter().map(|p| &p.path))
        {
            for (class, slot) in path.steps() {
                out.entry(class).or_default().insert(slot);
            }
        }
        out
    }
}

/// Resolves `query` against `schema`.
///
/// # Errors
///
/// * [`QueryError::UnknownClass`] — range class not integrated;
/// * [`QueryError::UnknownAttribute`] — a step names no global attribute;
/// * [`QueryError::NotComplex`] — a non-terminal step is primitive;
/// * [`QueryError::ComplexTerminal`] — a predicate compares an object.
///
/// # Example
///
/// See the crate-level documentation of [`crate`].
pub fn bind(query: &Query, schema: &GlobalSchema) -> Result<BoundQuery, QueryError> {
    let range = schema
        .class_id(query.range_class())
        .ok_or_else(|| QueryError::UnknownClass(query.range_class().to_owned()))?;
    let mut targets = Vec::with_capacity(query.targets().len());
    for t in query.targets() {
        targets.push(bind_path(t, range, schema, true)?);
    }
    let mut predicates = Vec::with_capacity(query.predicates().len());
    for (i, p) in query.predicates().iter().enumerate() {
        let path = bind_path(p.path(), range, schema, false)?;
        check_literal(&path, p.literal(), schema)?;
        predicates.push(BoundPredicate {
            id: PredId::new(i),
            path,
            op: p.op(),
            literal: p.literal().clone(),
        });
    }
    Ok(BoundQuery {
        source: query.clone(),
        range,
        targets,
        predicates,
    })
}

/// Rejects comparisons that could never be decided: the terminal
/// attribute's primitive type must be comparable with the literal's kind
/// (ints and floats interchange; everything else matches exactly).
fn check_literal(
    path: &BoundPath,
    literal: &Value,
    schema: &GlobalSchema,
) -> Result<(), QueryError> {
    let last = path.len() - 1;
    let class = schema.class(path.class(last));
    let GlobalAttrType::Primitive(ty) = class.attr(path.slot(last)).ty() else {
        return Ok(()); // complex terminals are rejected separately
    };
    let compatible = matches!(
        (ty, literal.kind()),
        (
            PrimitiveType::Int | PrimitiveType::Float,
            ValueKind::Int | ValueKind::Float
        ) | (PrimitiveType::Text, ValueKind::Text)
            | (PrimitiveType::Bool, ValueKind::Bool)
    );
    if compatible {
        Ok(())
    } else {
        Err(QueryError::LiteralTypeMismatch {
            class: class.name().to_owned(),
            attr: class.attr(path.slot(last)).name().to_owned(),
            literal: literal.to_string(),
        })
    }
}

fn bind_path(
    path: &Path,
    range: GlobalClassId,
    schema: &GlobalSchema,
    allow_complex_terminal: bool,
) -> Result<BoundPath, QueryError> {
    let mut classes = Vec::with_capacity(path.len());
    let mut slots = Vec::with_capacity(path.len());
    let mut class = range;
    let n = path.len();
    let mut terminal_domain = None;
    for (i, attr) in path.steps().enumerate() {
        let def = schema.class(class);
        let slot = def
            .attr_index(attr)
            .ok_or_else(|| QueryError::UnknownAttribute {
                class: def.name().to_owned(),
                attr: attr.to_owned(),
            })?;
        classes.push(class);
        slots.push(slot);
        let ty = def.attr(slot).ty();
        if i + 1 < n {
            match ty {
                GlobalAttrType::Complex(domain) => class = domain,
                GlobalAttrType::Primitive(_) => {
                    return Err(QueryError::NotComplex {
                        class: def.name().to_owned(),
                        attr: attr.to_owned(),
                    })
                }
            }
        } else if let GlobalAttrType::Complex(domain) = ty {
            if !allow_complex_terminal {
                return Err(QueryError::ComplexTerminal {
                    class: def.name().to_owned(),
                    attr: attr.to_owned(),
                });
            }
            terminal_domain = Some(domain);
        }
    }
    Ok(BoundPath {
        path: path.clone(),
        classes,
        slots,
        terminal_domain,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use fedoq_object::DbId;
    use fedoq_schema::{integrate, Correspondences};
    use fedoq_store::{AttrType, ClassDef, ComponentSchema};

    fn global() -> GlobalSchema {
        let db0 = ComponentSchema::new(vec![
            ClassDef::new("Department").attr("name", AttrType::text()),
            ClassDef::new("Teacher")
                .attr("name", AttrType::text())
                .attr("department", AttrType::complex("Department")),
            ClassDef::new("Student")
                .attr("s-no", AttrType::int())
                .attr("name", AttrType::text())
                .attr("age", AttrType::int())
                .attr("advisor", AttrType::complex("Teacher")),
        ])
        .unwrap();
        let db1 = ComponentSchema::new(vec![
            ClassDef::new("Address").attr("city", AttrType::text()),
            ClassDef::new("Teacher")
                .attr("name", AttrType::text())
                .attr("speciality", AttrType::text()),
            ClassDef::new("Student")
                .attr("s-no", AttrType::int())
                .attr("name", AttrType::text())
                .attr("address", AttrType::complex("Address"))
                .attr("advisor", AttrType::complex("Teacher")),
        ])
        .unwrap();
        integrate(
            &[(DbId::new(0), &db0), (DbId::new(1), &db1)],
            &Correspondences::new(),
        )
        .unwrap()
    }

    #[test]
    fn binds_nested_paths_with_class_chain() {
        let g = global();
        let q =
            parse("SELECT X.name FROM Student X WHERE X.advisor.department.name = 'CS'").unwrap();
        let b = bind(&q, &g).unwrap();
        assert_eq!(b.range(), g.class_id("Student").unwrap());
        let p = &b.predicates()[0];
        assert_eq!(p.id(), PredId::new(0));
        assert_eq!(p.path().len(), 3);
        assert_eq!(p.path().class(0), g.class_id("Student").unwrap());
        assert_eq!(p.path().class(1), g.class_id("Teacher").unwrap());
        assert_eq!(p.path().class(2), g.class_id("Department").unwrap());
    }

    #[test]
    fn unknown_class_and_attribute() {
        let g = global();
        let q = parse("SELECT X.name FROM Course X").unwrap();
        assert_eq!(
            bind(&q, &g).unwrap_err(),
            QueryError::UnknownClass("Course".into())
        );
        let q = parse("SELECT X.phone FROM Student X").unwrap();
        assert!(matches!(
            bind(&q, &g).unwrap_err(),
            QueryError::UnknownAttribute { .. }
        ));
        let q = parse("SELECT X.name FROM Student X WHERE X.advisor.rank = 3").unwrap();
        assert!(matches!(
            bind(&q, &g).unwrap_err(),
            QueryError::UnknownAttribute { .. }
        ));
    }

    #[test]
    fn navigation_through_primitive_rejected() {
        let g = global();
        let q = parse("SELECT X.age.years FROM Student X").unwrap();
        assert!(matches!(
            bind(&q, &g).unwrap_err(),
            QueryError::NotComplex { .. }
        ));
    }

    #[test]
    fn complex_terminal_allowed_in_targets_only() {
        let g = global();
        let q = parse("SELECT X.advisor FROM Student X").unwrap();
        let b = bind(&q, &g).unwrap();
        assert!(b.targets()[0].terminal_complex());
        let q = parse("SELECT X.name FROM Student X WHERE X.advisor = 'Kelly'").unwrap();
        assert!(matches!(
            bind(&q, &g).unwrap_err(),
            QueryError::ComplexTerminal { .. }
        ));
    }

    #[test]
    fn involved_classes_and_slots() {
        let g = global();
        let q = parse(
            "SELECT X.name, X.advisor.name FROM Student X \
             WHERE X.address.city = 'Taipei' AND X.advisor.speciality = 'database' \
             AND X.advisor.department.name = 'CS'",
        )
        .unwrap();
        let b = bind(&q, &g).unwrap();
        let classes = b.involved_classes();
        let expect: Vec<_> = ["Student", "Address", "Teacher", "Department"]
            .iter()
            .map(|n| g.class_id(n).unwrap())
            .collect();
        assert_eq!(classes.len(), 4);
        for c in expect {
            assert!(classes.contains(&c));
        }
        assert_eq!(classes[0], g.class_id("Student").unwrap());

        let slots = b.involved_slots();
        let student = g.class_by_name("Student").unwrap();
        let sset = &slots[&g.class_id("Student").unwrap()];
        assert!(sset.contains(&student.attr_index("name").unwrap()));
        assert!(sset.contains(&student.attr_index("advisor").unwrap()));
        assert!(sset.contains(&student.attr_index("address").unwrap()));
        assert!(!sset.contains(&student.attr_index("s-no").unwrap()));
    }

    #[test]
    fn incompatible_literals_are_rejected_at_bind_time() {
        let g = global();
        // Text attribute against an integer literal.
        let q = parse("SELECT X.name FROM Student X WHERE X.name = 7").unwrap();
        assert!(matches!(
            bind(&q, &g).unwrap_err(),
            QueryError::LiteralTypeMismatch { .. }
        ));
        // Int attribute against a string literal.
        let q = parse("SELECT X.name FROM Student X WHERE X.age = 'old'").unwrap();
        assert!(matches!(
            bind(&q, &g).unwrap_err(),
            QueryError::LiteralTypeMismatch { .. }
        ));
        // Int against float is fine (numeric coercion).
        let q = parse("SELECT X.name FROM Student X WHERE X.age > 20.5").unwrap();
        assert!(bind(&q, &g).is_ok());
    }

    #[test]
    fn predicate_lookup_by_id() {
        let g = global();
        let q = parse("SELECT X.name FROM Student X WHERE X.age > 20 AND X.name != 'Bob'").unwrap();
        let b = bind(&q, &g).unwrap();
        assert_eq!(b.predicate(PredId::new(1)).literal(), &Value::text("Bob"));
        assert_eq!(b.predicates().len(), 2);
        assert_eq!(b.source().predicates().len(), 2);
    }
}
