//! Attribute values, including nulls and object references.
//!
//! A [`Value`] is the content of one attribute slot of an object.
//! Primitive attributes hold [`Value::Int`], [`Value::Float`],
//! [`Value::Text`], or [`Value::Bool`]; complex attributes hold a reference
//! to another object, either by local oid ([`Value::Ref`]) inside a
//! component database or by global oid ([`Value::GRef`]) after integration
//! (the centralized strategy transforms LOids into GOids when it
//! materializes global classes). [`Value::Null`] represents a null value —
//! one of the paper's two sources of missing data. [`Value::List`] supports
//! the multi-valued-attribute extension sketched in the paper's conclusion.

use crate::id::{GOid, LOid};
use crate::truth::Truth;
use std::cmp::Ordering;
use std::fmt;

/// Comparison operators usable in predicates (`=`, `!=`, `<`, `<=`, `>`, `>=`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the operator to an [`Ordering`].
    pub fn eval(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// The SQL spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// Whether this operator is an equality test (usable with signatures).
    pub fn is_equality(self) -> bool {
        self == CmpOp::Eq
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// The dynamic kind of a [`Value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueKind {
    /// The null marker.
    Null,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Text,
    /// Boolean.
    Bool,
    /// Local object reference.
    Ref,
    /// Global object reference.
    GRef,
    /// Multi-valued attribute.
    List,
}

/// The value stored in one attribute slot of an object.
///
/// # Example
///
/// ```
/// use fedoq_object::{CmpOp, Truth, Value};
///
/// let age = Value::Int(31);
/// assert_eq!(age.compare(CmpOp::Ge, &Value::Int(30)), Truth::True);
/// assert_eq!(Value::Null.compare(CmpOp::Ge, &Value::Int(30)), Truth::Unknown);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// The null marker: the attribute exists but its value is missing.
    #[default]
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Text(String),
    /// Boolean.
    Bool(bool),
    /// Reference to another object in the *same* component database.
    Ref(LOid),
    /// Reference to a global object (used in materialized global classes).
    GRef(GOid),
    /// Multi-valued attribute (extension; see the paper's conclusion).
    List(Vec<Value>),
}

impl Value {
    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Returns the dynamic kind of this value.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Null => ValueKind::Null,
            Value::Int(_) => ValueKind::Int,
            Value::Float(_) => ValueKind::Float,
            Value::Text(_) => ValueKind::Text,
            Value::Bool(_) => ValueKind::Bool,
            Value::Ref(_) => ValueKind::Ref,
            Value::GRef(_) => ValueKind::GRef,
            Value::List(_) => ValueKind::List,
        }
    }

    /// `true` iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the referenced local oid, if this is a [`Value::Ref`].
    pub fn as_ref_loid(&self) -> Option<LOid> {
        match self {
            Value::Ref(l) => Some(*l),
            _ => None,
        }
    }

    /// Returns the referenced global oid, if this is a [`Value::GRef`].
    pub fn as_gref(&self) -> Option<GOid> {
        match self {
            Value::GRef(g) => Some(*g),
            _ => None,
        }
    }

    /// Three-valued ordering between two values.
    ///
    /// Returns `None` when either side is null or the kinds are not
    /// comparable (e.g. text against int). Ints and floats compare
    /// numerically. References compare by identity only through
    /// [`Value::compare`] with `=`/`!=`.
    pub fn partial_order(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Text(a), Text(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Ref(a), Ref(b)) => Some(a.cmp(b)),
            (GRef(a), GRef(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Compares two values under three-valued semantics.
    ///
    /// Any comparison involving a null yields [`Truth::Unknown`] — this is
    /// exactly what turns objects with missing data into maybe results.
    /// Incomparable kinds also yield `Unknown` (a heterogeneous federation
    /// cannot always reconcile domains; see DeMichiel's partial values).
    /// Lists compare with existential semantics for `=` (any element equal)
    /// and universal semantics for `!=`.
    pub fn compare(&self, op: CmpOp, other: &Value) -> Truth {
        use Value::*;
        if self.is_null() || other.is_null() {
            return Truth::Unknown;
        }
        if let List(items) = self {
            return match op {
                CmpOp::Eq => Truth::any(items.iter().map(|v| v.compare(CmpOp::Eq, other))),
                CmpOp::Ne => Truth::all(items.iter().map(|v| v.compare(CmpOp::Ne, other))),
                _ => Truth::Unknown,
            };
        }
        if let List(_) = other {
            let flipped = match op {
                CmpOp::Eq => CmpOp::Eq,
                CmpOp::Ne => CmpOp::Ne,
                _ => return Truth::Unknown,
            };
            return other.compare(flipped, self);
        }
        match self.partial_order(other) {
            Some(ord) => Truth::from(op.eval(ord)),
            None => match op {
                // Distinct kinds are never equal, but ordering them is
                // undefined.
                CmpOp::Eq if self.kind() != other.kind() => Truth::False,
                CmpOp::Ne if self.kind() != other.kind() => Truth::True,
                _ => Truth::Unknown,
            },
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<LOid> for Value {
    fn from(v: LOid) -> Self {
        Value::Ref(v)
    }
}

impl From<GOid> for Value {
    fn from(v: GOid) -> Self {
        Value::GRef(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("-"),
            Value::Int(v) => write!(f, "{v}"),
            // `{:?}` keeps a decimal point ("2.0", not "2"), so floats
            // remain distinguishable from ints when rendered into queries.
            Value::Float(v) => write!(f, "{v:?}"),
            Value::Text(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Ref(l) => write!(f, "{l}"),
            Value::GRef(g) => write!(f, "{g}"),
            Value::List(items) => {
                f.write_str("{")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::DbId;
    use proptest::prelude::*;

    #[test]
    fn null_comparisons_are_unknown() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(Value::Null.compare(op, &Value::Int(1)), Truth::Unknown);
            assert_eq!(Value::Int(1).compare(op, &Value::Null), Truth::Unknown);
            assert_eq!(Value::Null.compare(op, &Value::Null), Truth::Unknown);
        }
    }

    #[test]
    fn integer_comparisons() {
        assert_eq!(
            Value::Int(2).compare(CmpOp::Lt, &Value::Int(3)),
            Truth::True
        );
        assert_eq!(
            Value::Int(3).compare(CmpOp::Lt, &Value::Int(3)),
            Truth::False
        );
        assert_eq!(
            Value::Int(3).compare(CmpOp::Le, &Value::Int(3)),
            Truth::True
        );
        assert_eq!(
            Value::Int(4).compare(CmpOp::Ne, &Value::Int(3)),
            Truth::True
        );
    }

    #[test]
    fn mixed_numeric_comparison_coerces() {
        assert_eq!(
            Value::Int(2).compare(CmpOp::Lt, &Value::Float(2.5)),
            Truth::True
        );
        assert_eq!(
            Value::Float(2.5).compare(CmpOp::Gt, &Value::Int(2)),
            Truth::True
        );
        assert_eq!(
            Value::Float(2.0).compare(CmpOp::Eq, &Value::Int(2)),
            Truth::True
        );
    }

    #[test]
    fn text_comparison_is_lexicographic() {
        assert_eq!(
            Value::text("Taipei").compare(CmpOp::Eq, &Value::text("Taipei")),
            Truth::True
        );
        assert_eq!(
            Value::text("HsinChu").compare(CmpOp::Lt, &Value::text("Taipei")),
            Truth::True
        );
    }

    #[test]
    fn cross_kind_equality_is_false_ordering_unknown() {
        assert_eq!(
            Value::text("1").compare(CmpOp::Eq, &Value::Int(1)),
            Truth::False
        );
        assert_eq!(
            Value::text("1").compare(CmpOp::Ne, &Value::Int(1)),
            Truth::True
        );
        assert_eq!(
            Value::text("1").compare(CmpOp::Lt, &Value::Int(1)),
            Truth::Unknown
        );
    }

    #[test]
    fn reference_identity_comparison() {
        let a = LOid::new(DbId::new(0), 1);
        let b = LOid::new(DbId::new(0), 2);
        assert_eq!(
            Value::Ref(a).compare(CmpOp::Eq, &Value::Ref(a)),
            Truth::True
        );
        assert_eq!(
            Value::Ref(a).compare(CmpOp::Eq, &Value::Ref(b)),
            Truth::False
        );
        assert_eq!(
            Value::GRef(GOid::new(1)).compare(CmpOp::Ne, &Value::GRef(GOid::new(2))),
            Truth::True
        );
    }

    #[test]
    fn list_equality_is_existential() {
        let multi = Value::List(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(multi.compare(CmpOp::Eq, &Value::Int(2)), Truth::True);
        assert_eq!(multi.compare(CmpOp::Eq, &Value::Int(5)), Truth::False);
        assert_eq!(multi.compare(CmpOp::Ne, &Value::Int(5)), Truth::True);
        assert_eq!(Value::Int(2).compare(CmpOp::Eq, &multi), Truth::True);
        // A null element makes a failed membership test unknown.
        let with_null = Value::List(vec![Value::Int(1), Value::Null]);
        assert_eq!(with_null.compare(CmpOp::Eq, &Value::Int(5)), Truth::Unknown);
    }

    #[test]
    fn list_ordering_is_unknown() {
        let multi = Value::List(vec![Value::Int(1)]);
        assert_eq!(multi.compare(CmpOp::Lt, &Value::Int(5)), Truth::Unknown);
        assert_eq!(Value::Int(5).compare(CmpOp::Gt, &multi), Truth::Unknown);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::text("x"));
        let l = LOid::new(DbId::new(1), 7);
        assert_eq!(Value::from(l), Value::Ref(l));
        assert_eq!(Value::from(GOid::new(7)), Value::GRef(GOid::new(7)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "-");
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::text("CS").to_string(), "CS");
        assert_eq!(
            Value::List(vec![Value::Int(1), Value::Int(2)]).to_string(),
            "{1, 2}"
        );
    }

    #[test]
    fn default_is_null() {
        assert!(Value::default().is_null());
    }

    fn arb_scalar() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<i64>().prop_map(Value::Int),
            (-1.0e6..1.0e6f64).prop_map(Value::Float),
            "[a-z]{0,6}".prop_map(Value::Text),
            any::<bool>().prop_map(Value::Bool),
        ]
    }

    proptest! {
        #[test]
        fn eq_is_reflexive_unless_null(v in arb_scalar()) {
            let expected = if v.is_null() { Truth::Unknown } else { Truth::True };
            prop_assert_eq!(v.compare(CmpOp::Eq, &v), expected);
        }

        #[test]
        fn ne_is_negation_of_eq(a in arb_scalar(), b in arb_scalar()) {
            prop_assert_eq!(a.compare(CmpOp::Ne, &b), a.compare(CmpOp::Eq, &b).negate());
        }

        #[test]
        fn lt_gt_are_converses(a in arb_scalar(), b in arb_scalar()) {
            prop_assert_eq!(a.compare(CmpOp::Lt, &b), b.compare(CmpOp::Gt, &a));
            prop_assert_eq!(a.compare(CmpOp::Le, &b), b.compare(CmpOp::Ge, &a));
        }

        #[test]
        fn le_is_lt_or_eq(a in arb_scalar(), b in arb_scalar()) {
            let le = a.compare(CmpOp::Le, &b);
            let lt_or_eq = a.compare(CmpOp::Lt, &b).or(a.compare(CmpOp::Eq, &b));
            prop_assert_eq!(le, lt_or_eq);
        }
    }
}
