//! Kleene three-valued logic.
//!
//! Predicates over missing data cannot always be decided: comparing a null
//! (or a value reached through a missing attribute) yields [`Truth::Unknown`].
//! A conjunctive query then classifies each object as
//!
//! * **certain** — every predicate is [`Truth::True`];
//! * **eliminated** — at least one predicate is [`Truth::False`];
//! * **maybe** — no predicate is false but at least one is unknown.
//!
//! This module implements the strong Kleene connectives used throughout the
//! paper (following Codd's extension of the relational model with maybe
//! results).

use std::fmt;
use std::ops::{BitAnd, BitOr, Not};

/// A three-valued logic value: `True`, `False`, or `Unknown`.
///
/// # Example
///
/// ```
/// use fedoq_object::Truth;
///
/// assert_eq!(Truth::True.and(Truth::Unknown), Truth::Unknown);
/// assert_eq!(Truth::False.or(Truth::Unknown), Truth::Unknown);
/// assert_eq!(Truth::Unknown.negate(), Truth::Unknown);
/// assert_eq!(Truth::all([Truth::True, Truth::True]), Truth::True);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Truth {
    /// The predicate is definitely false.
    False,
    /// The predicate cannot be decided because of missing data.
    #[default]
    Unknown,
    /// The predicate is definitely true.
    True,
}

impl Truth {
    /// Strong Kleene conjunction.
    pub fn and(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Unknown,
        }
    }

    /// Strong Kleene disjunction.
    pub fn or(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (True, _) | (_, True) => True,
            (False, False) => False,
            _ => Unknown,
        }
    }

    /// Kleene negation (`Unknown` stays `Unknown`).
    ///
    /// Named `negate` because [`Not::not`] is also implemented and `!t`
    /// reads naturally at call sites.
    pub fn negate(self) -> Truth {
        use Truth::*;
        match self {
            True => False,
            False => True,
            Unknown => Unknown,
        }
    }

    /// Conjunction of an iterator of truths (`True` for an empty iterator,
    /// matching the identity of `and`).
    pub fn all<I: IntoIterator<Item = Truth>>(iter: I) -> Truth {
        iter.into_iter().fold(Truth::True, Truth::and)
    }

    /// Disjunction of an iterator of truths (`False` for an empty iterator).
    pub fn any<I: IntoIterator<Item = Truth>>(iter: I) -> Truth {
        iter.into_iter().fold(Truth::False, Truth::or)
    }

    /// `true` iff this is [`Truth::True`].
    pub fn is_true(self) -> bool {
        self == Truth::True
    }

    /// `true` iff this is [`Truth::False`].
    pub fn is_false(self) -> bool {
        self == Truth::False
    }

    /// `true` iff this is [`Truth::Unknown`].
    pub fn is_unknown(self) -> bool {
        self == Truth::Unknown
    }

    /// Converts to `Some(bool)` when decided, `None` when unknown.
    pub fn decided(self) -> Option<bool> {
        match self {
            Truth::True => Some(true),
            Truth::False => Some(false),
            Truth::Unknown => None,
        }
    }
}

impl From<bool> for Truth {
    fn from(b: bool) -> Self {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }
}

impl BitAnd for Truth {
    type Output = Truth;
    fn bitand(self, rhs: Truth) -> Truth {
        self.and(rhs)
    }
}

impl BitOr for Truth {
    type Output = Truth;
    fn bitor(self, rhs: Truth) -> Truth {
        self.or(rhs)
    }
}

impl Not for Truth {
    type Output = Truth;
    fn not(self) -> Truth {
        self.negate()
    }
}

impl fmt::Display for Truth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Truth::True => "true",
            Truth::False => "false",
            Truth::Unknown => "unknown",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use Truth::*;

    const ALL: [Truth; 3] = [False, Unknown, True];

    fn arb_truth() -> impl Strategy<Value = Truth> {
        prop_oneof![Just(False), Just(Unknown), Just(True)]
    }

    #[test]
    fn and_truth_table() {
        assert_eq!(True.and(True), True);
        assert_eq!(True.and(False), False);
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(Unknown.and(Unknown), Unknown);
    }

    #[test]
    fn or_truth_table() {
        assert_eq!(False.or(False), False);
        assert_eq!(False.or(True), True);
        assert_eq!(Unknown.or(True), True);
        assert_eq!(Unknown.or(False), Unknown);
        assert_eq!(Unknown.or(Unknown), Unknown);
    }

    #[test]
    fn negation_is_involutive_on_decided_values() {
        assert_eq!(True.negate(), False);
        assert_eq!(False.negate(), True);
        assert_eq!(Unknown.negate(), Unknown);
        for t in ALL {
            assert_eq!(t.negate().negate(), t);
        }
    }

    #[test]
    fn operator_sugar_matches_methods() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a & b, a.and(b));
                assert_eq!(a | b, a.or(b));
            }
            assert_eq!(!a, a.negate());
        }
    }

    #[test]
    fn all_and_any_identities() {
        assert_eq!(Truth::all([]), True);
        assert_eq!(Truth::any([]), False);
        assert_eq!(Truth::all([True, Unknown, True]), Unknown);
        assert_eq!(Truth::all([True, False, Unknown]), False);
        assert_eq!(Truth::any([False, Unknown]), Unknown);
        assert_eq!(Truth::any([False, True, Unknown]), True);
    }

    #[test]
    fn decided_and_predicates() {
        assert_eq!(True.decided(), Some(true));
        assert_eq!(False.decided(), Some(false));
        assert_eq!(Unknown.decided(), None);
        assert!(True.is_true() && !True.is_false() && !True.is_unknown());
        assert!(Unknown.is_unknown());
    }

    #[test]
    fn from_bool() {
        assert_eq!(Truth::from(true), True);
        assert_eq!(Truth::from(false), False);
    }

    #[test]
    fn ordering_places_unknown_between_false_and_true() {
        assert!(False < Unknown && Unknown < True);
    }

    proptest! {
        #[test]
        fn and_is_commutative_and_associative(a in arb_truth(), b in arb_truth(), c in arb_truth()) {
            prop_assert_eq!(a.and(b), b.and(a));
            prop_assert_eq!(a.and(b).and(c), a.and(b.and(c)));
        }

        #[test]
        fn or_is_commutative_and_associative(a in arb_truth(), b in arb_truth(), c in arb_truth()) {
            prop_assert_eq!(a.or(b), b.or(a));
            prop_assert_eq!(a.or(b).or(c), a.or(b.or(c)));
        }

        #[test]
        fn de_morgan_holds(a in arb_truth(), b in arb_truth()) {
            prop_assert_eq!(a.and(b).negate(), a.negate().or(b.negate()));
            prop_assert_eq!(a.or(b).negate(), a.negate().and(b.negate()));
        }

        #[test]
        fn kleene_min_max_model(a in arb_truth(), b in arb_truth()) {
            // Kleene logic is min/max over False < Unknown < True.
            prop_assert_eq!(a.and(b), a.min(b));
            prop_assert_eq!(a.or(b), a.max(b));
        }

        #[test]
        fn distributivity(a in arb_truth(), b in arb_truth(), c in arb_truth()) {
            prop_assert_eq!(a.and(b.or(c)), a.and(b).or(a.and(c)));
            prop_assert_eq!(a.or(b.and(c)), a.or(b).and(a.or(c)));
        }
    }
}
