//! Dotted path expressions for nested predicates.
//!
//! The paper's global queries contain *nested predicates* such as
//! `X.advisor.department.name = CS`: the path walks the class composition
//! hierarchy from the range class (`Student`) through complex attributes
//! (`advisor`, `department`) to a primitive attribute (`name`).

use std::fmt;
use std::str::FromStr;

/// A non-empty sequence of attribute names forming a path expression.
///
/// # Example
///
/// ```
/// use fedoq_object::Path;
///
/// let p: Path = "advisor.department.name".parse()?;
/// assert_eq!(p.len(), 3);
/// assert_eq!(p.first(), "advisor");
/// assert_eq!(p.last(), "name");
/// assert_eq!(p.to_string(), "advisor.department.name");
/// # Ok::<(), fedoq_object::ParsePathError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Path {
    steps: Vec<String>,
}

/// Error returned when parsing an empty or malformed path expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePathError {
    input: String,
}

impl fmt::Display for ParsePathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid path expression: {:?}", self.input)
    }
}

impl std::error::Error for ParsePathError {}

impl Path {
    /// Creates a path from attribute-name steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is empty — a path expression always names at least
    /// one attribute.
    pub fn new<I, S>(steps: I) -> Path
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let steps: Vec<String> = steps.into_iter().map(Into::into).collect();
        assert!(
            !steps.is_empty(),
            "a path expression must have at least one step"
        );
        Path { steps }
    }

    /// Creates a single-step path.
    pub fn attr(name: impl Into<String>) -> Path {
        Path {
            steps: vec![name.into()],
        }
    }

    /// Number of steps in the path.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `false` always — paths are non-empty by construction. Provided for
    /// API completeness alongside [`Path::len`].
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The first attribute name (an attribute of the range class).
    pub fn first(&self) -> &str {
        &self.steps[0]
    }

    /// The final attribute name (the attribute the predicate compares).
    pub fn last(&self) -> &str {
        self.steps.last().expect("paths are non-empty")
    }

    /// The steps as string slices.
    pub fn steps(&self) -> impl Iterator<Item = &str> {
        self.steps.iter().map(String::as_str)
    }

    /// The step at `i`, if in range.
    pub fn step(&self, i: usize) -> Option<&str> {
        self.steps.get(i).map(String::as_str)
    }

    /// All steps except the last: the complex-attribute prefix that walks
    /// through branch classes.
    pub fn branch_prefix(&self) -> impl Iterator<Item = &str> {
        self.steps[..self.steps.len() - 1]
            .iter()
            .map(String::as_str)
    }

    /// Returns the sub-path that remains after removing the first `n`
    /// steps, or `None` if fewer than one step would remain.
    pub fn strip_prefix(&self, n: usize) -> Option<Path> {
        if n >= self.steps.len() {
            return None;
        }
        Some(Path {
            steps: self.steps[n..].to_vec(),
        })
    }

    /// `true` if `prefix` is a (proper or improper) prefix of this path.
    pub fn starts_with(&self, prefix: &Path) -> bool {
        self.steps.len() >= prefix.steps.len()
            && self.steps[..prefix.steps.len()] == prefix.steps[..]
    }

    /// A new path with one step appended.
    pub fn child(&self, name: impl Into<String>) -> Path {
        let mut steps = self.steps.clone();
        steps.push(name.into());
        Path { steps }
    }
}

impl FromStr for Path {
    type Err = ParsePathError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let steps: Vec<String> = s.split('.').map(str::trim).map(String::from).collect();
        if steps.is_empty() || steps.iter().any(std::string::String::is_empty) {
            return Err(ParsePathError {
                input: s.to_owned(),
            });
        }
        Ok(Path { steps })
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.steps.join("."))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let p: Path = "advisor.department.name".parse().unwrap();
        assert_eq!(p.to_string(), "advisor.department.name");
        assert_eq!(p.len(), 3);
        assert_eq!(p.first(), "advisor");
        assert_eq!(p.last(), "name");
    }

    #[test]
    fn parse_single_step() {
        let p: Path = "age".parse().unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.first(), "age");
        assert_eq!(p.last(), "age");
        assert_eq!(p.branch_prefix().count(), 0);
    }

    #[test]
    fn parse_rejects_empty_and_blank_steps() {
        assert!("".parse::<Path>().is_err());
        assert!("a..b".parse::<Path>().is_err());
        assert!(".a".parse::<Path>().is_err());
        assert!("a.".parse::<Path>().is_err());
        let err = "a..b".parse::<Path>().unwrap_err();
        assert!(err.to_string().contains("a..b"));
    }

    #[test]
    fn parse_trims_whitespace_around_steps() {
        let p: Path = " advisor . name ".parse().unwrap();
        assert_eq!(p.to_string(), "advisor.name");
    }

    #[test]
    fn branch_prefix_excludes_terminal_attribute() {
        let p: Path = "advisor.department.name".parse().unwrap();
        let prefix: Vec<&str> = p.branch_prefix().collect();
        assert_eq!(prefix, vec!["advisor", "department"]);
    }

    #[test]
    fn strip_prefix_and_starts_with() {
        let p: Path = "advisor.department.name".parse().unwrap();
        let q = p.strip_prefix(1).unwrap();
        assert_eq!(q.to_string(), "department.name");
        assert!(p.starts_with(&Path::attr("advisor")));
        assert!(p.starts_with(&"advisor.department".parse().unwrap()));
        assert!(!p.starts_with(&Path::attr("name")));
        assert!(p.strip_prefix(3).is_none());
    }

    #[test]
    fn child_appends() {
        let p = Path::attr("advisor").child("speciality");
        assert_eq!(p.to_string(), "advisor.speciality");
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn new_rejects_empty() {
        let _ = Path::new(Vec::<String>::new());
    }

    #[test]
    fn ordering_is_lexicographic_on_steps() {
        let a: Path = "a.b".parse().unwrap();
        let b: Path = "a.c".parse().unwrap();
        assert!(a < b);
    }
}
