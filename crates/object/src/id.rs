//! Typed identifiers for databases, classes, and objects.
//!
//! The paper distinguishes *local object identifiers* (LOids), which are
//! only meaningful inside one component database, from *global object
//! identifiers* (GOids), which name a real-world entity across the whole
//! federation. Isomeric objects — copies of the same entity stored in
//! different component databases — share one GOid; the association is kept
//! in the replicated GOid mapping tables (see `fedoq-schema`).

use std::fmt;

/// Identifier of a component database (a site) in the federation.
///
/// # Example
///
/// ```
/// use fedoq_object::DbId;
/// let db = DbId::new(2);
/// assert_eq!(db.index(), 2);
/// assert_eq!(db.to_string(), "DB2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DbId(u16);

impl DbId {
    /// Creates a database id from its zero-based site index.
    pub fn new(index: u16) -> Self {
        DbId(index)
    }

    /// Returns the zero-based site index.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Returns the raw index as `u16`.
    pub fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for DbId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DB{}", self.0)
    }
}

impl From<u16> for DbId {
    fn from(v: u16) -> Self {
        DbId(v)
    }
}

/// Identifier of a class *within one component database*.
///
/// A `ClassId` is only meaningful together with the [`DbId`] of the
/// database whose schema defines the class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ClassId(u32);

impl ClassId {
    /// Creates a class id from its position in the component schema.
    pub fn new(index: u32) -> Self {
        ClassId(index)
    }

    /// Returns the zero-based position in the component schema.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Identifier of a class in the integrated *global* schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GlobalClassId(u32);

impl GlobalClassId {
    /// Creates a global class id from its position in the global schema.
    pub fn new(index: u32) -> Self {
        GlobalClassId(index)
    }

    /// Returns the zero-based position in the global schema.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GlobalClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", self.0)
    }
}

/// A local object identifier: unique within the federation because it
/// carries the owning database.
///
/// The paper writes these as `s1`, `t2'`, `d3''`; we write `o<serial>@DB<n>`.
///
/// # Example
///
/// ```
/// use fedoq_object::{DbId, LOid};
/// let loid = LOid::new(DbId::new(1), 42);
/// assert_eq!(loid.db(), DbId::new(1));
/// assert_eq!(loid.serial(), 42);
/// assert_eq!(loid.to_string(), "o42@DB1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LOid {
    db: DbId,
    serial: u64,
}

impl LOid {
    /// Creates a local object identifier owned by `db`.
    pub fn new(db: DbId, serial: u64) -> Self {
        LOid { db, serial }
    }

    /// The component database that owns this object.
    pub fn db(self) -> DbId {
        self.db
    }

    /// The per-database serial number.
    pub fn serial(self) -> u64 {
        self.serial
    }
}

impl fmt::Display for LOid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}@{}", self.serial, self.db)
    }
}

/// A global object identifier naming one real-world entity.
///
/// All isomeric objects (copies of the entity in different component
/// databases) map to the same `GOid` via the GOid mapping tables.
///
/// # Example
///
/// ```
/// use fedoq_object::GOid;
/// let g = GOid::new(7);
/// assert_eq!(g.to_string(), "g7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GOid(u64);

impl GOid {
    /// Creates a global object identifier from a federation-wide serial.
    pub fn new(serial: u64) -> Self {
        GOid(serial)
    }

    /// Returns the federation-wide serial number.
    pub fn serial(self) -> u64 {
        self.0
    }
}

impl fmt::Display for GOid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn db_id_round_trip() {
        let db = DbId::new(3);
        assert_eq!(db.index(), 3);
        assert_eq!(db.raw(), 3);
        assert_eq!(DbId::from(3u16), db);
    }

    #[test]
    fn display_forms_are_compact_and_distinct() {
        assert_eq!(DbId::new(0).to_string(), "DB0");
        assert_eq!(ClassId::new(5).to_string(), "c5");
        assert_eq!(GlobalClassId::new(5).to_string(), "G5");
        assert_eq!(GOid::new(12).to_string(), "g12");
        assert_eq!(LOid::new(DbId::new(2), 9).to_string(), "o9@DB2");
    }

    #[test]
    fn loids_differ_across_databases() {
        let a = LOid::new(DbId::new(0), 1);
        let b = LOid::new(DbId::new(1), 1);
        assert_ne!(a, b);
        let set: HashSet<_> = [a, b].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn loid_ordering_is_db_major() {
        let a = LOid::new(DbId::new(0), 100);
        let b = LOid::new(DbId::new(1), 1);
        assert!(a < b);
    }

    #[test]
    fn goid_is_hashable_and_ordered() {
        let mut v = vec![GOid::new(3), GOid::new(1), GOid::new(2)];
        v.sort();
        assert_eq!(v, vec![GOid::new(1), GOid::new(2), GOid::new(3)]);
    }
}
