//! Object-model substrate for the FedOQ federation.
//!
//! This crate defines the vocabulary shared by every other FedOQ crate:
//!
//! * typed identifiers for databases, classes, and objects — local object
//!   identifiers ([`LOid`]) and global object identifiers ([`GOid`]) as used
//!   by the paper's GOid mapping tables ([`id`]);
//! * the attribute [`Value`] model, including SQL-style nulls and references
//!   to other objects ([`value`]);
//! * Kleene three-valued logic ([`Truth`]) which gives *maybe results* their
//!   semantics ([`truth`]);
//! * dotted [`Path`] expressions (`advisor.department.name`) used by nested
//!   predicates ([`path`]);
//! * in-memory [`Object`] instances ([`object`]);
//! * compact [`ObjectSignature`]s, the auxiliary structure the paper
//!   proposes for reducing assistant-object transfer ([`signature`]).
//!
//! # Example
//!
//! ```
//! use fedoq_object::{CmpOp, Truth, Value};
//!
//! // Comparing against a null yields Unknown, not false: this is what
//! // makes an object a *maybe* result instead of eliminating it.
//! let city = Value::Null;
//! let verdict = city.compare(CmpOp::Eq, &Value::text("Taipei"));
//! assert_eq!(verdict, Truth::Unknown);
//!
//! // Conjunction follows Kleene logic.
//! assert_eq!(Truth::True.and(Truth::Unknown), Truth::Unknown);
//! assert_eq!(Truth::False.and(Truth::Unknown), Truth::False);
//! ```

pub mod id;
pub mod object;
pub mod path;
pub mod signature;
pub mod truth;
pub mod value;

pub use id::{ClassId, DbId, GOid, GlobalClassId, LOid};
pub use object::Object;
pub use path::{ParsePathError, Path};
pub use signature::ObjectSignature;
pub use truth::Truth;
pub use value::{CmpOp, Value, ValueKind};
