//! Object signatures: the auxiliary structure for reducing data transfer.
//!
//! The paper's conclusion (and Table 2's `R_ss` parameter) propose keeping
//! compact *object signatures* so that localized strategies can prefilter
//! assistant objects before shipping them between sites. We implement a
//! 256-bit superimposed-coding signature (matching the paper's `S_s = 32`
//! bytes): each `(attribute, value)` pair sets `K` hash-derived bits.
//!
//! A signature answers *may this object satisfy `attr = literal`?* with no
//! false negatives: if the bit test fails, the object definitely does not
//! carry that value, so the assistant check can be skipped without being
//! transferred or evaluated. Nulls set no bits, so a null attribute always
//! *may* match — which is exactly right, because a null must surface as an
//! `Unknown` verdict rather than be pruned.

use crate::value::Value;
use std::fmt;

/// Number of bits per signature (32 bytes, the paper's `S_s`).
pub const SIGNATURE_BITS: usize = 256;

/// Hash functions (bits set) per `(attribute, value)` pair.
const K: usize = 3;

/// A 256-bit superimposed-coding signature of one object's attribute values.
///
/// # Example
///
/// ```
/// use fedoq_object::{ObjectSignature, Value};
///
/// let mut sig = ObjectSignature::new();
/// sig.insert("speciality", &Value::text("database"));
/// assert!(sig.may_contain("speciality", &Value::text("database")));
/// // No false negatives; false positives are possible but rare.
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ObjectSignature {
    bits: [u64; SIGNATURE_BITS / 64],
}

impl ObjectSignature {
    /// Creates an empty signature (matches nothing except via nulls).
    pub fn new() -> ObjectSignature {
        ObjectSignature::default()
    }

    /// Builds a signature from `(attribute, value)` pairs, skipping nulls.
    pub fn from_pairs<'a, I>(pairs: I) -> ObjectSignature
    where
        I: IntoIterator<Item = (&'a str, &'a Value)>,
    {
        let mut sig = ObjectSignature::new();
        for (attr, value) in pairs {
            sig.insert(attr, value);
        }
        sig
    }

    /// Superimposes the signature bits for one `(attribute, value)` pair.
    /// Nulls are skipped: a null can never be pruned by a signature test.
    pub fn insert(&mut self, attr: &str, value: &Value) {
        if value.is_null() {
            return;
        }
        for bit in Self::bit_positions(attr, value) {
            self.bits[bit / 64] |= 1u64 << (bit % 64);
        }
    }

    /// Tests whether the object *may* hold `value` for `attr`.
    ///
    /// Returns `true` (do not prune) when `value` is null, and may return
    /// `true` spuriously (a false positive) — the actual check at the
    /// owning site resolves it. It never returns `false` for a pair that
    /// was inserted.
    pub fn may_contain(&self, attr: &str, value: &Value) -> bool {
        if value.is_null() {
            return true;
        }
        Self::bit_positions(attr, value)
            .into_iter()
            .all(|bit| self.bits[bit / 64] & (1u64 << (bit % 64)) != 0)
    }

    /// Marks `attr` as holding a null in this object.
    ///
    /// Null-awareness is what makes signature pruning *sound* for
    /// three-valued semantics: a probe that misses both the value bits and
    /// the null marker proves the attribute holds some other non-null
    /// value (a definite `False`), whereas a set null marker means the
    /// comparison could still be `Unknown` and must be checked remotely.
    pub fn insert_null(&mut self, attr: &str) {
        for bit in Self::bit_positions(attr, &NULL_MARKER) {
            self.bits[bit / 64] |= 1u64 << (bit % 64);
        }
    }

    /// Tests whether `attr` *may* hold a null in this object.
    /// No false negatives: if [`ObjectSignature::insert_null`] was called
    /// for `attr`, this returns `true`.
    pub fn may_be_null(&self, attr: &str) -> bool {
        Self::bit_positions(attr, &NULL_MARKER)
            .into_iter()
            .all(|bit| self.bits[bit / 64] & (1u64 << (bit % 64)) != 0)
    }

    /// Number of bits set (used to estimate the false-positive rate).
    pub fn popcount(&self) -> u32 {
        self.bits.iter().map(|w| w.count_ones()).sum()
    }

    /// Size of the signature in bytes (the paper's `S_s`).
    pub fn byte_size() -> u64 {
        (SIGNATURE_BITS / 8) as u64
    }

    fn bit_positions(attr: &str, value: &Value) -> [usize; K] {
        let h = hash_pair(attr, value);
        // Derive K independent positions from one 64-bit hash by splitting
        // it (Kirsch–Mitzenmacher double hashing).
        let h1 = (h & 0xFFFF_FFFF) as usize;
        let h2 = (h >> 32) as usize | 1; // odd, so the stride cycles all bits
        let mut out = [0usize; K];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = (h1 + i * h2) % SIGNATURE_BITS;
        }
        out
    }
}

impl fmt::Display for ObjectSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig[{} bits set]", self.popcount())
    }
}

/// Distinguished value whose hash encoding marks "this attribute is null".
/// `hash_pair` encodes `Value::Null` with its own tag, and the ordinary
/// `insert`/`may_contain` paths never feed a null to `bit_positions`, so
/// these bit positions are reserved for the null marker.
const NULL_MARKER: Value = Value::Null;

/// FNV-1a over the attribute name and a canonical encoding of the value.
fn hash_pair(attr: &str, value: &Value) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(attr.as_bytes());
    eat(&[0xFF]); // separator between attribute and value encodings
    match value {
        Value::Null => eat(b"\x00null"),
        Value::Int(v) => {
            eat(b"\x01");
            eat(&v.to_le_bytes());
        }
        Value::Float(v) => {
            eat(b"\x02");
            eat(&v.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            eat(b"\x03");
            eat(s.as_bytes());
        }
        Value::Bool(v) => eat(if *v { b"\x04\x01" } else { b"\x04\x00" }),
        Value::Ref(l) => {
            eat(b"\x05");
            eat(&(l.db().raw()).to_le_bytes());
            eat(&l.serial().to_le_bytes());
        }
        Value::GRef(g) => {
            eat(b"\x06");
            eat(&g.serial().to_le_bytes());
        }
        Value::List(items) => {
            eat(b"\x07");
            for item in items {
                eat(&hash_pair("", item).to_le_bytes());
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn inserted_pairs_are_always_found() {
        let mut sig = ObjectSignature::new();
        sig.insert("name", &Value::text("Kelly"));
        sig.insert("speciality", &Value::text("database"));
        assert!(sig.may_contain("name", &Value::text("Kelly")));
        assert!(sig.may_contain("speciality", &Value::text("database")));
    }

    #[test]
    fn absent_pairs_are_usually_pruned() {
        let mut sig = ObjectSignature::new();
        sig.insert("speciality", &Value::text("network"));
        // With 3 bits set out of 256 the false-positive probability for a
        // single probe is astronomically small; these specific probes miss.
        assert!(!sig.may_contain("speciality", &Value::text("database")));
        assert!(!sig.may_contain("name", &Value::text("network")));
    }

    #[test]
    fn attribute_name_participates_in_hash() {
        let mut sig = ObjectSignature::new();
        sig.insert("a", &Value::Int(1));
        assert!(sig.may_contain("a", &Value::Int(1)));
        assert!(!sig.may_contain("b", &Value::Int(1)));
    }

    #[test]
    fn nulls_set_no_bits_and_never_prune() {
        let mut sig = ObjectSignature::new();
        sig.insert("x", &Value::Null);
        assert_eq!(sig.popcount(), 0);
        assert!(sig.may_contain("x", &Value::Null));
        assert!(sig.may_contain("y", &Value::Null));
    }

    #[test]
    fn null_marker_round_trip() {
        let mut sig = ObjectSignature::new();
        sig.insert("speciality", &Value::text("network"));
        sig.insert_null("department");
        assert!(sig.may_be_null("department"));
        assert!(!sig.may_be_null("speciality"));
        // The null marker does not make value probes succeed.
        assert!(!sig.may_contain("department", &Value::text("CS")));
    }

    #[test]
    fn byte_size_matches_table_1() {
        assert_eq!(ObjectSignature::byte_size(), 32);
    }

    #[test]
    fn from_pairs_builder() {
        let name = Value::text("Abel");
        let dept = Value::text("EE");
        let sig = ObjectSignature::from_pairs([("name", &name), ("dept", &dept)]);
        assert!(sig.may_contain("name", &name));
        assert!(sig.may_contain("dept", &dept));
    }

    #[test]
    fn distinct_value_kinds_hash_differently() {
        let mut sig = ObjectSignature::new();
        sig.insert("k", &Value::Int(1));
        assert!(!sig.may_contain("k", &Value::text("1")));
        assert!(!sig.may_contain("k", &Value::Bool(true)));
    }

    proptest! {
        #[test]
        fn no_false_negatives(pairs in proptest::collection::vec(("[a-c]", -50i64..50), 1..20)) {
            let values: Vec<(String, Value)> =
                pairs.into_iter().map(|(a, v)| (a, Value::Int(v))).collect();
            let sig = ObjectSignature::from_pairs(
                values.iter().map(|(a, v)| (a.as_str(), v)),
            );
            for (a, v) in &values {
                prop_assert!(sig.may_contain(a, v));
            }
        }

        #[test]
        fn popcount_bounded_by_inserts(n in 1usize..40) {
            let mut sig = ObjectSignature::new();
            for i in 0..n {
                sig.insert("attr", &Value::Int(i as i64));
            }
            prop_assert!(sig.popcount() as usize <= 3 * n);
            prop_assert!(sig.popcount() > 0);
        }
    }
}
