//! In-memory object instances.
//!
//! An [`Object`] is one row of a class extent: a local oid plus a vector of
//! attribute [`Value`]s aligned with the owning class's attribute order
//! (the schema lives in `fedoq-store`). Attributes the class does not
//! define — the paper's *missing attributes* — are simply not present in
//! the vector; attributes the class defines but the instance lacks hold
//! [`Value::Null`].

use crate::id::{ClassId, LOid};
use crate::value::Value;
use std::fmt;

/// One object instance inside a component database.
///
/// # Example
///
/// ```
/// use fedoq_object::{ClassId, DbId, LOid, Object, Value};
///
/// let loid = LOid::new(DbId::new(0), 1);
/// let obj = Object::new(loid, ClassId::new(0), vec![Value::text("John"), Value::Int(31)]);
/// assert_eq!(obj.value(0), &Value::text("John"));
/// assert_eq!(obj.arity(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Object {
    loid: LOid,
    class: ClassId,
    values: Vec<Value>,
}

impl Object {
    /// Creates an object with its attribute values in class order.
    pub fn new(loid: LOid, class: ClassId, values: Vec<Value>) -> Object {
        Object {
            loid,
            class,
            values,
        }
    }

    /// The object's local identifier.
    pub fn loid(&self) -> LOid {
        self.loid
    }

    /// The class (within the owning database) this object belongs to.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// Number of attribute slots.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The value in slot `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds for this object's class.
    pub fn value(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// The value in slot `idx`, or `None` if out of bounds.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Replaces the value in slot `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn set(&mut self, idx: usize, value: Value) {
        self.values[idx] = value;
    }

    /// Iterates over the attribute values in class order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.values.iter()
    }

    /// `true` iff any defined attribute holds a null — i.e. the object has
    /// instance-level missing data even before schema-level missing
    /// attributes are considered.
    pub fn has_null(&self) -> bool {
        self.values.iter().any(Value::is_null)
    }

    /// Consumes the object and returns its value vector.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl fmt::Display for Object {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.loid)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::DbId;

    fn sample() -> Object {
        Object::new(
            LOid::new(DbId::new(1), 5),
            ClassId::new(2),
            vec![Value::text("Tony"), Value::Null, Value::Int(28)],
        )
    }

    #[test]
    fn accessors() {
        let o = sample();
        assert_eq!(o.loid(), LOid::new(DbId::new(1), 5));
        assert_eq!(o.class(), ClassId::new(2));
        assert_eq!(o.arity(), 3);
        assert_eq!(o.value(2), &Value::Int(28));
        assert_eq!(o.get(3), None);
    }

    #[test]
    fn has_null_detects_instance_missing_data() {
        assert!(sample().has_null());
        let full = Object::new(
            LOid::new(DbId::new(0), 0),
            ClassId::new(0),
            vec![Value::Int(1)],
        );
        assert!(!full.has_null());
    }

    #[test]
    fn set_replaces_value() {
        let mut o = sample();
        o.set(1, Value::text("male"));
        assert_eq!(o.value(1), &Value::text("male"));
        assert!(!o.has_null());
    }

    #[test]
    fn display_shows_loid_and_values() {
        let s = sample().to_string();
        assert_eq!(s, "o5@DB1(Tony, -, 28)");
    }

    #[test]
    fn into_values_round_trip() {
        let o = sample();
        let vals = o.clone().into_values();
        assert_eq!(vals.len(), 3);
        assert_eq!(&vals[0], o.value(0));
    }
}
