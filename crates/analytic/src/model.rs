//! The expected-cost formulas.
//!
//! Every term mirrors a charge the executed simulation makes; see the
//! per-strategy functions. Times are in microseconds, matching
//! `fedoq_sim::QueryMetrics`.
//!
//! The formulas are factored into *shared terms* so that two consumers
//! compose the same arithmetic:
//!
//! * [`estimate`] — the closed-form sweep (`fedoq-analytic::sweep`),
//!   which prices a whole strategy from aggregate workload expectations;
//! * `fedoq-plan` — the adaptive planner, which prices each strategy
//!   (including a per-site hybrid) from measured catalog statistics and
//!   the pipeline knobs actually in force.
//!
//! [`localized_site_terms`] and [`certify_cpu`] are the per-site building
//! blocks; [`CostBreakdown`] composes them into the paper's two measures.
//! [`PipelineKnobs`] folds the PR-3 execution pipeline (worker threads,
//! probe batching, lookup-cache warmth) into the same formula set: the
//! baseline knobs reproduce the untuned estimates exactly.

use crate::inputs::AnalyticInputs;
use std::fmt;

/// Which strategy to estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Centralized (CA).
    Centralized,
    /// Basic localized (BL).
    BasicLocalized,
    /// Parallel localized (PL).
    ParallelLocalized,
}

impl StrategyKind {
    /// All strategies, in the paper's presentation order.
    pub const ALL: [StrategyKind; 3] = [
        StrategyKind::Centralized,
        StrategyKind::BasicLocalized,
        StrategyKind::ParallelLocalized,
    ];

    /// The short name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Centralized => "CA",
            StrategyKind::BasicLocalized => "BL",
            StrategyKind::ParallelLocalized => "PL",
        }
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An expected total-execution / response time pair, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimeEstimate {
    /// Expected total execution time (sum of all busy time), µs.
    pub total_us: f64,
    /// Expected response time (parallel makespan), µs.
    pub response_us: f64,
}

impl fmt::Display for TimeEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {:.1} ms, response {:.1} ms",
            self.total_us / 1e3,
            self.response_us / 1e3
        )
    }
}

/// Execution-pipeline tuning folded into the cost formulas.
///
/// The baseline (`threads = 1`, `warmth = 0`, `batch = 0`) reproduces the
/// untuned estimates term for term; the planner derives non-baseline
/// knobs from the `PipelineConfig` in force and the lookup cache's
/// observed hit rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineKnobs {
    /// Worker threads available for chunked extent scans (≥ 1).
    pub threads: f64,
    /// Expected lookup-cache hit fraction in `[0, 1]`: warm entries
    /// short-circuit assistant checks (and CA extent shipping) without
    /// touching disk or wire.
    pub warmth: f64,
    /// Probe-batch size (0 = unbatched); affects the message-count
    /// estimate only — the simulation charges the wire per byte.
    pub batch: f64,
}

impl PipelineKnobs {
    /// The untuned single-threaded, cold, unbatched baseline.
    pub fn baseline() -> PipelineKnobs {
        PipelineKnobs {
            threads: 1.0,
            warmth: 0.0,
            batch: 0.0,
        }
    }

    /// Threads clamped to at least one (guards degenerate inputs).
    fn threads(&self) -> f64 {
        self.threads.max(1.0)
    }

    /// Cold fraction `1 − warmth`, clamped to `[0, 1]`.
    fn cold(&self) -> f64 {
        (1.0 - self.warmth).clamp(0.0, 1.0)
    }
}

impl Default for PipelineKnobs {
    fn default() -> Self {
        PipelineKnobs::baseline()
    }
}

/// One strategy's expected cost, decomposed the way the simulation
/// charges it. Composes heterogeneous per-site terms, so the planner's
/// hybrid assignment prices with the same arithmetic as the uniform
/// strategies.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostBreakdown {
    /// Busy time summed over every component site, µs.
    pub sites_us: f64,
    /// The slowest site's share of the response critical path, µs.
    pub site_path_us: f64,
    /// Serialized shared-link time for all transfers, µs.
    pub net_us: f64,
    /// Global-site work (integrate + evaluate for CA, certification for
    /// the localized strategies), µs.
    pub global_us: f64,
    /// Estimated messages put on the wire.
    pub messages: f64,
}

impl CostBreakdown {
    /// Expected total execution time: all busy time, µs.
    pub fn total_us(&self) -> f64 {
        self.sites_us + self.net_us + self.global_us
    }

    /// Expected response time: sites run in parallel, the shared link
    /// serializes, the global site finishes, µs.
    pub fn response_us(&self) -> f64 {
        self.site_path_us + self.net_us + self.global_us
    }

    /// Both measures as a [`TimeEstimate`].
    pub fn estimate(&self) -> TimeEstimate {
        TimeEstimate {
            total_us: self.total_us(),
            response_us: self.response_us(),
        }
    }
}

impl fmt::Display for CostBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sites {:.1} ms, net {:.1} ms, global {:.1} ms (≈{:.0} msgs)",
            self.sites_us / 1e3,
            self.net_us / 1e3,
            self.global_us / 1e3,
            self.messages
        )
    }
}

/// One site's share of a localized (BL or PL) execution, before network
/// and certification composition.
///
/// Disk and CPU terms are already divided over the pipeline's worker
/// threads; check-related terms are already scaled by the cache's cold
/// fraction. Byte counts are per site.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SiteTerms {
    /// Root-extent scan plus dereferenced branch objects, disk µs.
    pub scan_disk_us: f64,
    /// Local predicate evaluation, CPU µs.
    pub scan_cpu_us: f64,
    /// GOid-table assistant lookups, CPU µs.
    pub lookup_cpu_us: f64,
    /// PL's extra static prefix walk, disk µs (0 for BL).
    pub static_disk_us: f64,
    /// Assistant fetches at the target sites this site's checks hit,
    /// disk µs.
    pub check_disk_us: f64,
    /// Assistant predicate evaluation at the target sites, CPU µs.
    pub check_cpu_us: f64,
    /// Check-request bytes this site puts on the wire.
    pub request_bytes: f64,
    /// Check-reply bytes returned to this site.
    pub reply_bytes: f64,
    /// Local-result bytes shipped to the global site.
    pub result_bytes: f64,
    /// Expected survivors of local evaluation (rows shipped).
    pub survivors: f64,
    /// Expected assistant checks issued.
    pub checks: f64,
}

impl SiteTerms {
    /// All busy time this site's share contributes to total execution.
    pub fn site_work_us(&self) -> f64 {
        self.scan_disk_us
            + self.scan_cpu_us
            + self.lookup_cpu_us
            + self.static_disk_us
            + self.check_disk_us
            + self.check_cpu_us
    }

    /// This site's share of the response critical path. PL overlaps
    /// check processing with local evaluation (its requests are on the
    /// wire early); BL serializes the request send after its own scan.
    pub fn site_path_us(&self, parallel: bool, net_us_per_byte: f64) -> f64 {
        let check_wait = if parallel {
            self.check_disk_us + self.check_cpu_us
        } else {
            (self.check_disk_us + self.check_cpu_us) + (self.request_bytes * net_us_per_byte)
        };
        self.scan_disk_us + self.scan_cpu_us + self.lookup_cpu_us + self.static_disk_us + check_wait
    }

    /// Total bytes this site puts on (or attracts to) the shared link.
    pub fn bytes(&self) -> f64 {
        self.request_bytes + self.reply_bytes + self.result_bytes
    }

    /// Estimated messages: local query + result, plus a request/reply
    /// pair per check fragment (`batch` probes per fragment; 0 means one
    /// unfragmented wave).
    pub fn messages(&self, batch: f64) -> f64 {
        let fragments = if self.checks <= 0.0 {
            0.0
        } else if batch >= 1.0 {
            (self.checks / batch).ceil()
        } else {
            1.0
        };
        2.0 + 2.0 * fragments
    }
}

/// The per-site localized terms for one (average or measured) site.
///
/// `parallel` selects PL's schedule: checks for every candidate object
/// issued during a static pre-pass, instead of BL's checks for survivors
/// only after local evaluation.
pub fn localized_site_terms(a: &AnalyticInputs, parallel: bool, k: &PipelineKnobs) -> SiteTerms {
    let p = &a.params;
    let threads = k.threads();
    let cold = k.cold();
    // Local scan: read the root extent plus the branch objects each
    // object's predicate walks dereference.
    let scan_bytes = a.objects * a.object_bytes()
        + a.objects * (a.n_classes - 1.0).max(0.0) * a.object_bytes() * a.local_selectivity;
    let scan_disk_us = scan_bytes * p.disk_us_per_byte / threads;
    let scan_cpu_us =
        a.objects * a.n_classes * a.preds_per_class * 0.5 * p.cpu_us_per_cmp / threads;

    // Unsolved items and assistants.
    let survivors = a.survivors();
    let unsolved_per_row = a.n_classes * a.preds_per_class * a.unsolved_ratio;
    // BL looks up assistants for survivors only; PL for every object.
    let checked_rows = if parallel { a.objects } else { survivors };
    let checks = checked_rows * unsolved_per_row * a.assistants_per_item() * cold;
    let lookup_cpu_us =
        checked_rows * unsolved_per_row * (1.0 + a.n_iso) * p.cpu_us_per_cmp / threads;
    // PL additionally walks prefixes for every object during its static
    // pass (extra disk).
    let static_disk_us = if parallel {
        a.objects * (a.n_classes - 1.0).max(0.0) * 0.5 * a.object_bytes() * p.disk_us_per_byte
            / threads
    } else {
        0.0
    };

    // Check requests and processing at the target sites.
    let request_bytes = checks * (2.0 * p.loid_bytes as f64 + p.predicate_bytes() as f64);
    let check_disk_us = checks * a.object_bytes() * p.disk_us_per_byte;
    let check_cpu_us = checks * 2.0 * p.cpu_us_per_cmp;
    let reply_bytes = checks * (2.0 * p.loid_bytes as f64 + 1.0);

    // Local results to the global site.
    let result_bytes = survivors
        * (p.goid_bytes as f64
            + p.loid_bytes as f64
            + 2.0 * p.attr_bytes as f64
            + unsolved_per_row * (p.loid_bytes as f64 + 1.0));

    SiteTerms {
        scan_disk_us,
        scan_cpu_us,
        lookup_cpu_us,
        static_disk_us,
        check_disk_us,
        check_cpu_us,
        request_bytes,
        reply_bytes,
        result_bytes,
        survivors,
        checks,
    }
}

/// Certification CPU at the global site for one site's `survivors`:
/// per survivor, a GOid probe, sibling merges, per-predicate verdict
/// combination, and the certain/maybe classification.
pub fn certify_cpu(a: &AnalyticInputs, survivors: f64) -> f64 {
    survivors * (1.0 + a.n_iso + a.preds_per_class + 2.0) * a.params.cpu_us_per_cmp
}

/// CA: ship everything, integrate, evaluate.
fn centralized(a: &AnalyticInputs, k: &PipelineKnobs) -> CostBreakdown {
    let p = &a.params;
    // Per-database shipped bytes: every involved constituent extent,
    // projected. A warm shipment cache short-circuits both the extent
    // read and the transfer.
    let bytes_per_db = a.n_classes * a.objects * a.object_bytes() * k.cold();
    let disk_per_db = bytes_per_db * p.disk_us_per_byte / k.threads();
    let net_us = a.n_db * bytes_per_db * p.net_us_per_byte;
    // Integration: per object, a GOid probe, a join probe, and one merge
    // comparison per projected attribute.
    let total_objects = a.n_db * a.n_classes * a.objects;
    let integrate_cpu = total_objects * (2.0 + a.attrs_per_class) * p.cpu_us_per_cmp;
    // Evaluation at the global site: per root entity, each predicate walks
    // its path (≈ class depth / 2 probes) and compares once.
    let entities = a.n_db * a.objects / copies(a);
    let eval_cpu =
        entities * a.n_classes * a.preds_per_class * (1.0 + a.n_classes / 2.0) * p.cpu_us_per_cmp;
    CostBreakdown {
        sites_us: a.n_db * disk_per_db,
        // Response: disks run in parallel; the shared link serializes all
        // transfers; the global site then integrates and evaluates.
        site_path_us: disk_per_db,
        net_us,
        global_us: integrate_cpu + eval_cpu,
        // One ship request and one extent transfer per site.
        messages: 2.0 * a.n_db,
    }
}

/// BL / PL: local evaluation, assistant checking, certification.
fn localized(a: &AnalyticInputs, parallel: bool, k: &PipelineKnobs) -> CostBreakdown {
    let p = &a.params;
    let t = localized_site_terms(a, parallel, k);
    let net_us = a.n_db * t.bytes() * p.net_us_per_byte;
    CostBreakdown {
        sites_us: a.n_db * t.site_work_us(),
        // Response: sites work in parallel; the shared link serializes the
        // messages; checking at a target site overlaps other sites' work
        // but still queues behind the target's own scan.
        site_path_us: t.site_path_us(parallel, p.net_us_per_byte),
        net_us,
        global_us: a.n_db * certify_cpu(a, t.survivors),
        messages: a.n_db * t.messages(k.batch),
    }
}

fn copies(a: &AnalyticInputs) -> f64 {
    1.0 + a.iso_ratio * (a.n_iso - 1.0)
}

/// The full cost decomposition of `strategy` under `inputs` with the
/// pipeline `knobs` in force.
pub fn breakdown_tuned(
    strategy: StrategyKind,
    inputs: &AnalyticInputs,
    knobs: &PipelineKnobs,
) -> CostBreakdown {
    match strategy {
        StrategyKind::Centralized => centralized(inputs, knobs),
        StrategyKind::BasicLocalized => localized(inputs, false, knobs),
        StrategyKind::ParallelLocalized => localized(inputs, true, knobs),
    }
}

/// The full cost decomposition of `strategy` under `inputs` at the
/// untuned baseline pipeline.
pub fn breakdown(strategy: StrategyKind, inputs: &AnalyticInputs) -> CostBreakdown {
    breakdown_tuned(strategy, inputs, &PipelineKnobs::baseline())
}

/// Estimates the expected execution times of `strategy` under `inputs`.
///
/// # Example
///
/// ```
/// use fedoq_analytic::{estimate, AnalyticInputs, StrategyKind};
/// use fedoq_sim::SystemParams;
///
/// let inputs = AnalyticInputs::paper_default(SystemParams::paper_default());
/// let ca = estimate(StrategyKind::Centralized, &inputs);
/// let bl = estimate(StrategyKind::BasicLocalized, &inputs);
/// // The paper's headline: BL beats CA on both measures at the defaults.
/// assert!(bl.total_us < ca.total_us);
/// assert!(bl.response_us < ca.response_us);
/// ```
pub fn estimate(strategy: StrategyKind, inputs: &AnalyticInputs) -> TimeEstimate {
    breakdown(strategy, inputs).estimate()
}

/// Like [`estimate`] with explicit [`PipelineKnobs`].
pub fn estimate_tuned(
    strategy: StrategyKind,
    inputs: &AnalyticInputs,
    knobs: &PipelineKnobs,
) -> TimeEstimate {
    breakdown_tuned(strategy, inputs, knobs).estimate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedoq_sim::SystemParams;

    fn defaults() -> AnalyticInputs {
        AnalyticInputs::paper_default(SystemParams::paper_default())
    }

    #[test]
    fn bl_beats_ca_at_the_defaults() {
        let a = defaults();
        let ca = estimate(StrategyKind::Centralized, &a);
        let bl = estimate(StrategyKind::BasicLocalized, &a);
        let pl = estimate(StrategyKind::ParallelLocalized, &a);
        assert!(bl.total_us < ca.total_us, "bl {bl} vs ca {ca}");
        assert!(bl.response_us < ca.response_us);
        assert!(pl.response_us < ca.response_us);
        // PL does strictly more lookup work than BL.
        assert!(pl.total_us > bl.total_us);
    }

    #[test]
    fn times_grow_with_object_count() {
        let mut a = defaults();
        let small: Vec<_> = StrategyKind::ALL.iter().map(|s| estimate(*s, &a)).collect();
        a.objects *= 2.0;
        let large: Vec<_> = StrategyKind::ALL.iter().map(|s| estimate(*s, &a)).collect();
        for (s, l) in small.iter().zip(&large) {
            assert!(l.total_us > s.total_us);
            assert!(l.response_us > s.response_us);
        }
    }

    #[test]
    fn localized_grows_faster_with_databases() {
        let mut a = defaults();
        let ca2 = estimate(StrategyKind::Centralized, &a);
        let pl2 = estimate(StrategyKind::ParallelLocalized, &a);
        a.n_db = 8.0;
        a.iso_ratio = 1.0 - 0.9f64.powi(7);
        let ca8 = estimate(StrategyKind::Centralized, &a);
        let pl8 = estimate(StrategyKind::ParallelLocalized, &a);
        // PL's growth rate exceeds CA's (the paper's Figure-10 effect).
        assert!(pl8.total_us / pl2.total_us > ca8.total_us / ca2.total_us);
    }

    #[test]
    fn ca_is_flat_in_selectivity_but_localized_is_not() {
        let mut a = defaults();
        a.local_selectivity = 0.2;
        let ca_low = estimate(StrategyKind::Centralized, &a);
        let bl_low = estimate(StrategyKind::BasicLocalized, &a);
        a.local_selectivity = 0.9;
        let ca_high = estimate(StrategyKind::Centralized, &a);
        let bl_high = estimate(StrategyKind::BasicLocalized, &a);
        assert_eq!(ca_low.total_us, ca_high.total_us);
        assert!(bl_high.total_us > bl_low.total_us);
    }

    #[test]
    fn response_never_exceeds_total() {
        let a = defaults();
        for s in StrategyKind::ALL {
            let e = estimate(s, &a);
            assert!(e.response_us <= e.total_us, "{s}: {e}");
        }
    }

    #[test]
    fn strategy_names() {
        assert_eq!(StrategyKind::Centralized.to_string(), "CA");
        assert_eq!(StrategyKind::BasicLocalized.name(), "BL");
        assert_eq!(StrategyKind::ParallelLocalized.name(), "PL");
    }

    #[test]
    fn baseline_knobs_reproduce_untuned_estimates() {
        let a = defaults();
        for s in StrategyKind::ALL {
            let plain = estimate(s, &a);
            let tuned = estimate_tuned(s, &a, &PipelineKnobs::baseline());
            assert_eq!(plain, tuned, "{s}");
        }
    }

    #[test]
    fn threads_shrink_the_parallel_terms() {
        let a = defaults();
        let four = PipelineKnobs {
            threads: 4.0,
            ..PipelineKnobs::baseline()
        };
        for s in StrategyKind::ALL {
            let cold = estimate(s, &a);
            let fast = estimate_tuned(s, &a, &four);
            assert!(fast.response_us < cold.response_us, "{s}");
            assert!(fast.total_us <= cold.total_us, "{s}");
        }
    }

    #[test]
    fn warmth_shrinks_check_and_ship_costs() {
        let a = defaults();
        let warm = PipelineKnobs {
            warmth: 0.9,
            ..PipelineKnobs::baseline()
        };
        for s in StrategyKind::ALL {
            let cold = estimate(s, &a);
            let cached = estimate_tuned(s, &a, &warm);
            assert!(cached.total_us < cold.total_us, "{s}");
        }
        // A fully warm cache never goes negative.
        let boiling = PipelineKnobs {
            warmth: 1.5,
            ..PipelineKnobs::baseline()
        };
        for s in StrategyKind::ALL {
            let e = estimate_tuned(s, &a, &boiling);
            assert!(e.total_us >= 0.0 && e.response_us >= 0.0);
        }
    }

    #[test]
    fn batching_reduces_the_message_estimate() {
        let a = defaults();
        let unbatched = breakdown(StrategyKind::BasicLocalized, &a);
        let batched = breakdown_tuned(
            StrategyKind::BasicLocalized,
            &a,
            &PipelineKnobs {
                batch: 1.0,
                ..PipelineKnobs::baseline()
            },
        );
        // batch = 1 sends one fragment per check; batch = 0 sends one
        // wave, so the unbatched estimate is smaller.
        assert!(batched.messages >= unbatched.messages);
        let coarse = breakdown_tuned(
            StrategyKind::BasicLocalized,
            &a,
            &PipelineKnobs {
                batch: 1e9,
                ..PipelineKnobs::baseline()
            },
        );
        assert_eq!(coarse.messages, unbatched.messages);
    }

    #[test]
    fn breakdown_composes_like_the_estimate() {
        let a = defaults();
        for s in StrategyKind::ALL {
            let b = breakdown(s, &a);
            let e = estimate(s, &a);
            assert_eq!(b.total_us(), e.total_us);
            assert_eq!(b.response_us(), e.response_us);
            assert!(b.messages > 0.0);
            assert!(!b.to_string().is_empty());
        }
    }

    #[test]
    fn site_terms_compose_uniform_localized() {
        // Hand-composing the per-site terms reproduces the uniform
        // breakdown — the contract the planner's hybrid pricing relies on.
        let a = defaults();
        let k = PipelineKnobs::baseline();
        for parallel in [false, true] {
            let t = localized_site_terms(&a, parallel, &k);
            let kind = if parallel {
                StrategyKind::ParallelLocalized
            } else {
                StrategyKind::BasicLocalized
            };
            let b = breakdown(kind, &a);
            assert_eq!(b.sites_us, a.n_db * t.site_work_us());
            assert_eq!(
                b.site_path_us,
                t.site_path_us(parallel, a.params.net_us_per_byte)
            );
            assert_eq!(b.net_us, a.n_db * t.bytes() * a.params.net_us_per_byte);
        }
    }
}
