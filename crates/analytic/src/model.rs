//! The expected-cost formulas.
//!
//! Every term mirrors a charge the executed simulation makes; see the
//! per-strategy functions. Times are in microseconds, matching
//! `fedoq_sim::QueryMetrics`.

use crate::inputs::AnalyticInputs;
use std::fmt;

/// Which strategy to estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Centralized (CA).
    Centralized,
    /// Basic localized (BL).
    BasicLocalized,
    /// Parallel localized (PL).
    ParallelLocalized,
}

impl StrategyKind {
    /// All strategies, in the paper's presentation order.
    pub const ALL: [StrategyKind; 3] = [
        StrategyKind::Centralized,
        StrategyKind::BasicLocalized,
        StrategyKind::ParallelLocalized,
    ];

    /// The short name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Centralized => "CA",
            StrategyKind::BasicLocalized => "BL",
            StrategyKind::ParallelLocalized => "PL",
        }
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An expected total-execution / response time pair, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimeEstimate {
    /// Expected total execution time (sum of all busy time), µs.
    pub total_us: f64,
    /// Expected response time (parallel makespan), µs.
    pub response_us: f64,
}

impl fmt::Display for TimeEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {:.1} ms, response {:.1} ms",
            self.total_us / 1e3,
            self.response_us / 1e3
        )
    }
}

/// Estimates the expected execution times of `strategy` under `inputs`.
///
/// # Example
///
/// ```
/// use fedoq_analytic::{estimate, AnalyticInputs, StrategyKind};
/// use fedoq_sim::SystemParams;
/// use fedoq_workload::WorkloadParams;
///
/// let inputs = AnalyticInputs::from_workload(
///     &WorkloadParams::paper_default(), SystemParams::paper_default());
/// let ca = estimate(StrategyKind::Centralized, &inputs);
/// let bl = estimate(StrategyKind::BasicLocalized, &inputs);
/// // The paper's headline: BL beats CA on both measures at the defaults.
/// assert!(bl.total_us < ca.total_us);
/// assert!(bl.response_us < ca.response_us);
/// ```
pub fn estimate(strategy: StrategyKind, inputs: &AnalyticInputs) -> TimeEstimate {
    match strategy {
        StrategyKind::Centralized => centralized(inputs),
        StrategyKind::BasicLocalized => localized(inputs, false),
        StrategyKind::ParallelLocalized => localized(inputs, true),
    }
}

/// CA: ship everything, integrate, evaluate.
fn centralized(a: &AnalyticInputs) -> TimeEstimate {
    let p = &a.params;
    // Per-database shipped bytes: every involved constituent extent,
    // projected.
    let bytes_per_db = a.n_classes * a.objects * a.object_bytes();
    let disk_per_db = bytes_per_db * p.disk_us_per_byte;
    let net_total = a.n_db * bytes_per_db * p.net_us_per_byte;
    // Integration: per object, a GOid probe, a join probe, and one merge
    // comparison per projected attribute.
    let total_objects = a.n_db * a.n_classes * a.objects;
    let integrate_cpu = total_objects * (2.0 + a.attrs_per_class) * p.cpu_us_per_cmp;
    // Evaluation at the global site: per root entity, each predicate walks
    // its path (≈ class depth / 2 probes) and compares once.
    let entities = a.n_db * a.objects / copies(a);
    let eval_cpu =
        entities * a.n_classes * a.preds_per_class * (1.0 + a.n_classes / 2.0) * p.cpu_us_per_cmp;
    let total = a.n_db * disk_per_db + net_total + integrate_cpu + eval_cpu;
    // Response: disks run in parallel; the shared link serializes all
    // transfers; the global site then integrates and evaluates.
    let response = disk_per_db + net_total + integrate_cpu + eval_cpu;
    TimeEstimate {
        total_us: total,
        response_us: response,
    }
}

/// BL / PL: local evaluation, assistant checking, certification.
fn localized(a: &AnalyticInputs, parallel: bool) -> TimeEstimate {
    let p = &a.params;
    // Local scan: read the root extent plus the branch objects each
    // object's predicate walks dereference.
    let scan_bytes = a.objects * a.object_bytes()
        + a.objects * (a.n_classes - 1.0).max(0.0) * a.object_bytes() * a.local_selectivity;
    let scan_disk = scan_bytes * p.disk_us_per_byte;
    let scan_cpu = a.objects * a.n_classes * a.preds_per_class * 0.5 * p.cpu_us_per_cmp;

    // Unsolved items and assistants.
    let survivors = a.survivors();
    let unsolved_per_row = a.n_classes * a.preds_per_class * a.unsolved_ratio;
    // BL looks up assistants for survivors only; PL for every object.
    let checked_rows = if parallel { a.objects } else { survivors };
    let checks = checked_rows * unsolved_per_row * a.assistants_per_item();
    let lookup_cpu = checked_rows * unsolved_per_row * (1.0 + a.n_iso) * p.cpu_us_per_cmp;
    // PL additionally walks prefixes for every object during its static
    // pass (extra disk).
    let static_disk = if parallel {
        a.objects * (a.n_classes - 1.0).max(0.0) * 0.5 * a.object_bytes() * p.disk_us_per_byte
    } else {
        0.0
    };

    // Check requests and processing at the target sites.
    let request_bytes = checks * (2.0 * p.loid_bytes as f64 + p.predicate_bytes() as f64);
    let check_disk = checks * a.object_bytes() * p.disk_us_per_byte;
    let check_cpu = checks * 2.0 * p.cpu_us_per_cmp;
    let reply_bytes = checks * (2.0 * p.loid_bytes as f64 + 1.0);

    // Local results to the global site.
    let result_bytes = survivors
        * (p.goid_bytes as f64
            + p.loid_bytes as f64
            + 2.0 * p.attr_bytes as f64
            + unsolved_per_row * (p.loid_bytes as f64 + 1.0));

    // Certification at the global site.
    let certify_cpu =
        a.n_db * survivors * (1.0 + a.n_iso + a.preds_per_class + 2.0) * p.cpu_us_per_cmp;

    let net_total = a.n_db * (request_bytes + reply_bytes + result_bytes) * p.net_us_per_byte;
    let per_db_work = scan_disk + scan_cpu + lookup_cpu + static_disk + check_disk + check_cpu;
    let total = a.n_db * per_db_work + net_total + certify_cpu;

    // Response: sites work in parallel; the shared link serializes the
    // messages; checking at a target site overlaps other sites' work but
    // still queues behind the target's own scan. PL overlaps the check
    // processing with local evaluation (its requests are on the wire
    // early); BL serializes lookup after its own scan.
    let check_wait = if parallel {
        // Checking starts as soon as the target finishes its own work.
        check_disk + check_cpu
    } else {
        // Requests only leave after scan + lookup at the source.
        (check_disk + check_cpu) + (request_bytes * p.net_us_per_byte)
    };
    let response =
        scan_disk + scan_cpu + lookup_cpu + static_disk + check_wait + net_total + certify_cpu;
    TimeEstimate {
        total_us: total,
        response_us: response,
    }
}

fn copies(a: &AnalyticInputs) -> f64 {
    1.0 + a.iso_ratio * (a.n_iso - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedoq_sim::SystemParams;
    use fedoq_workload::WorkloadParams;

    fn defaults() -> AnalyticInputs {
        AnalyticInputs::from_workload(
            &WorkloadParams::paper_default(),
            SystemParams::paper_default(),
        )
    }

    #[test]
    fn bl_beats_ca_at_the_defaults() {
        let a = defaults();
        let ca = estimate(StrategyKind::Centralized, &a);
        let bl = estimate(StrategyKind::BasicLocalized, &a);
        let pl = estimate(StrategyKind::ParallelLocalized, &a);
        assert!(bl.total_us < ca.total_us, "bl {bl} vs ca {ca}");
        assert!(bl.response_us < ca.response_us);
        assert!(pl.response_us < ca.response_us);
        // PL does strictly more lookup work than BL.
        assert!(pl.total_us > bl.total_us);
    }

    #[test]
    fn times_grow_with_object_count() {
        let mut a = defaults();
        let small: Vec<_> = StrategyKind::ALL.iter().map(|s| estimate(*s, &a)).collect();
        a.objects *= 2.0;
        let large: Vec<_> = StrategyKind::ALL.iter().map(|s| estimate(*s, &a)).collect();
        for (s, l) in small.iter().zip(&large) {
            assert!(l.total_us > s.total_us);
            assert!(l.response_us > s.response_us);
        }
    }

    #[test]
    fn localized_grows_faster_with_databases() {
        let mut a = defaults();
        let ca2 = estimate(StrategyKind::Centralized, &a);
        let pl2 = estimate(StrategyKind::ParallelLocalized, &a);
        a.n_db = 8.0;
        a.iso_ratio = 1.0 - 0.9f64.powi(7);
        let ca8 = estimate(StrategyKind::Centralized, &a);
        let pl8 = estimate(StrategyKind::ParallelLocalized, &a);
        // PL's growth rate exceeds CA's (the paper's Figure-10 effect).
        assert!(pl8.total_us / pl2.total_us > ca8.total_us / ca2.total_us);
    }

    #[test]
    fn ca_is_flat_in_selectivity_but_localized_is_not() {
        let mut a = defaults();
        a.local_selectivity = 0.2;
        let ca_low = estimate(StrategyKind::Centralized, &a);
        let bl_low = estimate(StrategyKind::BasicLocalized, &a);
        a.local_selectivity = 0.9;
        let ca_high = estimate(StrategyKind::Centralized, &a);
        let bl_high = estimate(StrategyKind::BasicLocalized, &a);
        assert_eq!(ca_low.total_us, ca_high.total_us);
        assert!(bl_high.total_us > bl_low.total_us);
    }

    #[test]
    fn response_never_exceeds_total() {
        let a = defaults();
        for s in StrategyKind::ALL {
            let e = estimate(s, &a);
            assert!(e.response_us <= e.total_us, "{s}: {e}");
        }
    }

    #[test]
    fn strategy_names() {
        assert_eq!(StrategyKind::Centralized.to_string(), "CA");
        assert_eq!(StrategyKind::BasicLocalized.name(), "BL");
        assert_eq!(StrategyKind::ParallelLocalized.name(), "PL");
    }
}
