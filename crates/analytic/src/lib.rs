//! Closed-form expected-cost model for the FedOQ strategies.
//!
//! The paper's own evaluation is a parameterized simulation; this crate
//! provides the matching *analytical* estimate: expected total execution
//! time and response time for CA, BL, and PL as functions of the Table-1
//! unit costs and Table-2 workload aggregates. The formulas mirror the
//! executed simulation's charging rules (see `fedoq-core`) with sampled
//! quantities replaced by their expectations, so the model predicts the
//! *shape* of Figures 9–11 — who wins, how curves grow, where crossovers
//! fall — and the experiment harness cross-checks it against the executed
//! simulation.

pub mod inputs;
pub mod model;

pub use inputs::AnalyticInputs;
pub use model::{
    breakdown, breakdown_tuned, certify_cpu, estimate, estimate_tuned, localized_site_terms,
    CostBreakdown, PipelineKnobs, SiteTerms, StrategyKind, TimeEstimate,
};
