//! Aggregate workload quantities feeding the analytical model.

use fedoq_sim::SystemParams;
use fedoq_workload::WorkloadParams;

/// Expected-value aggregates of one experiment point.
///
/// Fields are public — experiments sweep them directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticInputs {
    /// Table-1 unit costs.
    pub params: SystemParams,
    /// Number of component databases (`N_db`).
    pub n_db: f64,
    /// Number of chained global classes (`N_c`).
    pub n_classes: f64,
    /// Average objects per constituent class per database (`N_o`).
    pub objects: f64,
    /// Average predicates per involved class (`N_p`).
    pub preds_per_class: f64,
    /// Average attributes projected per class (key + predicates + targets
    /// + reference).
    pub attrs_per_class: f64,
    /// Per-site local selectivity of one class's local predicates
    /// (`R_pps`).
    pub local_selectivity: f64,
    /// Probability an entity has isomeric copies (`R_iso`).
    pub iso_ratio: f64,
    /// Copies per replicated entity (`N_iso`).
    pub n_iso: f64,
    /// Probability that one predicate is unsolved at one site (missing
    /// attribute or null).
    pub unsolved_ratio: f64,
}

impl AnalyticInputs {
    /// Builds aggregates from a [`WorkloadParams`] by taking range
    /// midpoints — the expectation of the paper's 500-sample draw.
    pub fn from_workload(params: &WorkloadParams, system: SystemParams) -> AnalyticInputs {
        let mid_usize =
            |r: &std::ops::RangeInclusive<usize>| (*r.start() as f64 + *r.end() as f64) / 2.0;
        let preds = mid_usize(&params.preds_per_class);
        // E[N_pa] = N_p/2, so on average half the predicate attributes are
        // missing per site; nulls add the sampled R_m on top.
        let null_mid = (params.null_ratio.start() + params.null_ratio.end()) / 2.0;
        let unsolved_ratio = (0.5 + null_mid).min(1.0);
        let per_pred_sel = match params.forced_selectivity {
            Some(s) => s,
            None if preds < 0.5 => 1.0,
            None => 0.45f64.powf(preds.sqrt()).powf(1.0 / preds.max(1.0)),
        };
        // Local predicates are roughly half the class's predicates.
        let local_selectivity = per_pred_sel.powf(preds / 2.0);
        AnalyticInputs {
            params: system,
            n_db: params.n_db as f64,
            n_classes: mid_usize(&params.n_classes),
            objects: mid_usize(&params.objects_per_class),
            preds_per_class: preds,
            // key + present predicate attrs (≈ N_p/2) + two targets + ref.
            attrs_per_class: 1.0 + preds / 2.0 + 2.0 + 1.0,
            local_selectivity,
            iso_ratio: params.effective_iso_ratio(),
            n_iso: params.n_iso as f64,
            unsolved_ratio,
        }
    }

    /// Expected bytes of one shipped object projected on the involved
    /// attributes.
    pub fn object_bytes(&self) -> f64 {
        self.params.loid_bytes as f64 + self.attrs_per_class * self.params.attr_bytes as f64
    }

    /// Expected assistants per unsolved item.
    pub fn assistants_per_item(&self) -> f64 {
        self.iso_ratio * (self.n_iso - 1.0)
    }

    /// Per-site survivor count after local predicate evaluation.
    pub fn survivors(&self) -> f64 {
        self.objects * self.local_selectivity.powf(self.n_classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_workload_takes_midpoints() {
        let a = AnalyticInputs::from_workload(
            &WorkloadParams::paper_default(),
            SystemParams::paper_default(),
        );
        assert_eq!(a.n_db, 3.0);
        assert_eq!(a.n_classes, 2.5);
        assert_eq!(a.objects, 5500.0);
        assert_eq!(a.preds_per_class, 1.5);
        assert!((a.iso_ratio - 0.19).abs() < 1e-12);
        assert!(a.unsolved_ratio > 0.5 && a.unsolved_ratio < 0.7);
    }

    #[test]
    fn derived_quantities() {
        let a = AnalyticInputs::from_workload(
            &WorkloadParams::paper_default(),
            SystemParams::paper_default(),
        );
        // loid 16 + attrs*(32).
        assert!(a.object_bytes() > 16.0);
        assert!(a.assistants_per_item() > 0.0 && a.assistants_per_item() < 1.0);
        assert!(a.survivors() < a.objects);
        assert!(a.survivors() > 0.0);
    }
}
