//! Aggregate workload quantities feeding the analytical model.

use fedoq_sim::SystemParams;

/// Expected-value aggregates of one experiment point.
///
/// Fields are public — experiments sweep them directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticInputs {
    /// Table-1 unit costs.
    pub params: SystemParams,
    /// Number of component databases (`N_db`).
    pub n_db: f64,
    /// Number of chained global classes (`N_c`).
    pub n_classes: f64,
    /// Average objects per constituent class per database (`N_o`).
    pub objects: f64,
    /// Average predicates per involved class (`N_p`).
    pub preds_per_class: f64,
    /// Average attributes projected per class (key + predicates + targets
    /// + reference).
    pub attrs_per_class: f64,
    /// Per-site local selectivity of one class's local predicates
    /// (`R_pps`).
    pub local_selectivity: f64,
    /// Probability an entity has isomeric copies (`R_iso`).
    pub iso_ratio: f64,
    /// Copies per replicated entity (`N_iso`).
    pub n_iso: f64,
    /// Probability that one predicate is unsolved at one site (missing
    /// attribute or null).
    pub unsolved_ratio: f64,
}

impl AnalyticInputs {
    /// The expectation of the paper's default workload (`WorkloadParams::
    /// paper_default()` in `fedoq-workload`, reduced to range midpoints):
    /// 3 databases, 1–4 chained classes, 5000–6000 objects, 0–3
    /// predicates per class, 0–20% nulls, `R_iso = 1 − 0.9^(N_db−1)`,
    /// `N_iso = 2`. The general conversion from arbitrary workload
    /// parameters lives in `fedoq_workload::analytic_inputs` (this crate
    /// sits below the workload generator).
    pub fn paper_default(system: SystemParams) -> AnalyticInputs {
        let preds: f64 = (0.0 + 3.0) / 2.0;
        // E[N_pa] = N_p/2, so on average half the predicate attributes are
        // missing per site; nulls add the sampled R_m on top.
        let null_mid: f64 = (0.0 + 0.2) / 2.0;
        let unsolved_ratio = (0.5 + null_mid).min(1.0);
        let per_pred_sel = 0.45f64.powf(preds.sqrt()).powf(1.0 / preds.max(1.0));
        // Local predicates are roughly half the class's predicates.
        let local_selectivity = per_pred_sel.powf(preds / 2.0);
        AnalyticInputs {
            params: system,
            n_db: 3.0,
            n_classes: (1.0 + 4.0) / 2.0,
            objects: (5000.0 + 6000.0) / 2.0,
            preds_per_class: preds,
            // key + present predicate attrs (≈ N_p/2) + two targets + ref.
            attrs_per_class: 1.0 + preds / 2.0 + 2.0 + 1.0,
            local_selectivity,
            iso_ratio: 1.0 - 0.9f64.powi(2),
            n_iso: 2.0,
            unsolved_ratio,
        }
    }

    /// Expected bytes of one shipped object projected on the involved
    /// attributes.
    pub fn object_bytes(&self) -> f64 {
        self.params.loid_bytes as f64 + self.attrs_per_class * self.params.attr_bytes as f64
    }

    /// Expected assistants per unsolved item.
    pub fn assistants_per_item(&self) -> f64 {
        self.iso_ratio * (self.n_iso - 1.0)
    }

    /// Per-site survivor count after local predicate evaluation.
    pub fn survivors(&self) -> f64 {
        self.objects * self.local_selectivity.powf(self.n_classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_takes_midpoints() {
        let a = AnalyticInputs::paper_default(SystemParams::paper_default());
        assert_eq!(a.n_db, 3.0);
        assert_eq!(a.n_classes, 2.5);
        assert_eq!(a.objects, 5500.0);
        assert_eq!(a.preds_per_class, 1.5);
        assert!((a.iso_ratio - 0.19).abs() < 1e-12);
        assert!(a.unsolved_ratio > 0.5 && a.unsolved_ratio < 0.7);
    }

    #[test]
    fn derived_quantities() {
        let a = AnalyticInputs::paper_default(SystemParams::paper_default());
        // loid 16 + attrs*(32).
        assert!(a.object_bytes() > 16.0);
        assert!(a.assistants_per_item() > 0.0 && a.assistants_per_item() < 1.0);
        assert!(a.survivors() < a.objects);
        assert!(a.survivors() > 0.0);
    }
}
