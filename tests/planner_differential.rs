//! Differential testing of the adaptive planner: plan choice is a pure
//! cost decision and must never change what a query *answers*.
//!
//! Two invariants, randomized over the Table-2 workload space:
//!
//! * the adaptive run's answer is **byte-identical** to re-running the
//!   plan it chose as a fixed strategy (same certain rows, same maybe
//!   rows, same unsolved conjuncts, same provenance);
//! * the adaptive answer **classifies identically** to every fixed
//!   strategy — CA, BL, PL, their signature variants, and hybrid
//!   per-site assignments over arbitrary parallel-site subsets.
//!
//! Any divergence is a planner bug (e.g. a hybrid assignment skipping a
//! lookup a maybe-producing predicate needed).

use fedoq::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The chosen plan, reconstructed as a fixed strategy.
fn executed_strategy(outcome: &AdaptiveOutcome) -> Box<dyn ExecutionStrategy> {
    match outcome.executed {
        PlanKind::Centralized => Box::new(Centralized),
        PlanKind::BasicLocalized => Box::new(BasicLocalized::new()),
        PlanKind::ParallelLocalized => Box::new(ParallelLocalized::new()),
        PlanKind::Hybrid => Box::new(HybridLocalized::new(
            outcome
                .choice
                .best()
                .modes
                .iter()
                .filter(|m| m.parallel)
                .map(|m| m.db),
        )),
    }
}

fn fixed_strategies(fed: &Federation) -> Vec<Box<dyn ExecutionStrategy>> {
    let dbs: Vec<DbId> = fed.dbs().iter().map(ComponentDb::id).collect();
    let mut all: Vec<Box<dyn ExecutionStrategy>> = vec![
        Box::new(Centralized),
        Box::new(BasicLocalized::new()),
        Box::new(ParallelLocalized::new()),
        Box::new(BasicLocalized::with_signatures()),
        Box::new(ParallelLocalized::with_signatures()),
        // Hybrid extremes: all-BL and all-PL schedules...
        Box::new(HybridLocalized::new([])),
        Box::new(HybridLocalized::new(dbs.clone())),
    ];
    // ...plus every leave-one-out subset (arbitrary mixed assignments).
    for skip in &dbs {
        all.push(Box::new(HybridLocalized::new(
            dbs.iter().copied().filter(|db| db != skip),
        )));
    }
    all
}

/// Runs the planner and every fixed strategy on one sample.
fn check_sample(fed: &Federation, query: &BoundQuery, label: &str) {
    let params = SystemParams::paper_default();
    let mut catalog = collect_catalog(fed, params);
    let outcome = run_adaptive(fed, query, &mut catalog, PipelineConfig::default(), None).unwrap();

    // Byte-identical to the chosen plan run as a fixed strategy.
    let (replay, _) =
        run_strategy(executed_strategy(&outcome).as_ref(), fed, query, params).unwrap();
    prop_assert_eq!(
        &outcome.answer,
        &replay,
        "{}: adaptive answer differs from replaying its own {} plan",
        label,
        outcome.executed.label()
    );

    // Same classification as every fixed strategy.
    for strategy in fixed_strategies(fed) {
        let (fixed, _) = run_strategy(strategy.as_ref(), fed, query, params).unwrap();
        prop_assert!(
            outcome.answer.same_classification(&fixed),
            "{}: adaptive ({}) classifies differently from fixed {}: {} vs {}",
            label,
            outcome.executed.label(),
            strategy.name(),
            outcome.answer,
            fixed
        );
    }
}

#[test]
fn university_q1_is_planner_invariant() {
    let fed = fedoq::workload::university::federation().unwrap();
    let q1 = fed.parse_and_bind(fedoq::workload::university::Q1).unwrap();
    check_sample(&fed, &q1, "university Q1");
}

#[test]
fn repeated_adaptive_runs_never_change_the_answer() {
    // The EWMA feedback rescores (and may reroute) later runs; the
    // answer must stay fixed while the plan moves.
    let fed = fedoq::workload::university::federation().unwrap();
    let q1 = fed.parse_and_bind(fedoq::workload::university::Q1).unwrap();
    let mut catalog = collect_catalog(&fed, SystemParams::paper_default());
    let first = run_adaptive(&fed, &q1, &mut catalog, PipelineConfig::default(), None).unwrap();
    for round in 1..5 {
        let again = run_adaptive(&fed, &q1, &mut catalog, PipelineConfig::default(), None).unwrap();
        assert_eq!(
            again.answer, first.answer,
            "answer moved on adaptive round {round}"
        );
    }
    assert!(catalog.observed_len() >= 1, "feedback was never recorded");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Randomized over the Table-2 space (scaled down), the generator
    /// seed, and the federation width.
    #[test]
    fn adaptive_agrees_with_every_fixed_strategy(seed in 0u64..10_000, n_db in 2usize..5) {
        let mut params = WorkloadParams::paper_default().scaled(0.008);
        params.n_db = n_db;
        let config = params.sample(&mut StdRng::seed_from_u64(seed));
        let sample = fedoq::workload::generate(&config, seed);
        let query = bind(&sample.query, sample.federation.global_schema()).unwrap();
        check_sample(&sample.federation, &query, &format!("seed {seed}"));
    }
}
