//! Targeted scenarios for the certification rule (paper Section 2.3):
//! assistants that solve, assistants that violate, joint satisfaction by
//! different assistants, and absence elimination.

use fedoq::prelude::*;

/// Two databases over a Person -> Job composition. DB0 lacks `salary` on
/// Job; DB1 lacks `title`. Jobs are keyed by `jid`, people by `pid`.
fn schema(with_title: bool, with_salary: bool) -> ComponentSchema {
    let mut job = ClassDef::new("Job")
        .attr("jid", AttrType::int())
        .key(["jid"]);
    if with_title {
        job = job.attr("title", AttrType::text());
    }
    if with_salary {
        job = job.attr("salary", AttrType::int());
    }
    ComponentSchema::new(vec![
        job,
        ClassDef::new("Person")
            .attr("pid", AttrType::int())
            .attr("job", AttrType::complex("Job"))
            .key(["pid"]),
    ])
    .unwrap()
}

struct World {
    fed: Federation,
}

/// `salary_db1`: the salary DB1 stores for the shared job (None = null).
fn build(salary_db1: Option<i64>) -> World {
    let mut db0 = ComponentDb::new(DbId::new(0), "DB0", schema(true, false));
    let mut db1 = ComponentDb::new(DbId::new(1), "DB1", schema(false, true));
    // A job existing in both databases (isomeric via jid=7).
    let j0 = db0
        .insert_named(
            "Job",
            &[("jid", Value::Int(7)), ("title", Value::text("engineer"))],
        )
        .unwrap();
    let mut pairs = vec![("jid", Value::Int(7))];
    if let Some(s) = salary_db1 {
        pairs.push(("salary", Value::Int(s)));
    }
    db1.insert_named("Job", &pairs).unwrap();
    // The person exists only in DB0 and references the local job copy.
    db0.insert_named("Person", &[("pid", Value::Int(1)), ("job", Value::Ref(j0))])
        .unwrap();
    World {
        fed: Federation::new(vec![db0, db1], &Correspondences::new()).unwrap(),
    }
}

fn strategies() -> Vec<Box<dyn ExecutionStrategy>> {
    vec![
        Box::new(Centralized),
        Box::new(BasicLocalized::new()),
        Box::new(ParallelLocalized::new()),
        Box::new(BasicLocalized::with_signatures()),
        Box::new(ParallelLocalized::with_signatures()),
    ]
}

const QUERY: &str = "SELECT X.pid FROM Person X WHERE X.job.salary >= 100";

#[test]
fn assistant_solves_the_unsolved_item() {
    let world = build(Some(150));
    let q = world.fed.parse_and_bind(QUERY).unwrap();
    for s in strategies() {
        let (a, _) =
            run_strategy(s.as_ref(), &world.fed, &q, SystemParams::paper_default()).unwrap();
        assert_eq!(
            a.certain().len(),
            1,
            "{}: assistant salary=150 must certify",
            s.name()
        );
        assert!(a.maybe().is_empty(), "{}", s.name());
    }
}

#[test]
fn assistant_violation_eliminates() {
    let world = build(Some(50));
    let q = world.fed.parse_and_bind(QUERY).unwrap();
    for s in strategies() {
        let (a, _) =
            run_strategy(s.as_ref(), &world.fed, &q, SystemParams::paper_default()).unwrap();
        assert!(
            a.is_empty(),
            "{}: assistant salary=50 must eliminate, got {a}",
            s.name()
        );
    }
}

#[test]
fn null_assistant_keeps_the_maybe_result() {
    let world = build(None);
    let q = world.fed.parse_and_bind(QUERY).unwrap();
    for s in strategies() {
        let (a, _) =
            run_strategy(s.as_ref(), &world.fed, &q, SystemParams::paper_default()).unwrap();
        assert!(a.certain().is_empty(), "{}", s.name());
        assert_eq!(
            a.maybe().len(),
            1,
            "{}: null assistant cannot decide",
            s.name()
        );
        assert_eq!(a.maybe()[0].unsolved().count(), 1);
    }
}

#[test]
fn no_assistant_keeps_the_maybe_result() {
    // The job exists only in DB0: nothing can supply the salary.
    let mut db0 = ComponentDb::new(DbId::new(0), "DB0", schema(true, false));
    let db1 = ComponentDb::new(DbId::new(1), "DB1", schema(false, true));
    let j0 = db0
        .insert_named(
            "Job",
            &[("jid", Value::Int(9)), ("title", Value::text("lonely"))],
        )
        .unwrap();
    db0.insert_named("Person", &[("pid", Value::Int(1)), ("job", Value::Ref(j0))])
        .unwrap();
    let fed = Federation::new(vec![db0, db1], &Correspondences::new()).unwrap();
    let q = fed.parse_and_bind(QUERY).unwrap();
    for s in strategies() {
        let (a, _) = run_strategy(s.as_ref(), &fed, &q, SystemParams::paper_default()).unwrap();
        assert_eq!(a.maybe().len(), 1, "{}", s.name());
    }
}

/// Two unsolved predicates on the same item, each solved by a *different*
/// assistant: the certification rule's "jointly satisfy".
#[test]
fn different_assistants_jointly_satisfy() {
    let job_full = |title: bool, salary: bool, location: bool| {
        let mut j = ClassDef::new("Job")
            .attr("jid", AttrType::int())
            .key(["jid"]);
        if title {
            j = j.attr("title", AttrType::text());
        }
        if salary {
            j = j.attr("salary", AttrType::int());
        }
        if location {
            j = j.attr("location", AttrType::text());
        }
        ComponentSchema::new(vec![
            j,
            ClassDef::new("Person")
                .attr("pid", AttrType::int())
                .attr("job", AttrType::complex("Job"))
                .key(["pid"]),
        ])
        .unwrap()
    };
    // DB0 has neither salary nor location; DB1 has salary; DB2 has location.
    let mut db0 = ComponentDb::new(DbId::new(0), "DB0", job_full(true, false, false));
    let mut db1 = ComponentDb::new(DbId::new(1), "DB1", job_full(false, true, false));
    let mut db2 = ComponentDb::new(DbId::new(2), "DB2", job_full(false, false, true));
    let j0 = db0
        .insert_named(
            "Job",
            &[("jid", Value::Int(7)), ("title", Value::text("eng"))],
        )
        .unwrap();
    db1.insert_named(
        "Job",
        &[("jid", Value::Int(7)), ("salary", Value::Int(200))],
    )
    .unwrap();
    db2.insert_named(
        "Job",
        &[("jid", Value::Int(7)), ("location", Value::text("Taipei"))],
    )
    .unwrap();
    db0.insert_named("Person", &[("pid", Value::Int(1)), ("job", Value::Ref(j0))])
        .unwrap();
    let fed = Federation::new(vec![db0, db1, db2], &Correspondences::new()).unwrap();
    let q = fed
        .parse_and_bind(
            "SELECT X.pid FROM Person X WHERE X.job.salary >= 100 AND X.job.location = 'Taipei'",
        )
        .unwrap();
    for s in strategies() {
        let (a, _) = run_strategy(s.as_ref(), &fed, &q, SystemParams::paper_default()).unwrap();
        assert_eq!(
            a.certain().len(),
            1,
            "{}: joint satisfaction must certify",
            s.name()
        );
    }
    // And one violating assistant overrides the other's satisfaction.
    let mut db0 = ComponentDb::new(DbId::new(0), "DB0", job_full(true, false, false));
    let mut db1 = ComponentDb::new(DbId::new(1), "DB1", job_full(false, true, false));
    let mut db2 = ComponentDb::new(DbId::new(2), "DB2", job_full(false, false, true));
    let j0 = db0
        .insert_named(
            "Job",
            &[("jid", Value::Int(7)), ("title", Value::text("eng"))],
        )
        .unwrap();
    db1.insert_named(
        "Job",
        &[("jid", Value::Int(7)), ("salary", Value::Int(200))],
    )
    .unwrap();
    db2.insert_named(
        "Job",
        &[("jid", Value::Int(7)), ("location", Value::text("HsinChu"))],
    )
    .unwrap();
    db0.insert_named("Person", &[("pid", Value::Int(1)), ("job", Value::Ref(j0))])
        .unwrap();
    let fed = Federation::new(vec![db0, db1, db2], &Correspondences::new()).unwrap();
    let q = fed
        .parse_and_bind(
            "SELECT X.pid FROM Person X WHERE X.job.salary >= 100 AND X.job.location = 'Taipei'",
        )
        .unwrap();
    for s in strategies() {
        let (a, _) = run_strategy(s.as_ref(), &fed, &q, SystemParams::paper_default()).unwrap();
        assert!(
            a.is_empty(),
            "{}: the location violation must eliminate",
            s.name()
        );
    }
}

/// Absence elimination: a root entity whose isomeric copy fails its local
/// predicates elsewhere is eliminated even though this site cannot
/// evaluate them.
#[test]
fn absent_isomeric_root_copy_eliminates() {
    let person = |with_age: bool| {
        let mut p = ClassDef::new("Person")
            .attr("pid", AttrType::int())
            .key(["pid"]);
        if with_age {
            p = p.attr("age", AttrType::int());
        }
        ComponentSchema::new(vec![p]).unwrap()
    };
    let mut db0 = ComponentDb::new(DbId::new(0), "DB0", person(false));
    let mut db1 = ComponentDb::new(DbId::new(1), "DB1", person(true));
    db0.insert_named("Person", &[("pid", Value::Int(1))])
        .unwrap();
    db1.insert_named("Person", &[("pid", Value::Int(1)), ("age", Value::Int(10))])
        .unwrap();
    // A second entity whose copy passes.
    db0.insert_named("Person", &[("pid", Value::Int(2))])
        .unwrap();
    db1.insert_named("Person", &[("pid", Value::Int(2)), ("age", Value::Int(40))])
        .unwrap();
    // A third entity only in DB0: nobody knows its age.
    db0.insert_named("Person", &[("pid", Value::Int(3))])
        .unwrap();
    let fed = Federation::new(vec![db0, db1], &Correspondences::new()).unwrap();
    let q = fed
        .parse_and_bind("SELECT X.pid FROM Person X WHERE X.age >= 30")
        .unwrap();
    let truth = oracle_answer(&fed, &q);
    assert_eq!(truth.certain().len(), 1); // pid 2
    assert_eq!(truth.maybe().len(), 1); // pid 3
    for s in strategies() {
        let (a, _) = run_strategy(s.as_ref(), &fed, &q, SystemParams::paper_default()).unwrap();
        assert!(
            truth.same_classification(&a),
            "{}: {a} vs {truth}",
            s.name()
        );
        assert_eq!(a.certain()[0].values(), &[Value::Int(2)], "{}", s.name());
        assert_eq!(
            a.maybe()[0].row().values(),
            &[Value::Int(3)],
            "{}",
            s.name()
        );
    }
}
