//! Disjunctive-query extension, end to end: every strategy's DNF
//! execution matches the disjunctive oracle on randomized federations.

use fedoq::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn strategies() -> Vec<Box<dyn ExecutionStrategy>> {
    vec![
        Box::new(Centralized),
        Box::new(BasicLocalized::new()),
        Box::new(ParallelLocalized::new()),
        Box::new(BasicLocalized::with_signatures()),
        Box::new(ParallelLocalized::with_signatures()),
    ]
}

/// Splits a generated conjunctive query into a two-branch DNF query
/// (first half OR second half) over the same federation.
fn split_into_dnf(query: &Query) -> Option<DnfQuery> {
    let preds = query.predicates();
    if preds.len() < 2 {
        return None;
    }
    let mid = preds.len() / 2;
    let render = |ps: &[fedoq::query::Predicate]| {
        ps.iter()
            .map(|p| {
                let lit = match p.literal() {
                    Value::Text(s) => format!("'{s}'"),
                    other => other.to_string(),
                };
                format!("X.{} {} {lit}", p.path(), p.op())
            })
            .collect::<Vec<_>>()
            .join(" AND ")
    };
    let targets = if query.targets().is_empty() {
        "X.t0".to_owned()
    } else {
        query
            .targets()
            .iter()
            .map(|t| format!("X.{t}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let sql = format!(
        "SELECT {targets} FROM {} X WHERE {} OR {}",
        query.range_class(),
        render(&preds[..mid]),
        render(&preds[mid..]),
    );
    Some(parse_dnf(&sql).expect("rendered DNF parses"))
}

#[test]
fn strategies_agree_with_the_disjunctive_oracle() {
    let mut params = WorkloadParams::paper_default().scaled(0.01);
    params.preds_per_class = 1..=3;
    let mut checked = 0;
    for seed in 0..40u64 {
        let config = params.sample(&mut StdRng::seed_from_u64(seed));
        let sample = fedoq::workload::generate(&config, seed);
        let Some(dnf) = split_into_dnf(&sample.query) else {
            continue;
        };
        checked += 1;
        let truth = oracle_disjunctive(&sample.federation, &dnf);
        for strategy in strategies() {
            let mut sim =
                Simulation::new(SystemParams::paper_default(), sample.federation.num_dbs());
            let answer =
                run_disjunctive(strategy.as_ref(), &sample.federation, &dnf, &mut sim).unwrap();
            assert!(
                truth.same_classification(&answer),
                "seed {seed}: {} disagrees on {dnf}\n  got {answer}\n  want {truth}",
                strategy.name()
            );
        }
    }
    assert!(checked >= 20, "only {checked} multi-predicate samples");
}

#[test]
fn disjunctive_university_queries() {
    let fed = fedoq::workload::university::federation().unwrap();
    // Students in Taipei OR advised on databases: Hedy certain (both
    // branches), Tony maybe (both unknown), Mary maybe (Taipei unknown;
    // speciality unknown), Fanny certain (Taipei), John maybe (address
    // false, but speciality unknown).
    let q = parse_dnf(
        "SELECT X.name FROM Student X \
         WHERE X.address.city = 'Taipei' OR X.advisor.speciality = 'database'",
    )
    .unwrap();
    let truth = oracle_disjunctive(&fed, &q);
    for strategy in strategies() {
        let mut sim = Simulation::new(SystemParams::paper_default(), fed.num_dbs());
        let answer = run_disjunctive(strategy.as_ref(), &fed, &q, &mut sim).unwrap();
        assert!(
            truth.same_classification(&answer),
            "{}: {answer} vs {truth}",
            strategy.name()
        );
    }
    let certain: Vec<&Value> = truth.certain().iter().map(|r| &r.values()[0]).collect();
    assert!(certain.contains(&&Value::text("Hedy")));
    assert!(certain.contains(&&Value::text("Fanny")));
    // John fails the address branch but his advisor Jeffery's speciality
    // is 'network' — known false — so he is eliminated outright.
    assert!(!truth
        .maybe()
        .iter()
        .any(|m| m.row().values()[0] == Value::text("John")));
}

#[test]
fn empty_where_branch_returns_everything_certain() {
    let fed = fedoq::workload::university::federation().unwrap();
    let q = parse_dnf("SELECT X.name FROM Student X").unwrap();
    let mut sim = Simulation::new(SystemParams::paper_default(), fed.num_dbs());
    let answer = run_disjunctive(&Centralized, &fed, &q, &mut sim).unwrap();
    assert_eq!(answer.certain().len(), 5);
    assert!(answer.maybe().is_empty());
}
