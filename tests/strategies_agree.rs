//! The central correctness property: on consistently-generated
//! federations, CA, BL, PL, and their signature variants all return the
//! oracle's classification — the same certain entities and the same maybe
//! entities with the same unsolved conjunct sets.

use fedoq::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn strategies() -> Vec<Box<dyn ExecutionStrategy>> {
    vec![
        Box::new(Centralized),
        Box::new(BasicLocalized::new()),
        Box::new(ParallelLocalized::new()),
        Box::new(BasicLocalized::with_signatures()),
        Box::new(ParallelLocalized::with_signatures()),
    ]
}

fn check_agreement(sample: &GeneratedSample, label: &str) {
    let fed = &sample.federation;
    let query = bind(&sample.query, fed.global_schema()).unwrap();
    let truth = oracle_answer(fed, &query);
    for strategy in strategies() {
        let (answer, metrics) = run_strategy(
            strategy.as_ref(),
            fed,
            &query,
            SystemParams::paper_default(),
        )
        .unwrap();
        assert!(
            truth.same_classification(&answer),
            "{label}: {} disagrees with the oracle\n  oracle: {truth}\n  {}: {answer}\n  query: {}",
            strategy.name(),
            strategy.name(),
            sample.query,
        );
        assert!(metrics.total_execution_us >= metrics.response_us);
    }
}

#[test]
fn agreement_on_fifty_paper_shaped_samples() {
    let params = WorkloadParams::paper_default().scaled(0.01); // ~50-60 objects/class/db
    for seed in 0..50u64 {
        let config = params.sample(&mut StdRng::seed_from_u64(seed));
        let sample = fedoq::workload::generate(&config, seed);
        check_agreement(&sample, &format!("seed {seed}"));
    }
}

#[test]
fn agreement_with_many_databases() {
    let mut params = WorkloadParams::paper_default().scaled(0.01);
    params.n_db = 6;
    for seed in 100..110u64 {
        let config = params.sample(&mut StdRng::seed_from_u64(seed));
        let sample = fedoq::workload::generate(&config, seed);
        check_agreement(&sample, &format!("6db seed {seed}"));
    }
}

#[test]
fn agreement_with_equality_predicates_and_signatures() {
    let mut params = WorkloadParams::paper_default().scaled(0.01);
    params.eq_predicates = true;
    params.preds_per_class = 1..=3;
    for seed in 200..220u64 {
        let config = params.sample(&mut StdRng::seed_from_u64(seed));
        let sample = fedoq::workload::generate(&config, seed);
        check_agreement(&sample, &format!("eq seed {seed}"));
    }
}

#[test]
fn agreement_with_heavy_nulls() {
    let mut params = WorkloadParams::paper_default().scaled(0.01);
    params.null_ratio = 0.3..=0.5;
    for seed in 300..315u64 {
        let config = params.sample(&mut StdRng::seed_from_u64(seed));
        let sample = fedoq::workload::generate(&config, seed);
        check_agreement(&sample, &format!("nulls seed {seed}"));
    }
}

#[test]
fn agreement_with_full_isomerism() {
    let mut params = WorkloadParams::paper_default().scaled(0.01);
    params.iso_ratio = Some(1.0);
    params.n_iso = 3;
    for seed in 400..410u64 {
        let config = params.sample(&mut StdRng::seed_from_u64(seed));
        let sample = fedoq::workload::generate(&config, seed);
        check_agreement(&sample, &format!("iso seed {seed}"));
    }
}

#[test]
fn agreement_with_two_databases_and_deep_chains() {
    let mut params = WorkloadParams::paper_default().scaled(0.01);
    params.n_db = 2;
    params.n_classes = 4..=4;
    params.preds_per_class = 1..=3;
    for seed in 500..515u64 {
        let config = params.sample(&mut StdRng::seed_from_u64(seed));
        let sample = fedoq::workload::generate(&config, seed);
        check_agreement(&sample, &format!("deep seed {seed}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Randomized over the whole Table-2 space (scaled down), plus the
    /// generator seed.
    #[test]
    fn agreement_property(seed in 0u64..10_000, n_db in 2usize..5) {
        let mut params = WorkloadParams::paper_default().scaled(0.008);
        params.n_db = n_db;
        let config = params.sample(&mut StdRng::seed_from_u64(seed));
        let sample = fedoq::workload::generate(&config, seed);
        let fed = &sample.federation;
        let query = bind(&sample.query, fed.global_schema()).unwrap();
        let truth = oracle_answer(fed, &query);
        for strategy in strategies() {
            let (answer, _) =
                run_strategy(strategy.as_ref(), fed, &query, SystemParams::paper_default()).unwrap();
            prop_assert!(
                truth.same_classification(&answer),
                "{} disagrees on seed {seed}: {} vs oracle {}",
                strategy.name(),
                answer,
                truth
            );
        }
    }
}
