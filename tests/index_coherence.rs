//! Index-coherence regressions at the federation level: maintained
//! indexes and the warm CA materialization cache must stay consistent
//! across [`Federation::mutate`].
//!
//! The store keeps every [`MaintainedIndex`] synchronous with its
//! extent (insert/retract/restore update the posting lists in place),
//! and the execution cache is generation-keyed, so a mutate-then-probe
//! sequence over a *shared* cache must answer exactly like a cold
//! sequential run on the mutated data — a stale posting list or a warm
//! materialization surviving a generation bump would both show up here
//! as a wrong certain set.
//!
//! [`MaintainedIndex`]: fedoq::store::MaintainedIndex

use fedoq::object::ClassId;
use fedoq::prelude::*;
use fedoq::store::{save_db_paged, PagedDb};
use std::cell::RefCell;

/// A two-site federation of `Item(id [key], tag)` with a maintained
/// index on `tag` at both sites: `n` objects per site, `tag = id % 10`,
/// disjoint key ranges (no isomeric copies).
fn item_federation(n: usize) -> Federation {
    let dbs = (0..2u16)
        .map(|site| {
            let schema = ComponentSchema::new(vec![ClassDef::new("Item")
                .attr("id", AttrType::int())
                .attr("tag", AttrType::int())
                .key(["id"])])
            .unwrap();
            let mut db = ComponentDb::new(DbId::new(site), format!("S{site}"), schema);
            for i in 0..n {
                let id = i64::from(site) * 1_000_000 + i as i64;
                db.insert(ClassId::new(0), vec![Value::Int(id), Value::Int(id % 10)])
                    .unwrap();
            }
            db.create_index("Item", &["tag"]).unwrap();
            db
        })
        .collect();
    Federation::new(dbs, &Correspondences::new()).unwrap()
}

/// The ground truth: the legacy sequential path, no index, no cache.
fn oracle(fed: &Federation, query: &BoundQuery) -> QueryAnswer {
    run_strategy(&Centralized, fed, query, SystemParams::paper_default())
        .unwrap()
        .0
}

fn indexed_cached(
    strategy: &dyn ExecutionStrategy,
    fed: &Federation,
    query: &BoundQuery,
    cache: &RefCell<LookupCache>,
) -> QueryAnswer {
    run_strategy_with_pipeline(
        strategy,
        fed,
        query,
        SystemParams::paper_default(),
        PipelineConfig::sequential().with_cache().with_index(),
        Some(cache),
    )
    .unwrap()
    .0
}

/// Insert a matching object, probe, retract it, probe again — all over
/// one long-lived cache. Every indexed answer must equal the sequential
/// oracle on the data as it stands at that moment.
#[test]
fn mutate_then_probe_keeps_indexed_answers_fresh() {
    let mut fed = item_federation(200);
    let query = fed
        .parse_and_bind("SELECT X.id FROM Item X WHERE X.tag = 3")
        .unwrap();
    let cache = RefCell::new(LookupCache::default());

    for strategy in [
        &Centralized as &dyn ExecutionStrategy,
        &BasicLocalized::new(),
        &ParallelLocalized::new(),
    ] {
        // Warm the cache on the pristine data (two runs: fill + hit).
        let before = oracle(&fed, &query);
        assert_eq!(indexed_cached(strategy, &fed, &query, &cache), before);
        assert_eq!(indexed_cached(strategy, &fed, &query, &cache), before);

        // Insert a fresh match at site 0: the maintained index must
        // list it and the generation bump must flush the warm state.
        let loid = fed
            .mutate(DbId::new(0), |db| {
                db.insert(ClassId::new(0), vec![Value::Int(777_777), Value::Int(3)])
            })
            .unwrap();
        let after_insert = oracle(&fed, &query);
        assert_eq!(
            after_insert.certain().len(),
            before.certain().len() + 1,
            "the inserted object matches the query"
        );
        assert_eq!(
            indexed_cached(strategy, &fed, &query, &cache),
            after_insert,
            "{}: indexed answer stale after insert",
            strategy.name()
        );

        // Retract it again: the posting list must forget the LOid.
        fed.mutate(DbId::new(0), |db| db.retract(loid)).unwrap();
        assert_eq!(
            indexed_cached(strategy, &fed, &query, &cache),
            before,
            "{}: indexed answer stale after retract",
            strategy.name()
        );
    }
}

/// Flipping an object's indexed attribute must move it between posting
/// lists (ObjectMut-drop maintenance), visible through the full stack.
#[test]
fn updates_move_objects_between_posting_lists() {
    let mut fed = item_federation(100);
    let query = fed
        .parse_and_bind("SELECT X.id FROM Item X WHERE X.tag = 3")
        .unwrap();
    let cache = RefCell::new(LookupCache::default());
    let before = oracle(&fed, &query);
    assert_eq!(indexed_cached(&Centralized, &fed, &query, &cache), before);

    // Object id=4 has tag 4; rewrite it to 3. The ObjectMut guard
    // reindexes on drop.
    fed.mutate(DbId::new(0), |db| {
        let loid = db.extent(ClassId::new(0)).objects()[4].loid();
        db.object_mut(loid)
            .expect("object exists")
            .set(1, Value::Int(3));
        Ok(())
    })
    .unwrap();
    let after = oracle(&fed, &query);
    assert_eq!(after.certain().len(), before.certain().len() + 1);
    assert_eq!(
        indexed_cached(&Centralized, &fed, &query, &cache),
        after,
        "indexed answer stale after in-place update"
    );
}

/// A 10^5-object extent survives the paged on-disk format byte-for-byte
/// and splits into many length-capped pages read back lazily.
#[test]
fn paged_roundtrip_at_one_hundred_thousand_objects() {
    const N: usize = 100_000;
    let schema = ComponentSchema::new(vec![ClassDef::new("Item")
        .attr("id", AttrType::int())
        .attr("tag", AttrType::int())
        .key(["id"])])
    .unwrap();
    let mut db = ComponentDb::new(DbId::new(0), "BIG", schema);
    for i in 0..N as i64 {
        let tag = if i % 97 == 0 {
            Value::Null
        } else {
            Value::Int(i % 50)
        };
        db.insert(ClassId::new(0), vec![Value::Int(i), tag])
            .unwrap();
    }

    let mut buf = Vec::new();
    save_db_paged(&db, &mut buf, 0).unwrap();
    let paged = PagedDb::open(&buf).unwrap();
    assert_eq!(paged.object_count(), N as u64);
    let pages = paged.num_pages(ClassId::new(0));
    assert!(pages > 1, "a 10^5 extent must span multiple pages");

    // Lazy page reads reassemble the extent in order without a full
    // restore.
    let mut streamed = 0usize;
    for page in 0..pages {
        let objects = paged.read_page(ClassId::new(0), page).unwrap();
        for object in &objects {
            assert_eq!(object.value(0), &Value::Int(streamed as i64));
            streamed += 1;
        }
    }
    assert_eq!(streamed, N);

    let restored = paged.restore().unwrap();
    assert_eq!(
        restored.extent(ClassId::new(0)).objects(),
        db.extent(ClassId::new(0)).objects(),
        "restored extent differs from the original"
    );
}
