//! Robustness: degenerate federations, degenerate queries, persistence
//! round trips, and failure injection (stale GOid mapping entries).

use fedoq::prelude::*;
use fedoq::schema::GoidCatalog;
use fedoq::workload::university;

fn strategies() -> Vec<Box<dyn ExecutionStrategy>> {
    vec![
        Box::new(Centralized),
        Box::new(BasicLocalized::new()),
        Box::new(ParallelLocalized::new()),
        Box::new(BasicLocalized::with_signatures()),
        Box::new(ParallelLocalized::with_signatures()),
    ]
}

#[test]
fn single_database_federation_works() {
    let schema = ComponentSchema::new(vec![ClassDef::new("T")
        .attr("x", AttrType::int())
        .key(["x"])])
    .unwrap();
    let mut db = ComponentDb::new(DbId::new(0), "Solo", schema);
    db.insert_named("T", &[("x", Value::Int(1))]).unwrap();
    db.insert_named("T", &[]).unwrap(); // x null
    let fed = Federation::new(vec![db], &Correspondences::new()).unwrap();
    let q = fed
        .parse_and_bind("SELECT X.x FROM T X WHERE X.x >= 0")
        .unwrap();
    let truth = oracle_answer(&fed, &q);
    assert_eq!(truth.certain().len(), 1);
    assert_eq!(truth.maybe().len(), 1);
    for s in strategies() {
        let (a, m) = run_strategy(s.as_ref(), &fed, &q, SystemParams::paper_default()).unwrap();
        assert!(truth.same_classification(&a), "{}", s.name());
        assert!(m.total_execution_us >= m.response_us);
    }
}

#[test]
fn empty_extents_yield_empty_answers() {
    let schema = ComponentSchema::new(vec![ClassDef::new("T")
        .attr("x", AttrType::int())
        .key(["x"])])
    .unwrap();
    let db0 = ComponentDb::new(DbId::new(0), "A", schema.clone());
    let db1 = ComponentDb::new(DbId::new(1), "B", schema);
    let fed = Federation::new(vec![db0, db1], &Correspondences::new()).unwrap();
    let q = fed
        .parse_and_bind("SELECT X.x FROM T X WHERE X.x = 1")
        .unwrap();
    for s in strategies() {
        let (a, _) = run_strategy(s.as_ref(), &fed, &q, SystemParams::paper_default()).unwrap();
        assert!(a.is_empty(), "{}", s.name());
    }
}

#[test]
fn query_without_predicates_or_targets() {
    let fed = university::federation().unwrap();
    // No predicates: every entity is certain, projected on one target.
    let q = fed.parse_and_bind("SELECT X.s-no FROM Student X").unwrap();
    for s in strategies() {
        let (a, _) = run_strategy(s.as_ref(), &fed, &q, SystemParams::paper_default()).unwrap();
        assert_eq!(a.certain().len(), 5, "{}", s.name());
        assert!(a.maybe().is_empty(), "{}", s.name());
    }
}

/// A GOid table entry pointing at an object that no longer exists must
/// not crash any strategy, and certification must treat the missing
/// assistant as unable to answer (no false certainty).
#[test]
fn stale_goid_mapping_entries_are_tolerated() {
    let job = |with_salary: bool| {
        let mut j = ClassDef::new("Job")
            .attr("jid", AttrType::int())
            .key(["jid"]);
        if !with_salary {
            j = j.attr("title", AttrType::text());
        } else {
            j = j.attr("salary", AttrType::int());
        }
        ComponentSchema::new(vec![
            j,
            ClassDef::new("Person")
                .attr("pid", AttrType::int())
                .attr("job", AttrType::complex("Job"))
                .key(["pid"]),
        ])
        .unwrap()
    };
    let mut db0 = ComponentDb::new(DbId::new(0), "DB0", job(false));
    let db1 = ComponentDb::new(DbId::new(1), "DB1", job(true));
    let j0 = db0
        .insert_named(
            "Job",
            &[("jid", Value::Int(7)), ("title", Value::text("eng"))],
        )
        .unwrap();
    db0.insert_named("Person", &[("pid", Value::Int(1)), ("job", Value::Ref(j0))])
        .unwrap();

    // Hand-build a catalog whose Job entry claims an isomeric copy at DB1
    // that was deleted (a stale mapping-table entry).
    let schemas: Vec<(DbId, &ComponentSchema)> =
        vec![(DbId::new(0), db0.schema()), (DbId::new(1), db1.schema())];
    let global = integrate(&schemas, &Correspondences::new()).unwrap();
    let mut catalog = GoidCatalog::new(global.len());
    let job_class = global.class_id("Job").unwrap();
    let person_class = global.class_id("Person").unwrap();
    let ghost = LOid::new(DbId::new(1), 999);
    catalog.register(job_class, &[j0, ghost]);
    let person_loid = db0
        .extent_by_name("Person")
        .unwrap()
        .loids()
        .next()
        .unwrap();
    catalog.register(person_class, &[person_loid]);
    let fed = Federation::from_parts(vec![db0, db1], global, catalog);

    let q = fed
        .parse_and_bind("SELECT X.pid FROM Person X WHERE X.job.salary > 10")
        .unwrap();
    for s in strategies() {
        let (a, _) = run_strategy(s.as_ref(), &fed, &q, SystemParams::paper_default()).unwrap();
        // The ghost assistant cannot answer: the person must stay maybe —
        // never certain, never spuriously eliminated.
        assert_eq!(a.maybe().len(), 1, "{}: {a}", s.name());
        assert!(a.certain().is_empty(), "{}", s.name());
    }
}

#[test]
fn federation_persistence_round_trip() {
    let fed = university::federation().unwrap();
    let dir = std::env::temp_dir().join("fedoq_persist_roundtrip");
    let _ = std::fs::remove_dir_all(&dir);
    fed.save_to_dir(&dir).unwrap();
    let restored = Federation::load_from_dir(&dir, &Correspondences::new()).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(restored.num_dbs(), fed.num_dbs());
    // The restored federation answers Q1 identically.
    let q = restored.parse_and_bind(university::Q1).unwrap();
    let answer = oracle_answer(&restored, &q);
    assert_eq!(answer.certain().len(), 1);
    assert_eq!(
        answer.certain()[0].values(),
        &[Value::text("Hedy"), Value::text("Kelly")]
    );
    assert_eq!(answer.maybe().len(), 1);
    for s in strategies() {
        let (a, _) =
            run_strategy(s.as_ref(), &restored, &q, SystemParams::paper_default()).unwrap();
        assert!(answer.same_classification(&a), "{}", s.name());
    }
}

#[test]
fn load_from_empty_dir_errors_cleanly() {
    let dir = std::env::temp_dir().join("fedoq_persist_empty");
    std::fs::create_dir_all(&dir).unwrap();
    let err = Federation::load_from_dir(&dir, &Correspondences::new()).unwrap_err();
    assert!(err.to_string().contains("no db"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn contradictory_predicates_eliminate_everything() {
    let fed = university::federation().unwrap();
    let q = fed
        .parse_and_bind("SELECT X.name FROM Student X WHERE X.s-no < 100 AND X.s-no > 200")
        .unwrap();
    for s in strategies() {
        let (a, _) = run_strategy(s.as_ref(), &fed, &q, SystemParams::paper_default()).unwrap();
        assert!(a.is_empty(), "{}", s.name());
    }
}
