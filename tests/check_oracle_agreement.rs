//! Property: the static analyzer's verdict agrees with the runtime
//! oracle. On generated university-shaped workloads, a plan the analyzer
//! certifies sound never yields an *overturned certain row* — every row
//! the strategy certifies certain is certain under the oracle's
//! full-information answer. (The analyzer works from schema facts alone;
//! the oracle sees every object.)

use fedoq_check::{analyze_query, PlanConfig, StrategyKind};
use fedoq_core::{
    oracle_answer, run_strategy, BasicLocalized, Centralized, ExecutionStrategy, ParallelLocalized,
};
use fedoq_query::bind;
use fedoq_sim::SystemParams;
use fedoq_workload::{generate, WorkloadParams};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn runtime_of(kind: StrategyKind) -> Box<dyn ExecutionStrategy> {
    match kind {
        StrategyKind::Ca => Box::new(Centralized),
        StrategyKind::Bl => Box::new(BasicLocalized::new()),
        StrategyKind::Pl => Box::new(ParallelLocalized::new()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// 256 generated workloads x 3 strategies: analyzer-sound plans keep
    /// every certified-certain row certain under the oracle.
    #[test]
    fn sound_plans_never_overturn_certain_rows(seed in 0u64..100_000, n_db in 2usize..5) {
        let mut params = WorkloadParams::paper_default().scaled(0.008);
        params.n_db = n_db;
        let config = params.sample(&mut StdRng::seed_from_u64(seed));
        let sample = generate(&config, seed);
        let fed = &sample.federation;
        let schema = fed.global_schema();
        let query = bind(&sample.query, schema).unwrap();
        let truth = oracle_answer(fed, &query);
        for kind in StrategyKind::ALL {
            let report = analyze_query(&query, schema, kind, &PlanConfig::default());
            prop_assert!(
                report.is_sound(),
                "derived {kind} plan flagged unsound on seed {seed}: {}\n{report}",
                sample.query
            );
            let (answer, _) = run_strategy(
                runtime_of(kind).as_ref(),
                fed,
                &query,
                SystemParams::paper_default(),
            )
            .unwrap();
            let certified = answer.certain_goids();
            let oracle_certain = truth.certain_goids();
            prop_assert!(
                certified.is_subset(&oracle_certain),
                "{kind} certified rows the oracle overturns on seed {seed}: {:?} not in {:?}\n\
                 query: {}",
                certified.difference(&oracle_certain).collect::<Vec<_>>(),
                oracle_certain,
                sample.query
            );
        }
    }
}
