//! Calibration tests for the cost-based planner: the model's ranking
//! must agree with what the simulation actually measures, and the EWMA
//! feedback loop must converge onto the measured winner.
//!
//! These run the fig-9 workload (the Table-2 generator at the paper's
//! 3000-objects-per-class point, scaled down) — the regime where the
//! paper's own figures separate CA from the localized strategies — plus
//! the university running example.

use fedoq::plan::PipelineKnobs;
use fedoq::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Measured response time of one uniform plan, µs.
fn measure(kind: PlanKind, fed: &Federation, query: &BoundQuery) -> f64 {
    let strategy: Box<dyn ExecutionStrategy> = match kind {
        PlanKind::Centralized => Box::new(Centralized),
        PlanKind::BasicLocalized => Box::new(BasicLocalized::new()),
        _ => Box::new(ParallelLocalized::new()),
    };
    let (_, metrics) =
        run_strategy(strategy.as_ref(), fed, query, SystemParams::paper_default()).unwrap();
    metrics.response_us
}

/// The uniform plan kinds the calibration compares (hybrid has no
/// uniform fixed twin to measure against).
const UNIFORM: [PlanKind; 3] = [
    PlanKind::Centralized,
    PlanKind::BasicLocalized,
    PlanKind::ParallelLocalized,
];

/// Asserts the model's cheapest uniform plan is measurably (near-)best:
/// its simulated response time within `slack` of the true minimum.
fn check_calibrated(fed: &Federation, query: &BoundQuery, slack: f64, label: &str) {
    let catalog = collect_catalog(fed, SystemParams::paper_default());
    let choice = choose(
        &catalog,
        fed.global_schema(),
        query,
        &PipelineKnobs::baseline(),
        query_fingerprint(query),
        false,
    );
    let predicted = choice.best().kind;
    let measured: Vec<(PlanKind, f64)> = UNIFORM
        .iter()
        .map(|&k| (k, measure(k, fed, query)))
        .collect();
    let best = measured
        .iter()
        .map(|(_, us)| *us)
        .fold(f64::INFINITY, f64::min);
    let predicted_us = measured
        .iter()
        .find(|(k, _)| *k == predicted)
        .map(|(_, us)| *us)
        .expect("choose only ranks uniform kinds here");
    assert!(
        predicted_us <= best * slack,
        "{label}: model picked {} ({predicted_us:.0} µs) but the measured best is {:.0} µs \
         (ranking: {})",
        predicted.label(),
        best,
        measured
            .iter()
            .map(|(k, us)| format!("{} {us:.0}us", k.label()))
            .collect::<Vec<_>>()
            .join(", "),
    );
}

#[test]
fn model_ranking_matches_measurement_on_fig9() {
    let mut params = WorkloadParams::paper_default();
    // 3000 objects/class at 2% scale keeps extents non-trivial while
    // the three strategies all run in milliseconds.
    params.objects_per_class = 54..=66;
    for seed in 0..6u64 {
        let config = params.sample(&mut StdRng::seed_from_u64(seed));
        let sample = fedoq::workload::generate(&config, seed);
        let query = bind(&sample.query, sample.federation.global_schema()).unwrap();
        check_calibrated(
            &sample.federation,
            &query,
            1.15,
            &format!("fig9 seed {seed}"),
        );
    }
}

#[test]
fn model_ranking_matches_measurement_on_the_university() {
    let fed = fedoq::workload::university::federation().unwrap();
    let q1 = fed.parse_and_bind(fedoq::workload::university::Q1).unwrap();
    check_calibrated(&fed, &q1, 1.15, "university Q1");
}

#[test]
fn feedback_converges_on_the_measured_winner() {
    // After a few adaptive rounds the blended score is dominated by
    // observation, so the executed plan must be the measured-best
    // uniform plan (or tie it within 10%).
    let fed = fedoq::workload::university::federation().unwrap();
    let q1 = fed.parse_and_bind(fedoq::workload::university::Q1).unwrap();
    let mut catalog = collect_catalog(&fed, SystemParams::paper_default());
    let mut last = None;
    for _ in 0..5 {
        last =
            Some(run_adaptive(&fed, &q1, &mut catalog, PipelineConfig::default(), None).unwrap());
    }
    let last = last.expect("five rounds ran");

    let best_measured = UNIFORM
        .iter()
        .map(|&k| measure(k, &fed, &q1))
        .fold(f64::INFINITY, f64::min);
    assert!(
        last.metrics.response_us <= best_measured * 1.10,
        "converged plan {} measured {:.0} µs vs best uniform {:.0} µs",
        last.executed.label(),
        last.metrics.response_us,
        best_measured
    );

    // The winner's ranking entry is observation-backed by now.
    let winner = last
        .choice
        .plan(last.executed)
        .expect("executed plan is ranked");
    assert!(
        winner.confidence > 0.5,
        "after five rounds the winner's confidence is only {:.2}",
        winner.confidence
    );
    assert!(
        winner.observed_us.is_some(),
        "winner carries no observed response time"
    );
}

#[test]
fn stale_catalog_fires_the_fq106_lint_until_refreshed() {
    // Calibration depends on the catalog describing the live
    // federation; the FQ106 staleness lint is the guard rail.
    let mut fed = fedoq::workload::university::federation().unwrap();
    let mut catalog = collect_catalog(&fed, SystemParams::paper_default());
    let report = fedoq::check::analyze_staleness("plan", catalog.generation(), fed.generation());
    assert!(!report.fired("FQ106"), "fresh catalog flagged stale");

    fed.mutate(DbId::new(0), |db| {
        db.insert_named("Teacher", &[("name", Value::text("Zelda"))])
            .map(|_| ())
    })
    .unwrap();
    let report = fedoq::check::analyze_staleness("plan", catalog.generation(), fed.generation());
    assert!(report.fired("FQ106"), "stale catalog not flagged");

    refresh_catalog(&mut catalog, &fed);
    let report = fedoq::check::analyze_staleness("plan", catalog.generation(), fed.generation());
    assert!(!report.fired("FQ106"), "refreshed catalog still flagged");
}
