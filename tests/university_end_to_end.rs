//! End-to-end reproduction of the paper's running example (Section 2):
//! every strategy must answer Q1 with certain `(Hedy, Kelly)` and maybe
//! `(Tony, Haley)`, matching the walkthrough of Figures 6 and 7.

use fedoq::prelude::*;
use fedoq::workload::university;

fn strategies() -> Vec<Box<dyn ExecutionStrategy>> {
    vec![
        Box::new(Centralized),
        Box::new(BasicLocalized::new()),
        Box::new(ParallelLocalized::new()),
        Box::new(BasicLocalized::with_signatures()),
        Box::new(ParallelLocalized::with_signatures()),
    ]
}

#[test]
fn q1_answer_matches_the_paper_for_every_strategy() {
    let fed = university::federation().unwrap();
    let q1 = fed.parse_and_bind(university::Q1).unwrap();
    for strategy in strategies() {
        let (answer, metrics) =
            run_strategy(strategy.as_ref(), &fed, &q1, SystemParams::paper_default()).unwrap();
        assert_eq!(
            answer.certain().len(),
            1,
            "{}: expected exactly the certain result (Hedy, Kelly)",
            strategy.name()
        );
        assert_eq!(
            answer.certain()[0].values(),
            &[Value::text("Hedy"), Value::text("Kelly")],
            "{}",
            strategy.name()
        );
        assert_eq!(answer.maybe().len(), 1, "{}", strategy.name());
        assert_eq!(
            answer.maybe()[0].row().values(),
            &[Value::text("Tony"), Value::text("Haley")],
            "{}",
            strategy.name()
        );
        // Tony stays maybe on the address and speciality conjuncts only.
        let unsolved: Vec<usize> = answer.maybe()[0]
            .unsolved()
            .map(fedoq::prelude::PredId::index)
            .collect();
        assert_eq!(unsolved, vec![0, 1], "{}", strategy.name());
        assert!(metrics.total_execution_us > 0.0);
        assert!(metrics.response_us > 0.0);
        assert!(metrics.total_execution_us >= metrics.response_us);
    }
}

#[test]
fn all_strategies_agree_with_the_oracle_on_q1() {
    let fed = university::federation().unwrap();
    let q1 = fed.parse_and_bind(university::Q1).unwrap();
    let truth = oracle_answer(&fed, &q1);
    for strategy in strategies() {
        let (answer, _) =
            run_strategy(strategy.as_ref(), &fed, &q1, SystemParams::paper_default()).unwrap();
        assert!(
            truth.same_classification(&answer),
            "{} disagrees with the oracle: {answer} vs {truth}",
            strategy.name()
        );
    }
}

/// The paper's Figure-7 walkthrough, probed through query variations.
#[test]
fn figure_7_intermediate_conclusions_hold() {
    let fed = university::federation().unwrap();

    // John (s1/s2') is eliminated because his DB2 copy fails the address
    // predicate — so a query on address alone keeps Hedy and Fanny
    // certain, keeps Tony and Mary maybe, and drops John.
    let q = fed
        .parse_and_bind("SELECT X.name FROM Student X WHERE X.address.city = 'Taipei'")
        .unwrap();
    for strategy in strategies() {
        let (answer, _) =
            run_strategy(strategy.as_ref(), &fed, &q, SystemParams::paper_default()).unwrap();
        let certain: Vec<&Value> = answer.certain().iter().map(|r| &r.values()[0]).collect();
        assert_eq!(
            certain,
            [&Value::text("Hedy"), &Value::text("Fanny")],
            "{}",
            strategy.name()
        );
        let maybe: Vec<&Value> = answer
            .maybe()
            .iter()
            .map(|r| &r.row().values()[0])
            .collect();
        assert_eq!(
            maybe,
            [&Value::text("Tony"), &Value::text("Mary")],
            "{}",
            strategy.name()
        );
    }

    // Mary is eliminated in Q1 because Abel's assistant t1'' (DB3) puts
    // him in EE: the department predicate alone already removes her.
    let q = fed
        .parse_and_bind("SELECT X.name FROM Student X WHERE X.advisor.department.name = 'CS'")
        .unwrap();
    for strategy in strategies() {
        let (answer, _) =
            run_strategy(strategy.as_ref(), &fed, &q, SystemParams::paper_default()).unwrap();
        let names: Vec<&Value> = answer.certain().iter().map(|r| &r.values()[0]).collect();
        // John, Tony (via DB1) are certain; Hedy via the t2'' check.
        assert!(names.contains(&&Value::text("John")), "{}", strategy.name());
        assert!(names.contains(&&Value::text("Tony")), "{}", strategy.name());
        assert!(names.contains(&&Value::text("Hedy")), "{}", strategy.name());
        assert!(
            !answer
                .maybe()
                .iter()
                .any(|r| r.row().values()[0] == Value::text("Mary")),
            "{}: Mary must be eliminated by the EE assistant",
            strategy.name()
        );
        assert!(
            !names.contains(&&Value::text("Mary")),
            "{}",
            strategy.name()
        );
    }
}

/// The localized strategies project only local attributes, but certify
/// across sites: a query solvable only by combining two sites still comes
/// out certain.
#[test]
fn cross_site_certification_promotes_maybe_to_certain() {
    let fed = university::federation().unwrap();
    // age exists only in DB1, address only in DB2: only John's two copies
    // jointly satisfy both.
    let q = fed
        .parse_and_bind(
            "SELECT X.name FROM Student X WHERE X.age > 30 AND X.address.city = 'HsinChu'",
        )
        .unwrap();
    let truth = oracle_answer(&fed, &q);
    assert_eq!(truth.certain().len(), 1);
    assert_eq!(truth.certain()[0].values(), &[Value::text("John")]);
    for strategy in strategies() {
        let (answer, _) =
            run_strategy(strategy.as_ref(), &fed, &q, SystemParams::paper_default()).unwrap();
        assert!(
            truth.same_classification(&answer),
            "{}: {answer} vs oracle {truth}",
            strategy.name()
        );
        assert_eq!(
            answer.certain()[0].values(),
            &[Value::text("John")],
            "{}",
            strategy.name()
        );
    }
}

#[test]
fn response_times_order_as_the_paper_reports() {
    let fed = university::federation().unwrap();
    let q1 = fed.parse_and_bind(university::Q1).unwrap();
    let (_, ca) = run_strategy(&Centralized, &fed, &q1, SystemParams::paper_default()).unwrap();
    let (_, bl) = run_strategy(
        &BasicLocalized::new(),
        &fed,
        &q1,
        SystemParams::paper_default(),
    )
    .unwrap();
    let (_, pl) = run_strategy(
        &ParallelLocalized::new(),
        &fed,
        &q1,
        SystemParams::paper_default(),
    )
    .unwrap();
    // The localized approaches ship far fewer bytes than shipping every
    // involved extent.
    assert!(bl.bytes_transferred < ca.bytes_transferred);
    assert!(pl.bytes_transferred < ca.bytes_transferred);
    // And answer faster.
    assert!(bl.response_us < ca.response_us);
    assert!(pl.response_us < ca.response_us);
}
