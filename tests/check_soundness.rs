//! The checker's core contract: every shipped example passes clean, and
//! every seeded-unsound input is rejected with its stable lint id.

use fedoq_check::{analyze_all, analyze_query, check_protocol, PlanConfig, StrategyKind};
use fedoq_query::bind;
use fedoq_workload::{generate, university, WorkloadParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Queries shipped with the repository's examples and tutorial.
const SHIPPED_QUERIES: &[&str] = &[
    university::Q1,
    "SELECT X.name FROM Student X WHERE X.address.city = 'Taipei'",
    "SELECT X.name FROM Student X WHERE X.advisor.department.name = 'CS'",
    "SELECT X.name, X.address.city FROM Student X WHERE X.age >= 20",
];

#[test]
fn shipped_examples_pass_clean() {
    let fed = university::federation().unwrap();
    for sql in SHIPPED_QUERIES {
        let bound = fed.parse_and_bind(sql).unwrap();
        for report in analyze_all(&bound, fed.global_schema()) {
            assert!(report.is_sound(), "{sql}\n{report}");
        }
    }
}

#[test]
fn generated_workload_plans_pass_clean() {
    let params = WorkloadParams::paper_default().scaled(0.02);
    for seed in 0..12u64 {
        let config = params.sample(&mut StdRng::seed_from_u64(seed));
        let sample = generate(&config, seed);
        let bound = bind(&sample.query, sample.federation.global_schema()).unwrap();
        for report in analyze_all(&bound, sample.federation.global_schema()) {
            assert!(report.is_sound(), "seed {seed}: {}\n{report}", sample.query);
        }
    }
}

#[test]
fn protocol_audit_passes_clean_on_the_university_example() {
    let fed = university::federation().unwrap();
    let bound = fed.parse_and_bind(university::Q1).unwrap();
    let report = check_protocol(&fed, &bound);
    assert!(report.is_sound(), "{report}");
}

#[test]
fn all_fourteen_seeded_unsound_inputs_are_rejected_with_stable_ids() {
    let cases = fedoq_check::self_test().unwrap_or_else(|e| panic!("{e}"));
    let ids: Vec<(&str, &str)> = cases.iter().map(|c| (c.name, c.expect)).collect();
    assert_eq!(
        ids,
        vec![
            ("phase-order", "FQ100"),
            ("uncovered-maybe", "FQ101"),
            ("incapable-certifier", "FQ102"),
            ("orphaned-rpc", "FQ202"),
            ("double-reply", "FQ201"),
            ("lock-order-cycle", "FQ300"),
            ("lockset-race", "FQ301"),
            ("condvar-wakeup-loss", "FQ302"),
            ("schedule-divergent-answer", "FQ303"),
            ("ghost-wire-variant", "FQ304"),
            ("unbounded-value-depth", "FQ305"),
            ("silent-grammar-change", "FQ306"),
            ("replan-overlap", "FQ307"),
            ("live-unfounded-flip", "FQ308"),
        ]
    );
    for case in &cases {
        assert!(
            !case.report.is_sound(),
            "`{}` must be deny-level: {}",
            case.name,
            case.report
        );
    }
}

#[test]
fn warnings_do_not_fail_soundness_but_are_reported() {
    let fed = university::federation().unwrap();
    let bound = fed
        .parse_and_bind("SELECT X.name FROM Student X WHERE X.age > 30 AND X.age < 20")
        .unwrap();
    let report = analyze_query(
        &bound,
        fed.global_schema(),
        StrategyKind::Ca,
        &PlanConfig::default(),
    );
    assert!(report.fired("FQ103"), "{report}");
    assert!(report.is_sound(), "FQ103 is warn-level: {report}");
}
