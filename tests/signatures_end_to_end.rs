//! The signature extension end-to-end: identical answers, reduced
//! assistant-check traffic on equality workloads.

use fedoq::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn signatures_never_change_answers() {
    let mut params = WorkloadParams::paper_default().scaled(0.01);
    params.eq_predicates = true;
    params.preds_per_class = 1..=3;
    for seed in 0..30u64 {
        let config = params.sample(&mut StdRng::seed_from_u64(seed));
        let sample = fedoq::workload::generate(&config, seed);
        let query = bind(&sample.query, sample.federation.global_schema()).unwrap();
        let (plain, _) = run_strategy(
            &BasicLocalized::new(),
            &sample.federation,
            &query,
            SystemParams::paper_default(),
        )
        .unwrap();
        for strategy in [
            &BasicLocalized::with_signatures() as &dyn ExecutionStrategy,
            &ParallelLocalized::with_signatures(),
        ] {
            let (sig, _) = run_strategy(
                strategy,
                &sample.federation,
                &query,
                SystemParams::paper_default(),
            )
            .unwrap();
            assert!(
                plain.same_classification(&sig),
                "{} changed the answer on seed {seed}: {sig} vs {plain}",
                strategy.name()
            );
        }
    }
}

#[test]
fn signatures_reduce_transfer_on_equality_workloads() {
    let mut params = WorkloadParams::paper_default().scaled(0.03);
    params.eq_predicates = true;
    params.preds_per_class = 2..=3;
    let mut plain_bytes = 0u64;
    let mut sig_bytes = 0u64;
    for seed in 100..120u64 {
        let config = params.sample(&mut StdRng::seed_from_u64(seed));
        let sample = fedoq::workload::generate(&config, seed);
        let query = bind(&sample.query, sample.federation.global_schema()).unwrap();
        let (_, plain) = run_strategy(
            &BasicLocalized::new(),
            &sample.federation,
            &query,
            SystemParams::paper_default(),
        )
        .unwrap();
        let (_, sig) = run_strategy(
            &BasicLocalized::with_signatures(),
            &sample.federation,
            &query,
            SystemParams::paper_default(),
        )
        .unwrap();
        plain_bytes += plain.bytes_transferred;
        sig_bytes += sig.bytes_transferred;
        assert!(
            sig.bytes_transferred <= plain.bytes_transferred,
            "seed {seed}: signatures increased transfer"
        );
    }
    assert!(
        sig_bytes < plain_bytes,
        "signatures saved nothing across 20 equality workloads ({sig_bytes} vs {plain_bytes})"
    );
}

/// A hand-built case where the signature provably prunes: the assistant
/// holds a non-null value different from the literal, so the requesting
/// site eliminates without any transfer.
#[test]
fn signature_prunes_a_definite_violation_without_transfer() {
    let schema_a = ComponentSchema::new(vec![
        ClassDef::new("Item")
            .attr("iid", AttrType::int())
            .key(["iid"]),
        ClassDef::new("Owner")
            .attr("oid", AttrType::int())
            .attr("item", AttrType::complex("Item"))
            .key(["oid"]),
    ])
    .unwrap();
    let schema_b = ComponentSchema::new(vec![ClassDef::new("Item")
        .attr("iid", AttrType::int())
        .attr("color", AttrType::text())
        .key(["iid"])])
    .unwrap();
    let mut db0 = ComponentDb::new(DbId::new(0), "DB0", schema_a);
    let mut db1 = ComponentDb::new(DbId::new(1), "DB1", schema_b);
    let i0 = db0.insert_named("Item", &[("iid", Value::Int(1))]).unwrap();
    db1.insert_named(
        "Item",
        &[("iid", Value::Int(1)), ("color", Value::text("red"))],
    )
    .unwrap();
    db0.insert_named("Owner", &[("oid", Value::Int(1)), ("item", Value::Ref(i0))])
        .unwrap();
    let fed = Federation::new(vec![db0, db1], &Correspondences::new()).unwrap();
    let q = fed
        .parse_and_bind("SELECT X.oid FROM Owner X WHERE X.item.color = 'blue'")
        .unwrap();

    let (plain_answer, plain) = run_strategy(
        &BasicLocalized::new(),
        &fed,
        &q,
        SystemParams::paper_default(),
    )
    .unwrap();
    let (sig_answer, sig) = run_strategy(
        &BasicLocalized::with_signatures(),
        &fed,
        &q,
        SystemParams::paper_default(),
    )
    .unwrap();
    // Both eliminate the owner (red != blue) …
    assert!(plain_answer.is_empty());
    assert!(sig_answer.is_empty());
    // … but the signature variant never ships the check request or reply.
    assert!(
        sig.bytes_transferred < plain.bytes_transferred,
        "sig {} vs plain {}",
        sig.bytes_transferred,
        plain.bytes_transferred
    );
    assert!(sig.messages < plain.messages);
}

/// When the assistant's attribute is null, the signature's null marker
/// forces the remote check (pruning would change maybe into eliminated).
#[test]
fn null_marker_prevents_unsound_pruning() {
    let schema_a = ComponentSchema::new(vec![
        ClassDef::new("Item")
            .attr("iid", AttrType::int())
            .key(["iid"]),
        ClassDef::new("Owner")
            .attr("oid", AttrType::int())
            .attr("item", AttrType::complex("Item"))
            .key(["oid"]),
    ])
    .unwrap();
    let schema_b = ComponentSchema::new(vec![ClassDef::new("Item")
        .attr("iid", AttrType::int())
        .attr("color", AttrType::text())
        .key(["iid"])])
    .unwrap();
    let mut db0 = ComponentDb::new(DbId::new(0), "DB0", schema_a);
    let mut db1 = ComponentDb::new(DbId::new(1), "DB1", schema_b);
    let i0 = db0.insert_named("Item", &[("iid", Value::Int(1))]).unwrap();
    db1.insert_named("Item", &[("iid", Value::Int(1))]).unwrap(); // color null
    db0.insert_named("Owner", &[("oid", Value::Int(1)), ("item", Value::Ref(i0))])
        .unwrap();
    let fed = Federation::new(vec![db0, db1], &Correspondences::new()).unwrap();
    let q = fed
        .parse_and_bind("SELECT X.oid FROM Owner X WHERE X.item.color = 'blue'")
        .unwrap();
    let (answer, _) = run_strategy(
        &BasicLocalized::with_signatures(),
        &fed,
        &q,
        SystemParams::paper_default(),
    )
    .unwrap();
    // Must stay maybe, not be eliminated by the signature miss.
    assert_eq!(answer.maybe().len(), 1);
    assert!(answer.certain().is_empty());
}
