//! Differential testing of the parallel/batched execution pipeline:
//! every `PipelineConfig` — any thread count, any chunk granularity, any
//! probe batch size, cache on or off, cold or warm — must produce an
//! answer *byte-identical* to the legacy sequential execution: same
//! certain rows with the same values, same maybe rows with the same
//! unsolved conjuncts and the same provenance.
//!
//! The pipeline is a pure cost/latency optimization; any divergence here
//! is a bug in chunk merging, fragment reassembly, or cache coherence.

use fedoq::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;

const THREADS: [usize; 3] = [1, 2, 8];
const BATCHES: [usize; 3] = [1, 4, 64];
/// A prime chunk size stresses partial-chunk merge boundaries; 256 is
/// the library default (one chunk on small extents).
const CHUNKS: [usize; 2] = [7, 256];

/// Builds maintained single-attribute indexes on every indexable
/// attribute at every site, so `PipelineConfig::index` runs actually
/// exercise the index-seeded scan paths (without any index they silently
/// fall back to the full scans the baseline uses).
fn with_indexes(mut fed: Federation) -> Federation {
    use fedoq::object::ClassId;
    let ids: Vec<DbId> = fed.dbs().iter().map(ComponentDb::id).collect();
    for db_id in ids {
        fed.mutate(db_id, |db| {
            let mut specs = Vec::new();
            for i in 0..db.schema().len() {
                let def = db.schema().class(ClassId::new(i as u32));
                for attr in def.attrs() {
                    specs.push((def.name().to_owned(), attr.name().to_owned()));
                }
            }
            for (class, attr) in specs {
                // Non-indexable (float/complex/multi) attributes error;
                // every indexable one gets an index.
                let _ = db.create_index(&class, &[&attr]);
            }
            Ok(())
        })
        .unwrap();
    }
    fed
}

fn strategies() -> Vec<Box<dyn ExecutionStrategy>> {
    vec![
        Box::new(Centralized),
        Box::new(BasicLocalized::new()),
        Box::new(ParallelLocalized::new()),
        Box::new(BasicLocalized::with_signatures()),
        Box::new(ParallelLocalized::with_signatures()),
    ]
}

/// Runs every strategy under every pipeline shape and compares against
/// the legacy sequential answer with full structural equality.
fn check_all_configs(fed: &Federation, query: &BoundQuery, label: &str) {
    let params = SystemParams::paper_default();
    for strategy in strategies() {
        let (baseline, _) = run_strategy(strategy.as_ref(), fed, query, params).unwrap();
        for threads in THREADS {
            for batch in BATCHES {
                for chunk in CHUNKS {
                    for cached in [false, true] {
                        for indexed in [false, true] {
                            let pipeline = PipelineConfig {
                                threads,
                                chunk,
                                batch,
                                cache: cached,
                                index: indexed,
                            };
                            let cache = RefCell::new(LookupCache::default());
                            let copt = cached.then_some(&cache);
                            let (cold, _) = run_strategy_with_pipeline(
                                strategy.as_ref(),
                                fed,
                                query,
                                params,
                                pipeline,
                                copt,
                            )
                            .unwrap();
                            assert_eq!(
                                cold,
                                baseline,
                                "{label}: {} diverged under threads={threads} chunk={chunk} \
                                 batch={batch} cache={cached} index={indexed} (cold)",
                                strategy.name(),
                            );
                            if cached {
                                // A second run answers warm probes from the
                                // cache — the answer must not move.
                                let (warm, _) = run_strategy_with_pipeline(
                                    strategy.as_ref(),
                                    fed,
                                    query,
                                    params,
                                    pipeline,
                                    copt,
                                )
                                .unwrap();
                                assert_eq!(
                                    warm,
                                    baseline,
                                    "{label}: {} diverged under threads={threads} \
                                     chunk={chunk} batch={batch} index={indexed} (warm cache)",
                                    strategy.name(),
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn university_q1_is_pipeline_invariant() {
    let fed = with_indexes(fedoq::workload::university::federation().unwrap());
    let q1 = fed.parse_and_bind(fedoq::workload::university::Q1).unwrap();
    check_all_configs(&fed, &q1, "university Q1");
}

#[test]
fn generated_workloads_are_pipeline_invariant() {
    let params = WorkloadParams::paper_default().scaled(0.01);
    for seed in 0..4u64 {
        let config = params.sample(&mut StdRng::seed_from_u64(seed));
        let sample = fedoq::workload::generate(&config, seed);
        let fed = with_indexes(sample.federation);
        let query = bind(&sample.query, fed.global_schema()).unwrap();
        check_all_configs(&fed, &query, &format!("generated seed {seed}"));
    }
}

#[test]
fn warm_cache_actually_hits_on_the_university_workload() {
    // Guard against the differential tests passing vacuously: on Q1 the
    // localized strategies do issue probes, and the second run must
    // answer some of them from the cache.
    let fed = fedoq::workload::university::federation().unwrap();
    let q1 = fed.parse_and_bind(fedoq::workload::university::Q1).unwrap();
    let params = SystemParams::paper_default();
    let pipeline = PipelineConfig::parallel(8).with_batch(4).with_cache();
    for strategy in [
        &Centralized as &dyn ExecutionStrategy,
        &BasicLocalized::new(),
        &ParallelLocalized::new(),
    ] {
        let cache = RefCell::new(LookupCache::default());
        let (_, cold) =
            run_strategy_with_pipeline(strategy, &fed, &q1, params, pipeline, Some(&cache))
                .unwrap();
        let (_, warm) =
            run_strategy_with_pipeline(strategy, &fed, &q1, params, pipeline, Some(&cache))
                .unwrap();
        let stats = cache.borrow().stats();
        assert!(
            stats.hits > 0,
            "{}: warm run never hit the cache",
            strategy.name()
        );
        assert!(
            warm.bytes_transferred < cold.bytes_transferred,
            "{}: warm run moved no fewer bytes ({} vs {})",
            strategy.name(),
            warm.bytes_transferred,
            cold.bytes_transferred
        );
    }
}
