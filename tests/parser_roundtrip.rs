//! Property tests for the SQL/X parser: rendering a parsed query and
//! reparsing it yields the same AST, for the whole grammar.

use fedoq::prelude::*;
use proptest::prelude::*;

fn arb_ident() -> impl Strategy<Value = String> {
    // Reserved words cannot be identifiers (as in unquoted SQL).
    "[a-zA-Z][a-zA-Z0-9_]{0,8}(-[a-z0-9]{1,4})?".prop_filter("not a keyword", |s| {
        let upper = s.to_ascii_uppercase();
        !["SELECT", "FROM", "WHERE", "AND", "OR", "TRUE", "FALSE"].contains(&upper.as_str())
    })
}

fn arb_path() -> impl Strategy<Value = String> {
    proptest::collection::vec(arb_ident(), 1..4).prop_map(|steps| steps.join("."))
}

fn arb_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn arb_literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        (-1000.0..1000.0f64).prop_map(|f| Value::Float((f * 4.0).round() / 4.0)),
        "[a-zA-Z '.]{0,12}".prop_map(Value::Text),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        arb_ident(),
        proptest::collection::vec(arb_path(), 1..4),
        proptest::collection::vec((arb_path(), arb_op(), arb_literal()), 0..4),
    )
        .prop_map(|(class, targets, preds)| {
            let mut q = Query::new(class);
            for t in targets {
                q = q.target(&t);
            }
            for (p, op, lit) in preds {
                q = q.filter(&p, op, lit);
            }
            q
        })
}

proptest! {
    #[test]
    fn display_then_parse_is_identity(q in arb_query()) {
        let rendered = q.to_string();
        let reparsed = parse(&rendered)
            .unwrap_or_else(|e| panic!("failed to reparse {rendered:?}: {e}"));
        prop_assert_eq!(reparsed, q);
    }

    #[test]
    fn keywords_survive_as_quoted_literals(word in "(?i)(select|from|where|and|true|false)") {
        // A string literal spelled like a keyword must not confuse the
        // parser when quoted.
        let sql = format!("SELECT X.name FROM C X WHERE X.name = '{word}'");
        let q = parse(&sql).unwrap();
        prop_assert_eq!(q.predicates()[0].literal(), &Value::text(word));
    }

    #[test]
    fn garbage_never_panics(input in ".{0,60}") {
        let _ = parse(&input); // must return Ok or Err, never panic
    }
}

#[test]
fn float_and_negative_literals_round_trip() {
    let q = Query::new("C")
        .target("a")
        .filter("x", CmpOp::Lt, Value::Float(2.25))
        .filter("y", CmpOp::Ge, Value::Int(-17));
    assert_eq!(parse(&q.to_string()).unwrap(), q);
}

#[test]
fn bool_literals_round_trip() {
    let q = Query::new("C")
        .target("a")
        .filter("flag", CmpOp::Eq, Value::Bool(false));
    assert_eq!(parse(&q.to_string()).unwrap(), q);
}
