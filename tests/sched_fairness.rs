//! Fairness and liveness suite for the concurrent scheduler: no query
//! starves, deadlines are only missed under faults or real pressure,
//! priorities shorten waits, and a crash mid-query never orphans an RPC
//! or certifies a site's verdicts twice (the wire log is audited by the
//! same FQ201/FQ202 analyzers the serial protocol checker uses).
//!
//! Every assertion message carries the scenario seed; re-running with
//! that seed reproduces the failing schedule exactly.

use fedoq_check::protocol::{analyze_run, Event, ProtocolRun};
use fedoq_check::Report;
use fedoq_sched::{
    mixed_specs, FaultScript, QuerySpec, QueryVerdict, SchedConfig, SchedSim, SchedStrategy,
    TraceEvent,
};
use fedoq_sim::Site;
use fedoq_workload::university;
use std::collections::BTreeMap;

fn quick() -> bool {
    std::env::var("FEDOQ_QUICK").is_ok()
}

fn seeds() -> Vec<u64> {
    if quick() {
        vec![11]
    } else {
        vec![11, 202, 4242]
    }
}

#[test]
fn no_query_starves_under_contention() {
    let fed = university::federation().expect("federation");
    for seed in seeds() {
        let n = if quick() { 24 } else { 64 };
        let specs: Vec<QuerySpec> = mixed_specs(n, seed)
            .into_iter()
            .map(|mut spec| {
                spec.deadline_us = None;
                spec
            })
            .collect();
        let config = SchedConfig {
            max_inflight: 4,
            ..SchedConfig::default()
        };
        let run = SchedSim::new(seed)
            .with_config(config)
            .run(&fed, &specs)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        for outcome in &run.outcome.queries {
            assert!(
                matches!(outcome.verdict, QueryVerdict::Answered(_)),
                "seed {seed} query {}: starved or failed without faults: {:?}",
                outcome.id,
                outcome.verdict
            );
        }
        // Admission is strict-priority but work-conserving: every
        // submitted query must eventually win a slot.
        for spec in &specs {
            let admitted = run
                .outcome
                .trace
                .iter()
                .any(|e| matches!(e, TraceEvent::Admitted { query, .. } if *query == spec.id));
            assert!(admitted, "seed {seed} query {}: never admitted", spec.id);
        }
    }
}

#[test]
fn deadlines_hold_when_healthy() {
    let fed = university::federation().expect("federation");
    for seed in seeds() {
        // Generous (but real) deadlines on every query: a healthy run
        // at default capacity must miss none of them.
        let specs: Vec<QuerySpec> = mixed_specs(if quick() { 16 } else { 32 }, seed)
            .into_iter()
            .map(|mut spec| {
                spec.deadline_us = Some(60_000_000.0);
                spec
            })
            .collect();
        let run = SchedSim::new(seed)
            .run(&fed, &specs)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        for outcome in &run.outcome.queries {
            assert!(
                !outcome.verdict.deadline_missed(),
                "seed {seed} query {}: missed a 60s deadline on a healthy run \
                 (submitted {} started {} finished {})",
                outcome.id,
                outcome.submitted_us,
                outcome.started_us,
                outcome.finished_us
            );
        }
    }
}

#[test]
fn higher_priority_waits_no_longer_on_average() {
    let fed = university::federation().expect("federation");
    for seed in seeds() {
        // 40 identical queries arriving together, alternating between
        // the lowest and highest priority, squeezed through 2 slots.
        let specs: Vec<QuerySpec> = (0..40u64)
            .map(|i| QuerySpec {
                id: i,
                sql: university::Q1.to_string(),
                priority: if i % 2 == 0 { 0 } else { 3 },
                deadline_us: None,
                arrival_us: 0.0,
                strategy: SchedStrategy::Fixed(fedoq_sched::DistributedStrategy::bl()),
            })
            .collect();
        let config = SchedConfig {
            max_inflight: 2,
            ..SchedConfig::default()
        };
        let run = SchedSim::new(seed)
            .with_config(config)
            .run(&fed, &specs)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let mean_wait = |priority: u8| -> f64 {
            let waits: Vec<f64> = run
                .outcome
                .queries
                .iter()
                .filter(|o| specs[o.id as usize].priority == priority)
                .map(|o| o.started_us - o.submitted_us)
                .collect();
            waits.iter().sum::<f64>() / waits.len() as f64
        };
        let (high, low) = (mean_wait(3), mean_wait(0));
        assert!(
            high <= low,
            "seed {seed}: priority 3 waited longer than priority 0 \
             on average ({high:.0}us vs {low:.0}us)"
        );
    }
}

/// Wire events touching any faulted site, removed before protocol
/// analysis: a request delivered to a site that then crashed *looks*
/// orphaned on the wire even though the scheduler handled the loss.
fn touches(event: &fedoq_sched::WireEvent, faulted: &[fedoq_object::DbId]) -> bool {
    faulted
        .iter()
        .any(|&db| event.from == Site::Db(db) || event.to == Site::Db(db))
}

#[test]
fn crash_mid_query_never_orphans_rpcs_or_double_certifies() {
    let fed = university::federation().expect("federation");
    let script = FaultScript::CrashMidQuery {
        site: fedoq_object::DbId::new(1),
        at_us: 10_000.0,
        heal_us: 400_000.0,
    };
    for seed in seeds() {
        let specs: Vec<QuerySpec> = mixed_specs(if quick() { 8 } else { 16 }, seed)
            .into_iter()
            .map(|mut spec| {
                spec.deadline_us = None;
                spec
            })
            .collect();
        let run = SchedSim::new(seed)
            .with_script(script.clone())
            .run(&fed, &specs)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));

        // Reuse the serial protocol analyzers (FQ201 double reply,
        // FQ202 orphaned RPC, FQ203 unsolicited response) on the
        // scheduler's wire log, minus traffic with the crashed site.
        let faulted = script.faulted_sites();
        let events: Vec<Event> = run
            .wire
            .iter()
            .filter(|e| !touches(e, &faulted))
            .map(|e| Event {
                seq: e.seq,
                from: e.from,
                to: e.to,
                rpc: e.rpc,
                kind: e.kind,
                is_response: e.is_response,
            })
            .collect();
        let answer = run
            .outcome
            .queries
            .iter()
            .find_map(|o| o.verdict.answer())
            .unwrap_or_else(|| panic!("seed {seed}: no query answered at all"))
            .clone();
        let protocol = ProtocolRun {
            strategy: "SCHED",
            schedule: script.name(),
            answer: Ok(answer),
            events,
            stale: run.outcome.stale,
            retries: run.outcome.retries,
        };
        let mut report = Report::new(format!("sched crash seed {seed}"), String::new());
        analyze_run(&protocol, None, &mut report);
        assert!(
            report.diagnostics.is_empty(),
            "seed {seed}: wire-protocol diagnostics on the healthy part \
             of the wire: {:?}",
            report
                .diagnostics
                .iter()
                .map(|d| (d.lint.id, d.message.clone()))
                .collect::<Vec<_>>()
        );

        // And from the scheduler's own testimony: a site's verdicts are
        // merged at most once per query — replies past the first are
        // explicitly marked stale and discarded.
        let mut merged: BTreeMap<(u64, fedoq_object::DbId), u32> = BTreeMap::new();
        for event in &run.outcome.trace {
            if let TraceEvent::Replied {
                query,
                site,
                stale: false,
                ..
            } = event
            {
                *merged.entry((*query, *site)).or_default() += 1;
            }
        }
        for ((query, site), count) in &merged {
            assert!(
                *count <= 1,
                "seed {seed} query {query} site {site:?}: merged {count} times"
            );
        }
    }
}
