//! The target-completion extension: localized strategies fetch target
//! values their own projection cannot supply, matching what the
//! centralized strategy gets by shipping everything.

use fedoq::prelude::*;
use fedoq::workload::university;

/// In the university federation, Kelly's department location lives only
/// at DB3 — no student-hosting site can project
/// `X.advisor.department.location`.
const LOCATION_QUERY: &str = "SELECT X.name, X.advisor.department.location FROM Student X \
                              WHERE X.address.city = 'Taipei' \
                              AND X.advisor.speciality = 'database'";

#[test]
fn completion_fills_targets_only_remote_sites_hold() {
    let fed = university::federation().unwrap();
    let q = fed.parse_and_bind(LOCATION_QUERY).unwrap();

    // Without completion, the localized strategies return null for the
    // location (they only project local attributes, as in the paper).
    let (plain, plain_m) = run_strategy(
        &BasicLocalized::new(),
        &fed,
        &q,
        SystemParams::paper_default(),
    )
    .unwrap();
    let hedy = plain
        .certain()
        .iter()
        .find(|r| r.values()[0] == Value::text("Hedy"))
        .unwrap();
    assert!(hedy.values()[1].is_null());

    // With completion, the value is fetched from the assistant...
    let (completed, completed_m) = run_strategy(
        &BasicLocalized::new().completing_targets(),
        &fed,
        &q,
        SystemParams::paper_default(),
    )
    .unwrap();
    let hedy = completed
        .certain()
        .iter()
        .find(|r| r.values()[0] == Value::text("Hedy"))
        .unwrap();
    // Kelly's department is CS whose location is null at DB3 too — but
    // Kelly's own Teacher item is at DB3 with department d2'' (CS, null
    // location). The fetch happens and returns what DB3 knows.
    // Use a location-bearing case instead: Abel/EE has "building E".
    let _ = hedy;
    // ... and costs extra transfer.
    assert!(completed_m.bytes_transferred > plain_m.bytes_transferred);
    // Classification is never affected.
    assert!(plain.same_classification(&completed));
}

#[test]
fn completion_matches_centralized_target_values() {
    // Build a case where the completed value is non-null: ask for the
    // advisor's department location of students advised by Abel (EE at
    // DB3, location "building E").
    let fed = university::federation().unwrap();
    let q = fed
        .parse_and_bind(
            "SELECT X.name, X.advisor.department.location FROM Student X \
             WHERE X.s-no = 808301",
        )
        .unwrap();
    let (ca, _) = run_strategy(&Centralized, &fed, &q, SystemParams::paper_default()).unwrap();
    assert_eq!(ca.certain().len(), 1);
    assert_eq!(ca.certain()[0].values()[0], Value::text("Mary"));
    assert_eq!(ca.certain()[0].values()[1], Value::text("building E"));

    for strategy in [
        &BasicLocalized::new().completing_targets() as &dyn ExecutionStrategy,
        &ParallelLocalized::new().completing_targets(),
    ] {
        let (answer, _) = run_strategy(strategy, &fed, &q, SystemParams::paper_default()).unwrap();
        assert_eq!(answer.certain().len(), 1, "{}", strategy.name());
        assert_eq!(
            answer.certain()[0].values(),
            ca.certain()[0].values(),
            "{}: completion must match the centralized projection",
            strategy.name()
        );
    }

    // Without completion the location is null — the paper's behaviour.
    let (plain, _) = run_strategy(
        &BasicLocalized::new(),
        &fed,
        &q,
        SystemParams::paper_default(),
    )
    .unwrap();
    assert!(plain.certain()[0].values()[1].is_null());
}

#[test]
fn completion_never_changes_classification() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut params = WorkloadParams::paper_default().scaled(0.01);
    params.preds_per_class = 1..=3;
    for seed in 0..20u64 {
        let config = params.sample(&mut StdRng::seed_from_u64(seed));
        let sample = fedoq::workload::generate(&config, seed);
        let query = bind(&sample.query, sample.federation.global_schema()).unwrap();
        let truth = oracle_answer(&sample.federation, &query);
        for strategy in [
            &BasicLocalized::new().completing_targets() as &dyn ExecutionStrategy,
            &ParallelLocalized::new().completing_targets(),
            &BasicLocalized::with_signatures().completing_targets(),
        ] {
            let (answer, _) = run_strategy(
                strategy,
                &sample.federation,
                &query,
                SystemParams::paper_default(),
            )
            .unwrap();
            assert!(
                truth.same_classification(&answer),
                "seed {seed}: {} diverged",
                strategy.name()
            );
        }
    }
}
