//! Differential suite for the concurrent scheduler: whatever the
//! scheduler answers must be byte-identical to a serial run of the same
//! plan — at every concurrency level, with mid-flight replans, and
//! (degradation aside) under scripted faults.
//!
//! Every assertion message carries the scenario seed; re-running with
//! that seed reproduces the failing schedule exactly.

use fedoq_core::{run_strategy, Federation, QueryAnswer};
use fedoq_net::DistributedStrategy;
use fedoq_query::BoundQuery;
use fedoq_sched::{
    mixed_specs, FaultScript, QuerySpec, QueryVerdict, SchedConfig, SchedSim, SchedStrategy,
};
use fedoq_sim::SystemParams;
use fedoq_workload::university;

fn quick() -> bool {
    std::env::var("FEDOQ_QUICK").is_ok()
}

fn seeds() -> Vec<u64> {
    if quick() {
        vec![7]
    } else {
        vec![7, 101, 9001]
    }
}

/// The serial reference answer for an executed plan label.
///
/// `HY` mixes per-site schedules but merges and certifies exactly like
/// BL, so BL is its reference; the scheduler's other labels are the
/// strategy names themselves.
fn reference(fed: &Federation, query: &BoundQuery, executed: &str) -> QueryAnswer {
    let strategy = DistributedStrategy::parse(executed).unwrap_or_else(DistributedStrategy::bl);
    let (answer, _) = run_strategy(
        strategy.sync().as_ref(),
        fed,
        query,
        SystemParams::paper_default(),
    )
    .expect("serial reference execution");
    answer
}

#[test]
fn healthy_runs_match_serial_answers_at_every_concurrency() {
    let fed = university::federation().expect("federation");
    for seed in seeds() {
        // Deadlines off: this test is about answers, not latency.
        let specs: Vec<QuerySpec> = mixed_specs(if quick() { 8 } else { 24 }, seed)
            .into_iter()
            .map(|mut spec| {
                spec.deadline_us = None;
                spec
            })
            .collect();
        for max_inflight in [1usize, 8, 64] {
            let config = SchedConfig {
                max_inflight,
                ..SchedConfig::default()
            };
            let run = SchedSim::new(seed)
                .with_config(config)
                .run(&fed, &specs)
                .unwrap_or_else(|e| panic!("seed {seed} inflight {max_inflight}: {e}"));
            for outcome in &run.outcome.queries {
                let spec = &specs[outcome.id as usize];
                let answer = match &outcome.verdict {
                    QueryVerdict::Answered(answer) => answer,
                    other => panic!(
                        "seed {seed} inflight {max_inflight} query {}: \
                         expected an answer, got {other:?}",
                        outcome.id
                    ),
                };
                assert!(
                    outcome.degraded_sites.is_empty(),
                    "seed {seed} inflight {max_inflight} query {}: \
                     degraded without faults: {:?}",
                    outcome.id,
                    outcome.degraded_sites
                );
                let query = fed.parse_and_bind(&spec.sql).expect("bind");
                let expected = reference(&fed, &query, &outcome.executed);
                assert_eq!(
                    *answer, expected,
                    "seed {seed} inflight {max_inflight} query {} ({}): \
                     concurrent answer diverges from the serial run",
                    outcome.id, outcome.executed
                );
            }
        }
    }
}

/// The straggler workload's query: every Teacher-hosting site is
/// queried; DB1 and DB3 evaluate `department.name` locally (fast,
/// unaffected calibration points) while DB2 must be assisted — so
/// slowing DB2 makes exactly one dispatch straggle.
const TEACHER_Q: &str = "SELECT X.name FROM Teacher X WHERE X.department.name = 'CS'";

/// A workload of adaptive queries with knobs that make the straggler
/// monitor fire early.
fn straggler_specs(n: usize) -> Vec<QuerySpec> {
    (0..n)
        .map(|i| QuerySpec {
            id: i as u64,
            sql: TEACHER_Q.to_string(),
            priority: (i % 4) as u8,
            deadline_us: None,
            arrival_us: (i as f64) * 1_000.0,
            strategy: SchedStrategy::Adaptive,
        })
        .collect()
}

#[test]
fn straggler_triggers_replans_without_changing_answers() {
    let fed = university::federation().expect("federation");
    let config = SchedConfig {
        straggler_factor: 3.0,
        min_straggler_us: 5_000.0,
        probe_interval_us: 2_000.0,
        ..SchedConfig::default()
    };
    let script = FaultScript::Straggler {
        site: fedoq_object::DbId::new(1),
        factor: 40.0,
        at_us: 0.0,
    };
    for seed in seeds() {
        let specs = straggler_specs(6);
        let run = SchedSim::new(seed)
            .with_config(config)
            .with_script(script.clone())
            .run(&fed, &specs)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        // The slow site straggles past 3x the healthy sites' mean
        // latency, so at least one adaptive query must have replanned.
        assert!(
            !run.outcome.replans.is_empty(),
            "seed {seed}: no mid-flight replan despite a 40x straggler \
             (executed: {:?})",
            run.outcome
                .queries
                .iter()
                .map(|o| o.executed.clone())
                .collect::<Vec<_>>()
        );
        assert!(
            run.outcome.queries.iter().any(|o| o.replanned),
            "seed {seed}: no query outcome marked replanned"
        );
        // Replan soundness via the FQ307 auditor: never re-dispatch
        // merged work, never drop a hosting site on the floor.
        let mut report = fedoq_check::Report::new("scheduler replans", "");
        fedoq_check::analyze_replans(&run.outcome.replans, &mut report);
        assert!(
            report.is_sound(),
            "seed {seed}: replan trace failed the FQ307 audit: {report}"
        );
        // A slow site still answers: every query certifies the same
        // answer the serial run would.
        let query = fed.parse_and_bind(TEACHER_Q).expect("bind");
        for outcome in &run.outcome.queries {
            let answer = match &outcome.verdict {
                QueryVerdict::Answered(answer) => answer,
                other => panic!(
                    "seed {seed} query {}: expected an answer under a \
                     slow (not dead) site, got {other:?}",
                    outcome.id
                ),
            };
            assert!(
                outcome.degraded_sites.is_empty(),
                "seed {seed} query {}: degraded under a slow (not dead) site",
                outcome.id
            );
            let expected = reference(&fed, &query, &outcome.executed);
            assert_eq!(
                *answer, expected,
                "seed {seed} query {} ({}): replanned answer diverges",
                outcome.id, outcome.executed
            );
        }
    }
}

#[test]
fn fault_scripts_never_produce_wrong_answers() {
    let fed = university::federation().expect("federation");
    let scripts = [
        FaultScript::CrashMidQuery {
            site: fedoq_object::DbId::new(1),
            at_us: 10_000.0,
            heal_us: 400_000.0,
        },
        FaultScript::PartitionThenHeal {
            a: fedoq_object::DbId::new(0),
            b: fedoq_object::DbId::new(1),
            at_us: 5_000.0,
            heal_us: 300_000.0,
        },
    ];
    for seed in seeds() {
        for script in &scripts {
            let specs = mixed_specs(if quick() { 8 } else { 16 }, seed);
            let run = SchedSim::new(seed)
                .with_script(script.clone())
                .run(&fed, &specs)
                .unwrap_or_else(|e| panic!("seed {seed} script {}: {e}", script.name()));
            for outcome in &run.outcome.queries {
                let spec = &specs[outcome.id as usize];
                let label = format!(
                    "seed {seed} script {} query {} ({})",
                    script.name(),
                    outcome.id,
                    outcome.executed
                );
                match &outcome.verdict {
                    QueryVerdict::Answered(answer) => {
                        let query = fed.parse_and_bind(&spec.sql).expect("bind");
                        let expected = reference(&fed, &query, &outcome.executed);
                        if outcome.degraded_sites.is_empty() && !answer.is_degraded() {
                            assert_eq!(
                                *answer, expected,
                                "{label}: non-degraded answer diverges from serial"
                            );
                        } else {
                            // Graceful degradation may widen the maybe
                            // set, but a certain row must never be a lie.
                            assert!(
                                answer.certain_goids().is_subset(&expected.certain_goids()),
                                "{label}: degraded answer invented certainty \
                                 ({:?} vs {:?})",
                                answer.certain_goids(),
                                expected.certain_goids()
                            );
                        }
                    }
                    // Only CA refuses to answer when a site is down.
                    QueryVerdict::Failed(message) => assert_eq!(
                        outcome.executed, "CA",
                        "{label}: non-CA plan failed instead of degrading: {message}"
                    ),
                    QueryVerdict::DeadlineExpiredInQueue | QueryVerdict::DeadlineMiss => {
                        assert!(
                            spec.deadline_us.is_some(),
                            "{label}: deadline verdict for a spec without a deadline"
                        );
                    }
                }
            }
        }
    }
}
