//! Differential suite for the subscription reactor: after **every**
//! operation in a random interleaving of register / mutate / site-down /
//! heal / unsubscribe, each active subscription's maintained conditioned
//! answer must be **byte-identical** to evaluating the same standing
//! query from scratch ([`fedoq_live::evaluate`] +
//! [`fedoq_live::render_conditioned`]) — for all four strategies.
//!
//! Two side contracts ride along:
//!
//! * every [`Delta::MaybeResolved`] names the condition atoms that
//!   flipped (a resolution without provenance is the FQ308 bug class);
//! * the reactor's audit trail passes the FQ308 `live-unfounded-flip`
//!   analyzer: no maybe row is certified or eliminated without a logged
//!   change or heal that could have caused it.
//!
//! `FEDOQ_QUICK=1` shrinks the case count for CI smoke runs.

use fedoq_core::Federation;
use fedoq_live::{
    evaluate, render_conditioned, Delta, LiveEvent, LiveReactor, LiveStrategy, Registration, SubId,
};
use fedoq_object::{DbId, Value};
use fedoq_sim::SystemParams;
use fedoq_store::{ComponentDb, StoreError};
use fedoq_workload::university;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Standing queries spanning every global class the mutation menu
/// touches, with both certain and maybe rows on the seed data.
const QUERIES: &[&str] = &[
    university::Q1,
    "SELECT X.name, X.advisor.name FROM Student X WHERE X.advisor.speciality = 'database'",
    "SELECT X.name FROM Teacher X WHERE X.department.name = 'CS'",
    "SELECT X.name FROM Student X WHERE X.age > 25",
    "SELECT X.name FROM Department X WHERE X.location = 'building C'",
];

const MENU_LEN: usize = 9;

/// One step of a scenario.
#[derive(Debug, Clone)]
enum Op {
    Register { strategy: usize, query: usize },
    Unsubscribe { pick: usize },
    Mutate { menu: usize },
    SiteDown { db: usize },
    Heal { db: usize },
}

/// Op distribution: 3/10 register, 4/10 mutate, 1/10 each for
/// unsubscribe, site-down, and heal (the vendored proptest has no
/// weighted `prop_oneof`, so a selector tuple stands in).
fn arb_op() -> impl Strategy<Value = Op> {
    (
        0..10usize,
        0..8usize,
        0..QUERIES.len(),
        0..MENU_LEN,
        0..3usize,
    )
        .prop_map(|(kind, pick, query, menu, db)| match kind {
            0..=2 => Op::Register {
                strategy: pick % 4,
                query,
            },
            3..=6 => Op::Mutate { menu },
            7 => Op::Unsubscribe { pick },
            8 => Op::SiteDown { db },
            _ => Op::Heal { db },
        })
}

/// Sets `attr` on the first `class` object whose `key_attr` equals
/// `key`; a silent no-op when the class, attribute, or object is absent
/// at this site (mutations must stay valid at every point of a random
/// interleaving).
fn set_where(
    db: &mut ComponentDb,
    class: &str,
    key_attr: &str,
    key: &str,
    attr: &str,
    value: Value,
) -> Result<(), StoreError> {
    let Some(class_id) = db.schema().class_id(class) else {
        return Ok(());
    };
    let def = db.schema().class(class_id);
    let (Some(key_slot), Some(set_slot)) = (def.attr_index(key_attr), def.attr_index(attr)) else {
        return Ok(());
    };
    let target = db
        .extent(class_id)
        .objects()
        .iter()
        .find(|o| *o.value(key_slot) == Value::text(key))
        .map(fedoq_object::Object::loid);
    if let Some(loid) = target {
        if let Some(mut obj) = db.object_mut(loid) {
            obj.set(set_slot, value);
        }
    }
    Ok(())
}

/// Inserts a `Teacher` copy named `name` at this site, or updates its
/// `speciality` if one already exists (keys are unique per site).
fn upsert_teacher(db: &mut ComponentDb, name: &str, speciality: &str) -> Result<(), StoreError> {
    let Some(class_id) = db.schema().class_id("Teacher") else {
        return Ok(());
    };
    let def = db.schema().class(class_id);
    let (Some(name_slot), Some(_)) = (def.attr_index("name"), def.attr_index("speciality")) else {
        return Ok(());
    };
    let exists = db
        .extent(class_id)
        .objects()
        .iter()
        .any(|o| *o.value(name_slot) == Value::text(name));
    if exists {
        set_where(
            db,
            "Teacher",
            "name",
            name,
            "speciality",
            Value::text(speciality),
        )
    } else {
        db.insert_named(
            "Teacher",
            &[
                ("name", Value::text(name)),
                ("speciality", Value::text(speciality)),
            ],
        )
        .map(|_| ())
    }
}

/// Applies one mutation-menu entry through the reactor. Entries cover
/// certification (filling the missing speciality copies the paper's Q1
/// maybe rows hinge on), elimination, certain-row retraction and
/// restoration, null filling, and fresh inserts.
fn apply_menu(reactor: &mut LiveReactor, menu: usize, inserted: &mut u64) {
    let db2 = DbId::new(1); // teachers with specialities
    let db1 = DbId::new(0); // students with ages
    let db3 = DbId::new(2); // departments with locations
    let outcome = match menu % MENU_LEN {
        0 => reactor.mutate(db2, |db| upsert_teacher(db, "Haley", "network")),
        1 => reactor.mutate(db2, |db| upsert_teacher(db, "Abel", "database")),
        2 => reactor.mutate(db2, |db| {
            set_where(
                db,
                "Teacher",
                "name",
                "Kelly",
                "speciality",
                Value::text("ai"),
            )
        }),
        3 => reactor.mutate(db2, |db| {
            set_where(
                db,
                "Teacher",
                "name",
                "Kelly",
                "speciality",
                Value::text("database"),
            )
        }),
        4 => reactor.mutate(db1, |db| {
            set_where(db, "Student", "name", "Tony", "age", Value::Int(35))
        }),
        5 => reactor.mutate(db1, |db| {
            set_where(db, "Student", "name", "Mary", "age", Value::Int(19))
        }),
        6 => {
            *inserted += 1;
            let n = *inserted;
            reactor.mutate(db1, move |db| {
                db.insert_named(
                    "Student",
                    &[
                        ("s-no", Value::Int(900_000 + n as i64)),
                        ("name", Value::text(format!("Pete{n}"))),
                        ("age", Value::Int(27)),
                        ("sex", Value::text("male")),
                    ],
                )
                .map(|_| ())
            })
        }
        7 => reactor.mutate(db3, |db| {
            set_where(
                db,
                "Department",
                "name",
                "CS",
                "location",
                Value::text("building C"),
            )
        }),
        _ => reactor.mutate(db1, |db| {
            set_where(db, "Student", "name", "John", "sex", Value::text("male"))
        }),
    };
    outcome.expect("menu mutations are valid by construction");
}

/// The differential check: every active subscription's maintained state
/// renders byte-identically to a from-scratch evaluation on the current
/// federation with the current down set.
fn check_consistency(reactor: &LiveReactor, step: usize, op: &Op) {
    let subs: Vec<(SubId, String, LiveStrategy)> = reactor
        .subscriptions()
        .map(|(id, sql, strategy, _)| (id, sql.to_owned(), strategy))
        .collect();
    for (id, sql, strategy) in subs {
        let query = reactor
            .federation()
            .parse_and_bind(&sql)
            .expect("registered SQL re-binds");
        let fresh = evaluate(
            reactor.federation(),
            &query,
            strategy,
            SystemParams::paper_default(),
            reactor.down_sites(),
        )
        .expect("from-scratch evaluation");
        let maintained = reactor.answer(id).expect("active subscription has state");
        assert_eq!(
            render_conditioned(maintained),
            render_conditioned(&fresh),
            "step {step} ({op:?}) {id} [{strategy}]: maintained answer \
             diverges from a from-scratch {strategy} run"
        );
        assert_eq!(
            maintained, &fresh,
            "step {step} ({op:?}) {id} [{strategy}]: renders agree but \
             the conditioned answers differ structurally"
        );
    }
}

/// Drains every subscriber channel; each `MaybeResolved` delta must name
/// the flipped condition atoms.
fn drain_events(regs: &BTreeMap<u64, (Registration, LiveStrategy)>, step: usize) {
    for (raw, (reg, strategy)) in regs {
        while let Some(event) = reg.events.try_recv() {
            if let LiveEvent::Deltas { seq, deltas } = event {
                assert!(seq > 0, "delta batches are numbered from 1");
                for delta in &deltas {
                    if let Delta::MaybeResolved { goid, flipped, .. } = delta {
                        assert!(
                            !flipped.is_empty(),
                            "step {step} w{raw} [{strategy}]: {goid} resolved \
                             without naming a flipped condition atom"
                        );
                    }
                }
            }
        }
    }
}

fn run_scenario(ops: &[Op]) {
    let fed = university::federation().expect("university federation");
    let mut reactor = LiveReactor::new(fed);
    let mut regs: BTreeMap<u64, (Registration, LiveStrategy)> = BTreeMap::new();
    let mut inserted = 0u64;
    for (step, op) in ops.iter().enumerate() {
        match op {
            Op::Register { strategy, query } => {
                let strategy = LiveStrategy::all()[*strategy];
                let reg = reactor
                    .register(QUERIES[*query], strategy, (step % 7) as u8)
                    .expect("register");
                assert!(reg.admitted, "default ladder has 256 slots");
                regs.insert(reg.sub.raw(), (reg, strategy));
            }
            Op::Unsubscribe { pick } => {
                let Some(key) = regs.keys().nth(pick % regs.len().max(1)).copied() else {
                    continue;
                };
                let (reg, _) = regs.remove(&key).expect("key just listed");
                assert!(reactor.unsubscribe(reg.sub));
            }
            Op::Mutate { menu } => apply_menu(&mut reactor, *menu, &mut inserted),
            Op::SiteDown { db } => {
                reactor
                    .set_site_down(DbId::new(*db as u16))
                    .expect("site down");
            }
            Op::Heal { db } => {
                reactor.heal_site(DbId::new(*db as u16)).expect("heal");
            }
        }
        check_consistency(&reactor, step, op);
        drain_events(&regs, step);
    }
    // The whole trace passes the FQ308 reclassification audit.
    let mut report = fedoq_check::Report::new("live differential", "");
    fedoq_check::analyze_live(&reactor.take_trace(), &mut report);
    assert!(
        report.is_sound(),
        "FQ308 found an unfounded reclassification: {report}"
    );
}

fn cases() -> u32 {
    if std::env::var("FEDOQ_QUICK").is_ok() {
        8
    } else {
        48
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: cases(), ..ProptestConfig::default() })]

    #[test]
    fn maintained_answers_match_from_scratch(
        ops in proptest::collection::vec(arb_op(), 1..16)
    ) {
        if std::panic::catch_unwind(|| run_scenario(&ops)).is_err() {
            panic!("failing ops: {ops:?}");
        }
    }
}

/// A directed sweep: all four strategies watch Q1 at once, the full
/// mutation menu runs in order, and a site bounces — the densest single
/// interleaving, kept deterministic so failures here are immediately
/// reproducible without a proptest seed.
#[test]
fn directed_full_menu_sweep_under_all_strategies() {
    let mut ops: Vec<Op> = (0..4)
        .map(|strategy| Op::Register { strategy, query: 0 })
        .collect();
    ops.extend((1..QUERIES.len()).map(|query| Op::Register { strategy: 1, query }));
    for menu in 0..MENU_LEN {
        ops.push(Op::Mutate { menu });
    }
    ops.push(Op::SiteDown { db: 1 });
    ops.push(Op::Mutate { menu: 6 });
    ops.push(Op::Heal { db: 1 });
    ops.push(Op::Unsubscribe { pick: 2 });
    ops.push(Op::Mutate { menu: 0 });
    run_scenario(&ops);
}

/// Unsubscribed watches stop receiving deltas, and their state is gone
/// from the reactor while the survivors keep maintaining correctly.
#[test]
fn unsubscribe_mid_stream_leaves_survivors_consistent() {
    let fed: Federation = university::federation().expect("university federation");
    let mut reactor = LiveReactor::new(fed);
    let first = reactor
        .register(QUERIES[0], LiveStrategy::BL, 5)
        .expect("register");
    let second = reactor
        .register(QUERIES[1], LiveStrategy::PL, 5)
        .expect("register");
    let _ = first.events.try_recv();
    let _ = second.events.try_recv();
    assert!(reactor.unsubscribe(first.sub));
    assert!(reactor.answer(first.sub).is_none());
    let mut inserted = 0;
    apply_menu(&mut reactor, 0, &mut inserted); // resolves Q1's maybe row
    assert!(
        first.events.try_recv().is_none(),
        "unsubscribed watch received a delta"
    );
    check_consistency(&reactor, 0, &Op::Mutate { menu: 0 });
}
