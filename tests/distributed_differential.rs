//! Differential testing of the distributed runtime: over a healthy
//! network — instant in-process delivery or simulated latency without
//! faults — every distributed strategy must classify entities exactly
//! like its in-process twin (same certain set, same maybe set with the
//! same unsolved conjuncts), with no degraded rows and no lost sites.

use fedoq_core::{run_strategy, Federation};
use fedoq_net::{DistributedExecutor, DistributedStrategy, SimTransport, Transport};
use fedoq_query::{bind, BoundQuery};
use fedoq_sim::{Simulation, SystemParams};
use fedoq_workload::{generate, university, WorkloadParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::rc::Rc;

fn strategies() -> Vec<DistributedStrategy> {
    vec![
        DistributedStrategy::ca(),
        DistributedStrategy::bl(),
        DistributedStrategy::pl(),
        DistributedStrategy::bl().with_signatures(),
        DistributedStrategy::pl().with_signatures(),
    ]
}

/// Asserts that `strategy` over both transports matches its sync twin.
fn check_matches_sync(fed: &Federation, query: &BoundQuery, label: &str) {
    for strategy in strategies() {
        let (sync_answer, _) = run_strategy(
            strategy.sync().as_ref(),
            fed,
            query,
            SystemParams::paper_default(),
        )
        .unwrap();

        // Instant in-process transport.
        let local = DistributedExecutor::new()
            .run_local(fed, query, strategy)
            .unwrap();
        assert!(
            sync_answer.same_classification(&local.answer),
            "{label}: {} over LocalTransport disagrees with sync\n  sync: {sync_answer}\n  dist: {}",
            strategy.name(),
            local.answer,
        );
        assert!(local.degraded_sites.is_empty());
        assert!(!local.answer.is_degraded());
        assert_eq!(local.dropped, 0);

        // Simulated network with latency but no faults.
        let sim = Rc::new(RefCell::new(Simulation::new(
            SystemParams::paper_default(),
            fed.num_dbs(),
        )));
        let transport: Rc<RefCell<dyn Transport>> =
            Rc::new(RefCell::new(SimTransport::new(Rc::clone(&sim), 42)));
        let simmed = DistributedExecutor::new()
            .run(fed, query, strategy, transport, sim)
            .unwrap();
        assert!(
            sync_answer.same_classification(&simmed.answer),
            "{label}: {} over healthy SimTransport disagrees with sync\n  sync: {sync_answer}\n  dist: {}",
            strategy.name(),
            simmed.answer,
        );
        assert!(simmed.degraded_sites.is_empty());
        assert!(!simmed.answer.is_degraded());
        assert_eq!(simmed.dropped, 0);
        // Latency advanced the virtual clock; the cost model is separate.
        assert!(simmed.virtual_us > 0.0, "{label}: no virtual time elapsed");
    }
}

#[test]
fn university_federation_matches_sync() {
    let fed = university::federation().unwrap();
    let query = fed.parse_and_bind(university::Q1).unwrap();
    check_matches_sync(&fed, &query, "university Q1");
}

#[test]
fn generated_federations_match_sync() {
    let params = WorkloadParams::paper_default().scaled(0.01);
    for seed in [3u64, 17, 29, 71] {
        let config = params.sample(&mut StdRng::seed_from_u64(seed));
        let sample = generate(&config, seed);
        let query = bind(&sample.query, sample.federation.global_schema()).unwrap();
        check_matches_sync(&sample.federation, &query, &format!("seed {seed}"));
    }
}

#[test]
fn many_databases_match_sync() {
    let mut params = WorkloadParams::paper_default().scaled(0.01);
    params.n_db = 6;
    for seed in [100u64, 101] {
        let config = params.sample(&mut StdRng::seed_from_u64(seed));
        let sample = generate(&config, seed);
        let query = bind(&sample.query, sample.federation.global_schema()).unwrap();
        check_matches_sync(&sample.federation, &query, &format!("6db seed {seed}"));
    }
}

#[test]
fn heavy_nulls_match_sync() {
    let mut params = WorkloadParams::paper_default().scaled(0.01);
    params.null_ratio = 0.3..=0.5;
    for seed in [300u64, 301, 302] {
        let config = params.sample(&mut StdRng::seed_from_u64(seed));
        let sample = generate(&config, seed);
        let query = bind(&sample.query, sample.federation.global_schema()).unwrap();
        check_matches_sync(&sample.federation, &query, &format!("nulls seed {seed}"));
    }
}
