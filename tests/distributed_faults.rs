//! Fault injection over the distributed runtime: determinism under a
//! fixed seed, recovery through retries when messages drop or links
//! partition, and graceful degradation — never wrong answers — when a
//! site is lost for good.

use fedoq_core::{run_strategy, ExecError, Federation};
use fedoq_net::{
    DistributedExecutor, DistributedOutcome, DistributedStrategy, FaultEvent, SimTransport,
    Transport,
};
use fedoq_object::DbId;
use fedoq_query::BoundQuery;
use fedoq_sim::{Simulation, Site, SystemParams};
use fedoq_workload::university;
use std::cell::RefCell;
use std::rc::Rc;

/// Runs `strategy` over a `SimTransport` customized by `faults`.
fn run_faulty(
    fed: &Federation,
    query: &BoundQuery,
    strategy: DistributedStrategy,
    seed: u64,
    faults: impl FnOnce(&mut SimTransport),
) -> Result<DistributedOutcome, ExecError> {
    let sim = Rc::new(RefCell::new(Simulation::new(
        SystemParams::paper_default(),
        fed.num_dbs(),
    )));
    let mut transport = SimTransport::new(Rc::clone(&sim), seed);
    faults(&mut transport);
    let transport: Rc<RefCell<dyn Transport>> = Rc::new(RefCell::new(transport));
    DistributedExecutor::new().run(fed, query, strategy, transport, sim)
}

#[test]
fn same_seed_is_bit_identical() {
    let fed = university::federation().unwrap();
    let query = fed.parse_and_bind(university::Q1).unwrap();
    for strategy in [DistributedStrategy::bl(), DistributedStrategy::pl()] {
        let run = |seed: u64| {
            run_faulty(&fed, &query, strategy, seed, |t| {
                t.inject(FaultEvent::SetDropRate(0.1));
            })
            .unwrap()
        };
        let (a, b) = (run(7), run(7));
        assert_eq!(
            a.answer,
            b.answer,
            "{}: answers differ under one seed",
            strategy.name()
        );
        assert_eq!(a.degraded_sites, b.degraded_sites);
        assert_eq!(a.retries, b.retries);
        assert_eq!((a.delivered, a.dropped), (b.delivered, b.dropped));
        assert_eq!(
            a.metrics,
            b.metrics,
            "{}: cost ledgers diverged",
            strategy.name()
        );
        assert_eq!(a.virtual_us, b.virtual_us);
    }
}

#[test]
fn drops_are_recovered_by_retries() {
    let fed = university::federation().unwrap();
    let query = fed.parse_and_bind(university::Q1).unwrap();
    let (sync_answer, _) = run_strategy(
        DistributedStrategy::bl().sync().as_ref(),
        &fed,
        &query,
        SystemParams::paper_default(),
    )
    .unwrap();

    // Across seeds, lossy runs must always classify like the sync run
    // whenever no site was written off; at 10% drop rate at least one
    // seed exercises the retry path.
    let mut saw_retries = false;
    for seed in 0..16u64 {
        let out = run_faulty(&fed, &query, DistributedStrategy::bl(), seed, |t| {
            t.inject(FaultEvent::SetDropRate(0.1));
        })
        .unwrap();
        if out.dropped > 0 {
            saw_retries = true;
            assert!(out.retries > 0, "seed {seed}: drops without retries");
        }
        if out.degraded_sites.is_empty() {
            assert!(
                sync_answer.same_classification(&out.answer),
                "seed {seed}: lossy run disagrees with sync"
            );
            assert!(!out.answer.is_degraded());
        }
    }
    assert!(
        saw_retries,
        "no seed in 0..16 dropped a message at 10% loss"
    );
}

#[test]
fn partition_heals_and_the_query_recovers() {
    let fed = university::federation().unwrap();
    let query = fed.parse_and_bind(university::Q1).unwrap();
    let (sync_answer, _) = run_strategy(
        DistributedStrategy::bl().sync().as_ref(),
        &fed,
        &query,
        SystemParams::paper_default(),
    )
    .unwrap();

    // The global site is cut off from DB0 when the query starts; the
    // link heals while the fan-out is still retrying.
    let out = run_faulty(&fed, &query, DistributedStrategy::bl(), 5, |t| {
        t.inject(FaultEvent::Partition(Site::Global, Site::Db(DbId::new(0))));
        t.inject_at(1_200_000.0, FaultEvent::Heal);
    })
    .unwrap();
    assert!(out.retries > 0, "partition produced no retries");
    assert!(
        out.degraded_sites.is_empty(),
        "healed partition still degraded the answer"
    );
    assert!(
        sync_answer.same_classification(&out.answer),
        "post-heal answer disagrees with sync: {} vs {}",
        out.answer,
        sync_answer
    );
    assert!(!out.answer.is_degraded());
}

#[test]
fn permanent_site_loss_degrades_but_never_lies() {
    let fed = university::federation().unwrap();
    let query = fed.parse_and_bind(university::Q1).unwrap();
    let (sync_answer, _) = run_strategy(
        DistributedStrategy::bl().sync().as_ref(),
        &fed,
        &query,
        SystemParams::paper_default(),
    )
    .unwrap();

    for crashed in 0..fed.num_dbs() {
        let db = DbId::new(crashed as u16);
        for strategy in [DistributedStrategy::bl(), DistributedStrategy::pl()] {
            let out = run_faulty(&fed, &query, strategy, 11, |t| {
                t.inject(FaultEvent::Crash(Site::Db(db)));
            })
            .unwrap();
            // Soundness: nothing certified without full information.
            for row in out.answer.certain() {
                assert!(
                    sync_answer.certain_goids().contains(&row.goid()),
                    "{} with {db} down certified {} which sync does not",
                    strategy.name(),
                    row.goid(),
                );
            }
            // The loss is visible, not silent.
            assert!(
                out.degraded_sites.contains(&db) || out.answer == sync_answer,
                "{} with {db} down: loss neither reported nor harmless",
                strategy.name(),
            );
        }
    }
}

#[test]
fn centralized_cannot_degrade_gracefully() {
    let fed = university::federation().unwrap();
    let query = fed.parse_and_bind(university::Q1).unwrap();
    let err = run_faulty(&fed, &query, DistributedStrategy::ca(), 3, |t| {
        t.inject(FaultEvent::Crash(Site::Db(DbId::new(0))));
    })
    .unwrap_err();
    assert!(
        matches!(err, ExecError::Unreachable(_)),
        "CA with a dead ship site returned {err:?} instead of Unreachable"
    );
}
