//! Sanity properties of the simulated cost metrics, mirroring the
//! qualitative claims of the paper's Section 4.2.

use fedoq::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn averaged(
    params: &WorkloadParams,
    strategy: &dyn ExecutionStrategy,
    seeds: std::ops::Range<u64>,
) -> QueryMetrics {
    let n = seeds.end - seeds.start;
    let mut runs: Vec<QueryMetrics> = seeds
        .map(|seed| {
            let config = params.sample(&mut StdRng::seed_from_u64(seed));
            let sample = fedoq::workload::generate(&config, seed);
            let query = bind(&sample.query, sample.federation.global_schema()).unwrap();
            let (_, m) = run_strategy(
                strategy,
                &sample.federation,
                &query,
                SystemParams::paper_default(),
            )
            .unwrap();
            m
        })
        .collect();
    // Aggregate in a canonical order so the float sums — and therefore
    // the asserted averages — do not depend on seed iteration order.
    runs.sort_by(|a, b| {
        (a.total_execution_us, a.response_us, a.bytes_transferred)
            .partial_cmp(&(b.total_execution_us, b.response_us, b.bytes_transferred))
            .unwrap()
    });
    runs.iter()
        .fold(QueryMetrics::default(), |sum, m| sum.add(m))
        .scale_down(n)
}

#[test]
fn response_never_exceeds_total() {
    let params = WorkloadParams::paper_default().scaled(0.01);
    for seed in 0..20u64 {
        let config = params.sample(&mut StdRng::seed_from_u64(seed));
        let sample = fedoq::workload::generate(&config, seed);
        let query = bind(&sample.query, sample.federation.global_schema()).unwrap();
        for strategy in [
            &Centralized as &dyn ExecutionStrategy,
            &BasicLocalized::new(),
            &ParallelLocalized::new(),
        ] {
            let (_, m) = run_strategy(
                strategy,
                &sample.federation,
                &query,
                SystemParams::paper_default(),
            )
            .unwrap();
            assert!(
                m.total_execution_us >= m.response_us - 1e-6,
                "{} on seed {seed}: total {} < response {}",
                strategy.name(),
                m.total_execution_us,
                m.response_us
            );
            assert!(m.response_us > 0.0);
        }
    }
}

#[test]
fn times_grow_with_object_count() {
    let small = WorkloadParams::paper_default().scaled(0.005);
    let large = WorkloadParams::paper_default().scaled(0.02);
    for strategy in [
        &Centralized as &dyn ExecutionStrategy,
        &BasicLocalized::new(),
        &ParallelLocalized::new(),
    ] {
        let m_small = averaged(&small, strategy, 0..8);
        let m_large = averaged(&large, strategy, 0..8);
        assert!(
            m_large.total_execution_us > m_small.total_execution_us,
            "{}: {} vs {}",
            strategy.name(),
            m_large.total_execution_us,
            m_small.total_execution_us
        );
        assert!(
            m_large.response_us > m_small.response_us,
            "{}",
            strategy.name()
        );
    }
}

#[test]
fn localized_ships_less_and_responds_faster_than_centralized() {
    let params = WorkloadParams::paper_default().scaled(0.02);
    let ca = averaged(&params, &Centralized, 10..22);
    let bl = averaged(&params, &BasicLocalized::new(), 10..22);
    let pl = averaged(&params, &ParallelLocalized::new(), 10..22);
    assert!(bl.bytes_transferred < ca.bytes_transferred);
    assert!(pl.bytes_transferred < ca.bytes_transferred);
    assert!(bl.response_us < ca.response_us);
    assert!(pl.response_us < ca.response_us);
    // The paper's headline ordering at the defaults: BL beats PL too.
    assert!(bl.total_execution_us < ca.total_execution_us);
    assert!(bl.total_execution_us <= pl.total_execution_us);
}

#[test]
fn pl_checks_at_least_as_many_assistants_as_bl() {
    // PL resolves assistants for every candidate object; BL only for
    // survivors — so PL never ships fewer check-request bytes.
    let mut params = WorkloadParams::paper_default().scaled(0.02);
    params.preds_per_class = 2..=3; // ensure unsolved predicates exist
    let bl = averaged(&params, &BasicLocalized::new(), 30..40);
    let pl = averaged(&params, &ParallelLocalized::new(), 30..40);
    assert!(
        pl.bytes_transferred >= bl.bytes_transferred,
        "pl {} < bl {}",
        pl.bytes_transferred,
        bl.bytes_transferred
    );
    assert!(pl.comparisons >= bl.comparisons);
}

#[test]
fn network_contention_grows_with_databases() {
    let mut small = WorkloadParams::paper_default().scaled(0.01);
    small.n_db = 2;
    let mut large = WorkloadParams::paper_default().scaled(0.01);
    large.n_db = 6;
    let ca2 = averaged(&small, &Centralized, 50..58);
    let ca6 = averaged(&large, &Centralized, 50..58);
    // More sites => more data over the single shared link => slower.
    assert!(ca6.bytes_transferred > ca2.bytes_transferred);
    assert!(ca6.response_us > ca2.response_us);
}

#[test]
fn phase_breakdown_covers_the_total() {
    let fed = fedoq::workload::university::federation().unwrap();
    let q1 = fed.parse_and_bind(fedoq::workload::university::Q1).unwrap();
    for strategy in [
        &Centralized as &dyn ExecutionStrategy,
        &BasicLocalized::new(),
        &ParallelLocalized::new(),
    ] {
        let (_, m) = run_strategy(strategy, &fed, &q1, SystemParams::paper_default()).unwrap();
        let phase_sum: f64 = m.phase_us.iter().sum();
        assert!(
            (phase_sum - m.total_execution_us).abs() < 1e-6,
            "{}: phases sum to {phase_sum}, total {}",
            strategy.name(),
            m.total_execution_us
        );
    }
}

#[test]
fn centralized_phase_profile_is_ship_heavy() {
    let fed = fedoq::workload::university::federation().unwrap();
    let q1 = fed.parse_and_bind(fedoq::workload::university::Q1).unwrap();
    let (_, ca) = run_strategy(&Centralized, &fed, &q1, SystemParams::paper_default()).unwrap();
    use fedoq::sim::Phase;
    assert!(ca.phase_us(Phase::Ship) > ca.phase_us(Phase::O));
    assert!(ca.phase_us(Phase::Ship) > ca.phase_us(Phase::P));
    // BL's profile is evaluation- and check-driven instead.
    let (_, bl) = run_strategy(
        &BasicLocalized::new(),
        &fed,
        &q1,
        SystemParams::paper_default(),
    )
    .unwrap();
    assert!(bl.phase_us(Phase::P) > 0.0);
    assert!(bl.phase_us(Phase::O) > 0.0);
    assert!(bl.phase_us(Phase::Ship) < ca.phase_us(Phase::Ship));
}
