//! Batched lookups under transport faults: a dropped
//! `BatchAssistantLookup` fragment splits in half and retries without
//! ever duplicating a certification, and when a peer stays unreachable
//! past the retry budget the localized strategies degrade — tagging the
//! affected rows instead of guessing.

use fedoq_core::{run_strategy, Federation, MaybeRow, PipelineConfig, QueryAnswer, ResultRow};
use fedoq_net::{
    DistributedExecutor, DistributedOutcome, DistributedStrategy, FaultEvent, SimTransport,
    Transport,
};
use fedoq_object::DbId;
use fedoq_query::BoundQuery;
use fedoq_sim::{Simulation, Site, SystemParams};
use fedoq_workload::university;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

/// Batched+cached pipeline with a deliberately small fragment size so a
/// multi-probe batch exists to split on failure.
fn batched_pipeline() -> PipelineConfig {
    PipelineConfig::sequential().with_batch(2).with_cache()
}

fn run_faulty(
    fed: &Federation,
    query: &BoundQuery,
    strategy: DistributedStrategy,
    pipeline: PipelineConfig,
    seed: u64,
    faults: impl FnOnce(&mut SimTransport),
) -> Result<DistributedOutcome, fedoq_core::ExecError> {
    let sim = Rc::new(RefCell::new(Simulation::new(
        SystemParams::paper_default(),
        fed.num_dbs(),
    )));
    let mut transport = SimTransport::new(Rc::clone(&sim), seed);
    faults(&mut transport);
    let transport: Rc<RefCell<dyn Transport>> = Rc::new(RefCell::new(transport));
    DistributedExecutor::new()
        .with_pipeline(pipeline)
        .run(fed, query, strategy, transport, sim)
}

fn sync_answer(fed: &Federation, query: &BoundQuery, strategy: DistributedStrategy) -> QueryAnswer {
    run_strategy(
        strategy.sync().as_ref(),
        fed,
        query,
        SystemParams::paper_default(),
    )
    .unwrap()
    .0
}

/// No GOid may be certified twice — a split fragment retried over a
/// lossy link must not replay a verdict into a second certification.
fn assert_no_duplicate_certifications(answer: &QueryAnswer, label: &str) {
    let unique: BTreeSet<_> = answer.certain().iter().map(ResultRow::goid).collect();
    assert_eq!(
        unique.len(),
        answer.certain().len(),
        "{label}: duplicate certified rows: {answer}"
    );
    let maybes: BTreeSet<_> = answer.maybe().iter().map(MaybeRow::goid).collect();
    for goid in &maybes {
        assert!(
            !unique.contains(goid),
            "{label}: {goid} is both certain and maybe"
        );
    }
}

#[test]
fn dropped_batches_split_retry_and_agree_with_sync() {
    let fed = university::federation().unwrap();
    let query = fed.parse_and_bind(university::Q1).unwrap();
    for strategy in [DistributedStrategy::bl(), DistributedStrategy::pl()] {
        let reference = sync_answer(&fed, &query, strategy);
        let mut saw_drop = false;
        for seed in 0..24u64 {
            let out = run_faulty(&fed, &query, strategy, batched_pipeline(), seed, |t| {
                t.inject(FaultEvent::SetDropRate(0.15));
            })
            .unwrap();
            let label = format!("{} seed {seed}", strategy.name());
            assert_no_duplicate_certifications(&out.answer, &label);
            if out.dropped > 0 {
                saw_drop = true;
                assert!(out.retries > 0, "{label}: drops without retries");
            }
            if out.degraded_sites.is_empty() && !out.answer.is_degraded() {
                assert!(
                    reference.same_classification(&out.answer),
                    "{label}: lossy batched run disagrees with sync\n  sync: \
                     {reference}\n  dist: {}",
                    out.answer
                );
            }
        }
        assert!(
            saw_drop,
            "{}: no seed in 0..24 dropped a batch at 15% loss",
            strategy.name()
        );
    }
}

#[test]
fn batch_sizes_agree_over_a_healed_partition() {
    // The same partition-then-heal schedule, executed once per batch
    // size: every dialect must recover to the sync classification, with
    // the batched runs having split or retried their way through.
    let fed = university::federation().unwrap();
    let query = fed.parse_and_bind(university::Q1).unwrap();
    for strategy in [DistributedStrategy::bl(), DistributedStrategy::pl()] {
        let reference = sync_answer(&fed, &query, strategy);
        for batch in [1usize, 2, 64] {
            let pipeline = PipelineConfig::sequential().with_batch(batch);
            let out = run_faulty(&fed, &query, strategy, pipeline, 5, |t| {
                t.inject(FaultEvent::Partition(
                    Site::Db(DbId::new(0)),
                    Site::Db(DbId::new(1)),
                ));
                // Early enough for the peer lookups' own retry budget
                // (~115k µs of patience) to carry the run across.
                t.inject_at(60_000.0, FaultEvent::Heal);
            })
            .unwrap();
            let label = format!("{} batch {batch}", strategy.name());
            assert_no_duplicate_certifications(&out.answer, &label);
            assert!(
                out.degraded_sites.is_empty(),
                "{label}: healed partition still lost a site"
            );
            assert!(
                reference.same_classification(&out.answer),
                "{label}: post-heal answer disagrees with sync"
            );
            assert!(!out.answer.is_degraded(), "{label}: degraded after heal");
        }
    }
}

#[test]
fn unreachable_peer_degrades_batched_lookups_gracefully() {
    // A peer crashed for the whole run: batched BL/PL still answer, mark
    // the loss (degraded sites or degraded provenance), and certify
    // nothing the full-information run would not.
    let fed = university::federation().unwrap();
    let query = fed.parse_and_bind(university::Q1).unwrap();
    for crashed in 0..fed.num_dbs() {
        let db = DbId::new(u16::try_from(crashed).unwrap());
        for strategy in [DistributedStrategy::bl(), DistributedStrategy::pl()] {
            let reference = sync_answer(&fed, &query, strategy);
            let out = run_faulty(&fed, &query, strategy, batched_pipeline(), 11, |t| {
                t.inject(FaultEvent::Crash(Site::Db(db)));
            })
            .unwrap();
            let label = format!("{} with {db} down", strategy.name());
            assert_no_duplicate_certifications(&out.answer, &label);
            for row in out.answer.certain() {
                assert!(
                    reference.certain_goids().contains(&row.goid()),
                    "{label}: certified {} which sync does not",
                    row.goid()
                );
            }
            assert!(
                out.degraded_sites.contains(&db) || out.answer == reference,
                "{label}: loss neither reported nor harmless"
            );
        }
    }
}

#[test]
fn warm_cache_survives_faults_without_stale_answers() {
    // One executor, one persistent cache: a clean run warms it, then a
    // lossy run may answer probes from the cache — fewer messages, same
    // classification whenever nothing was written off.
    let fed = university::federation().unwrap();
    let query = fed.parse_and_bind(university::Q1).unwrap();
    for strategy in [DistributedStrategy::bl(), DistributedStrategy::pl()] {
        let reference = sync_answer(&fed, &query, strategy);
        let executor = DistributedExecutor::new().with_pipeline(batched_pipeline());

        let clean = {
            let sim = Rc::new(RefCell::new(Simulation::new(
                SystemParams::paper_default(),
                fed.num_dbs(),
            )));
            let transport: Rc<RefCell<dyn Transport>> =
                Rc::new(RefCell::new(SimTransport::new(Rc::clone(&sim), 1)));
            executor
                .run(&fed, &query, strategy, transport, sim)
                .unwrap()
        };
        assert!(reference.same_classification(&clean.answer));
        assert!(executor.cache_len() > 0, "clean run cached nothing");

        let lossy = {
            let sim = Rc::new(RefCell::new(Simulation::new(
                SystemParams::paper_default(),
                fed.num_dbs(),
            )));
            let mut transport = SimTransport::new(Rc::clone(&sim), 2);
            transport.inject(FaultEvent::SetDropRate(0.15));
            let transport: Rc<RefCell<dyn Transport>> = Rc::new(RefCell::new(transport));
            executor
                .run(&fed, &query, strategy, transport, sim)
                .unwrap()
        };
        let label = format!("{} warm lossy", strategy.name());
        assert_no_duplicate_certifications(&lossy.answer, &label);
        if lossy.degraded_sites.is_empty() && !lossy.answer.is_degraded() {
            assert!(
                reference.same_classification(&lossy.answer),
                "{label}: disagrees with sync"
            );
        }
        assert!(
            lossy.delivered <= clean.delivered,
            "{label}: warm run sent more messages ({} vs {})",
            lossy.delivered,
            clean.delivered
        );
    }
}
