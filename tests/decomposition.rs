//! Decomposition of Q1 into the paper's local queries Q1′ and Q1″
//! (Figure 3b), checked against the university federation.

use fedoq::prelude::*;
use fedoq::workload::university;

#[test]
fn q1_decomposes_into_q1_prime_and_q1_double_prime() {
    let fed = university::federation().unwrap();
    let q1 = fed.parse_and_bind(university::Q1).unwrap();
    let schema = fed.global_schema();

    // Q1' (paper's DB1, our DB0): keeps only the department predicate.
    let plan0 = plan_for_db(&q1, schema, DbId::new(0)).unwrap();
    assert_eq!(
        plan0.local_preds().collect::<Vec<_>>(),
        vec![PredId::new(2)]
    );
    let text = plan0.describe(&q1);
    assert_eq!(
        text,
        "Select X.Oid, X.name, X.advisor.name From Student@DB0 X \
         Where X.advisor.department.name = 'CS'"
    );

    // Q1'' (paper's DB2, our DB1): keeps address and speciality.
    let plan1 = plan_for_db(&q1, schema, DbId::new(1)).unwrap();
    assert_eq!(
        plan1.local_preds().collect::<Vec<_>>(),
        vec![PredId::new(0), PredId::new(1)]
    );
    let text = plan1.describe(&q1);
    assert!(text.contains("Student@DB1"));
    assert!(text.contains("X.address.city = 'Taipei'"));
    assert!(text.contains("X.advisor.speciality = 'database'"));
    assert!(!text.contains("department"));

    // The paper's DB3 (our DB2) hosts no Student constituent: no local
    // query is produced for it.
    assert!(plan_for_db(&q1, schema, DbId::new(2)).is_none());
}

#[test]
fn truncation_points_identify_the_unsolved_item_classes() {
    let fed = university::federation().unwrap();
    let q1 = fed.parse_and_bind(university::Q1).unwrap();
    let schema = fed.global_schema();

    let plan0 = plan_for_db(&q1, schema, DbId::new(0)).unwrap();
    let truncated: Vec<_> = plan0.truncated_preds(&q1).collect();
    assert_eq!(truncated.len(), 2);
    // address.city blocks at the Student itself (prefix 0).
    assert_eq!(truncated[0].pred, PredId::new(0));
    assert_eq!(truncated[0].prefix_len, 0);
    assert_eq!(truncated[0].item_class, schema.class_id("Student").unwrap());
    // advisor.speciality blocks at the Teacher (prefix 1).
    assert_eq!(truncated[1].pred, PredId::new(1));
    assert_eq!(truncated[1].prefix_len, 1);
    assert_eq!(truncated[1].item_class, schema.class_id("Teacher").unwrap());

    let plan1 = plan_for_db(&q1, schema, DbId::new(1)).unwrap();
    let truncated: Vec<_> = plan1.truncated_preds(&q1).collect();
    assert_eq!(truncated.len(), 1);
    assert_eq!(truncated[0].pred, PredId::new(2));
    assert_eq!(truncated[0].item_class, schema.class_id("Teacher").unwrap());
}

#[test]
fn fully_local_sites_have_no_truncations() {
    let fed = university::federation().unwrap();
    // s-no and name exist in both student-hosting databases.
    let q = fed
        .parse_and_bind("SELECT X.name FROM Student X WHERE X.s-no >= 800000")
        .unwrap();
    let schema = fed.global_schema();
    for db in [DbId::new(0), DbId::new(1)] {
        let plan = plan_for_db(&q, schema, db).unwrap();
        assert!(plan.is_fully_local(), "{db}");
        assert_eq!(plan.truncated_preds(&q).count(), 0);
    }
}

#[test]
fn target_projection_prefixes() {
    let fed = university::federation().unwrap();
    let schema = fed.global_schema();
    // `address.city` as target: DB0 cannot project it at all.
    let q = fed
        .parse_and_bind("SELECT X.address.city, X.name FROM Student X WHERE X.age > 0")
        .unwrap();
    let plan0 = plan_for_db(&q, schema, DbId::new(0)).unwrap();
    assert_eq!(plan0.target_prefix_len(0), 0);
    assert_eq!(plan0.target_prefix_len(1), 1);
    let plan1 = plan_for_db(&q, schema, DbId::new(1)).unwrap();
    assert_eq!(plan1.target_prefix_len(0), 2);
}

#[test]
fn dispositions_drive_local_evaluation_counts() {
    // A site's local predicates are exactly the ones its plan says are
    // local: verified indirectly by comparing BL's comparisons against a
    // fully-local query (more local predicates => more comparisons).
    let fed = university::federation().unwrap();
    let sparse = fed
        .parse_and_bind("SELECT X.name FROM Student X WHERE X.address.city = 'Taipei'")
        .unwrap();
    let dense = fed
        .parse_and_bind("SELECT X.name FROM Student X WHERE X.s-no >= 0 AND X.name != 'Nobody'")
        .unwrap();
    let (_, sparse_m) = run_strategy(
        &BasicLocalized::new(),
        &fed,
        &sparse,
        SystemParams::paper_default(),
    )
    .unwrap();
    let (_, dense_m) = run_strategy(
        &BasicLocalized::new(),
        &fed,
        &dense,
        SystemParams::paper_default(),
    )
    .unwrap();
    // The sparse query is local at only one site; the dense one at both.
    assert!(dense_m.comparisons > sparse_m.comparisons);
}
