//! Metamorphic cache-coherence tests: a store mutation between two runs
//! of the same query must leave a cached execution indistinguishable
//! from a cold one. The lookup cache is keyed by federation generation;
//! [`Federation::mutate`] bumps the generation, and the next
//! pipeline-run flushes every stale entry before answering.
//!
//! The mutation used is the paper's own lever: inserting (and later
//! retracting) an *isomeric copy* — a second local object for an entity
//! whose missing attribute the copy supplies — which flips a maybe
//! result to certain, so a stale cache would visibly return the wrong
//! classification.

use fedoq::check::{analyze_query, PlanConfig, StrategyKind};
use fedoq::prelude::*;
use std::cell::RefCell;

fn pipeline() -> PipelineConfig {
    PipelineConfig::parallel(4).with_batch(4).with_cache()
}

fn run_cached(
    strategy: &dyn ExecutionStrategy,
    fed: &Federation,
    query: &BoundQuery,
    cache: &RefCell<LookupCache>,
) -> QueryAnswer {
    run_strategy_with_pipeline(
        strategy,
        fed,
        query,
        SystemParams::paper_default(),
        pipeline(),
        Some(cache),
    )
    .unwrap()
    .0
}

/// A run over a fresh cache — the reference a stale cache must match.
fn run_cold(strategy: &dyn ExecutionStrategy, fed: &Federation, query: &BoundQuery) -> QueryAnswer {
    let cache = RefCell::new(LookupCache::default());
    run_cached(strategy, fed, query, &cache)
}

/// Inserts the isomeric Teacher copy that supplies Haley's missing
/// speciality (DB2 holds specialities; Haley only exists in DB1).
fn insert_haley_copy(fed: &mut Federation) -> LOid {
    fed.mutate(DbId::new(1), |db| {
        db.insert_named(
            "Teacher",
            &[
                ("name", Value::text("Haley")),
                ("speciality", Value::text("database")),
            ],
        )
    })
    .unwrap()
}

#[test]
fn mutation_invalidates_the_cache_for_every_strategy() {
    for strategy in [
        &Centralized as &dyn ExecutionStrategy,
        &BasicLocalized::new(),
        &ParallelLocalized::new(),
    ] {
        let mut fed = fedoq::workload::university::federation().unwrap();
        let q1 = fed.parse_and_bind(fedoq::workload::university::Q1).unwrap();
        let cache = RefCell::new(LookupCache::default());

        // Warm the cache: two identical runs agree.
        let before = run_cached(strategy, &fed, &q1, &cache);
        assert_eq!(before, run_cached(strategy, &fed, &q1, &cache));

        // Mutate: Haley's new DB2 copy certifies (Tony, Haley).
        let loid = insert_haley_copy(&mut fed);

        // The stale cache must answer exactly like a cold one.
        let stale = run_cached(strategy, &fed, &q1, &cache);
        assert_eq!(
            stale,
            run_cold(strategy, &fed, &q1),
            "{}: stale cache diverged from cold run after insert",
            strategy.name()
        );
        assert!(
            cache.borrow().stats().invalidations > 0,
            "{}: generation bump flushed nothing",
            strategy.name()
        );
        // The mutation is observable (the speciality conjunct resolves,
        // shrinking Tony's unsolved set) — a cache that silently served
        // the old answer would fail this.
        assert_ne!(
            stale,
            before,
            "{}: inserting the isomeric copy changed nothing",
            strategy.name()
        );

        // Retract: the answer round-trips back, again matching cold.
        fed.mutate(DbId::new(1), |db| db.retract(loid)).unwrap();
        let restored = run_cached(strategy, &fed, &q1, &cache);
        assert_eq!(
            restored,
            run_cold(strategy, &fed, &q1),
            "{}: stale cache diverged from cold run after retract",
            strategy.name()
        );
        assert_eq!(
            restored,
            before,
            "{}: insert/retract round trip moved the answer",
            strategy.name()
        );
    }
}

#[test]
fn unrelated_runs_share_one_generation_counter() {
    // Two queries alternating over one cache: a mutation invalidates
    // both, and each keeps matching its own cold reference afterwards.
    let mut fed = fedoq::workload::university::federation().unwrap();
    let q1 = fed.parse_and_bind(fedoq::workload::university::Q1).unwrap();
    let q2 = fed
        .parse_and_bind("SELECT X.name FROM Student X WHERE X.advisor.speciality = 'database'")
        .unwrap();
    let bl = BasicLocalized::new();
    let cache = RefCell::new(LookupCache::default());

    let a1 = run_cached(&bl, &fed, &q1, &cache);
    let a2 = run_cached(&bl, &fed, &q2, &cache);
    assert_eq!(a1, run_cached(&bl, &fed, &q1, &cache));
    assert_eq!(a2, run_cached(&bl, &fed, &q2, &cache));

    let loid = insert_haley_copy(&mut fed);
    assert_eq!(run_cached(&bl, &fed, &q2, &cache), run_cold(&bl, &fed, &q2));
    assert_eq!(run_cached(&bl, &fed, &q1, &cache), run_cold(&bl, &fed, &q1));

    fed.mutate(DbId::new(1), |db| db.retract(loid)).unwrap();
    assert_eq!(run_cached(&bl, &fed, &q1, &cache), a1);
    assert_eq!(run_cached(&bl, &fed, &q2, &cache), a2);
}

#[test]
fn plans_stay_sound_across_isomeric_mutations() {
    // FQ101 flags a maybe-producing predicate whose assistant lookup is
    // unreachable. Inserting/retracting an isomeric copy changes the
    // availability facts the analyzer consumes — the plan must stay
    // sound in every state the cached executions run against.
    let mut fed = fedoq::workload::university::federation().unwrap();
    let q1 = fed.parse_and_bind(fedoq::workload::university::Q1).unwrap();
    let check = |fed: &Federation, label: &str| {
        for kind in [StrategyKind::Ca, StrategyKind::Bl, StrategyKind::Pl] {
            let report = analyze_query(&q1, fed.global_schema(), kind, &PlanConfig::default());
            assert!(
                report.is_sound(),
                "{label}: {kind:?} plan unsound: {report:?}"
            );
        }
    };
    check(&fed, "pristine");
    let loid = insert_haley_copy(&mut fed);
    check(&fed, "after insert");
    fed.mutate(DbId::new(1), |db| db.retract(loid)).unwrap();
    check(&fed, "after retract");
}
